//! Shared experiment computations reused by several table/figure binaries
//! (Fig. 9 and Table 4 report the same runs from different angles).

use crate::{KpiRun, RunOpts};
use opprentice::combiners;
use opprentice::strategy::{EvalPlan, TrainingStrategy};
use opprentice_learn::metrics::PrPoint;
use opprentice_learn::{auc_pr, pr_curve};

/// The evaluation protocol of §5.3.1 for one KPI: the random forest under
/// I1 (incremental retraining), the 133 configurations, and the two static
/// combiners, all scored on the test span (from the 9th week on).
pub struct ApproachComparison {
    /// KPI name.
    pub kpi_name: String,
    /// `(approach label, AUCPR, PR curve)` — RF first, then the combiners,
    /// then every configuration in registry order.
    pub approaches: Vec<(String, f64, Vec<PrPoint>)>,
}

impl ApproachComparison {
    /// Runs the comparison. This trains one forest per test week (the I1
    /// protocol), so expect minutes, not seconds.
    pub fn run(run: &KpiRun, opts: &RunOpts) -> Self {
        let ev = run.evaluator(opts);
        let test_start = 8 * run.ppw;
        let n = run.matrix.len();

        // Random forest, I1: concatenate weekly scores over the test span.
        let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
        let mut rf_scores: Vec<Option<f64>> = vec![None; n];
        for o in &outcomes {
            rf_scores[o.points.clone()].clone_from_slice(&o.scores);
        }
        let truth_test = &run.truth().flags()[test_start..n];
        let rf_curve = pr_curve(&rf_scores[test_start..n], truth_test);
        let rf_auc = auc_pr(&rf_curve);

        let mut approaches = vec![("random forest".to_string(), rf_auc, rf_curve)];

        // Static combiners, scales fit on the initial training span.
        let norm = combiners::normalization_schema(&run.matrix, 0..test_start, test_start..n);
        let norm_curve = pr_curve(&norm, truth_test);
        approaches.push((
            "normalization schema".to_string(),
            auc_pr(&norm_curve),
            norm_curve,
        ));
        let vote = combiners::majority_vote(&run.matrix, 0..test_start, test_start..n);
        let vote_curve = pr_curve(&vote, truth_test);
        approaches.push(("majority vote".to_string(), auc_pr(&vote_curve), vote_curve));

        // Every configuration as a standalone basic detector.
        for c in 0..run.matrix.n_features() {
            let scores = run.matrix.column_scores(c);
            let curve = pr_curve(&scores[test_start..n], truth_test);
            let auc = auc_pr(&curve);
            approaches.push((run.matrix.feature_labels()[c].clone(), auc, curve));
        }

        Self {
            kpi_name: run.kpi.name.clone(),
            approaches,
        }
    }

    /// AUCPR ranking, best first: `(rank, label, aucpr)`.
    pub fn ranking(&self) -> Vec<(usize, &str, f64)> {
        let mut order: Vec<usize> = (0..self.approaches.len()).collect();
        order.sort_by(|&a, &b| {
            self.approaches[b]
                .1
                .partial_cmp(&self.approaches[a].1)
                .expect("finite AUCPR")
        });
        order
            .into_iter()
            .enumerate()
            .map(|(rank, i)| {
                (
                    rank + 1,
                    self.approaches[i].0.as_str(),
                    self.approaches[i].1,
                )
            })
            .collect()
    }

    /// The rank of an approach by label prefix (1-based).
    pub fn rank_of(&self, label: &str) -> usize {
        self.ranking()
            .iter()
            .find(|(_, l, _)| l.starts_with(label))
            .map(|(r, _, _)| *r)
            .expect("approach present")
    }

    /// The top `k` *basic-detector* configurations by AUCPR.
    pub fn top_basic(&self, k: usize) -> Vec<(&str, f64, &[PrPoint])> {
        let mut basics: Vec<&(String, f64, Vec<PrPoint>)> = self.approaches[3..].iter().collect();
        basics.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite AUCPR"));
        basics
            .into_iter()
            .take(k)
            .map(|(l, a, c)| (l.as_str(), *a, c.as_slice()))
            .collect()
    }

    /// The named approach's curve.
    pub fn curve_of(&self, label: &str) -> &[PrPoint] {
        &self
            .approaches
            .iter()
            .find(|(l, _, _)| l == label)
            .expect("approach present")
            .2
    }
}
