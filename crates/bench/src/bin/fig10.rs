//! Figure 10 — AUCPR of five learning algorithms as more features are used
//! for training, added in mutual-information order.
//!
//! Paper's shape: "while the AUCPR of other learning algorithms is unstable
//! and decreased as more features are used, the AUCPR of random forests is
//! still high even when all the 133 features are used."
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig10 [--full]`
//! (uses the I1 protocol's offline split: train = first 8 weeks,
//! test = the rest, per KPI)

use opprentice_bench::{prepare_all, write_csv, RunOpts};
use opprentice_learn::baselines::{GaussianNaiveBayes, LinearSvm, LogisticRegression};
use opprentice_learn::feature_select::rank_features;
use opprentice_learn::metrics::auc_pr_of;
use opprentice_learn::tree::{DecisionTree, TreeParams};
use opprentice_learn::{Classifier, Dataset, RandomForest};

/// Feature counts evaluated (the paper adds one at a time; the sweep below
/// subsamples the axis to keep a 1-core run tractable — the shape is what
/// matters).
const FEATURE_COUNTS: [usize; 11] = [1, 2, 3, 5, 8, 13, 21, 40, 70, 100, 133];

/// A named factory that trains a boxed classifier on a dataset.
type AlgorithmFactory = Box<dyn FnMut(&Dataset) -> Box<dyn Classifier>>;

fn algorithms(opts: &RunOpts) -> Vec<(&'static str, AlgorithmFactory)> {
    let fp = opts.forest_params();
    vec![
        (
            "random forests",
            Box::new(move |d: &Dataset| {
                let mut f = RandomForest::new(fp.clone());
                f.fit(d);
                Box::new(f) as Box<dyn Classifier>
            }),
        ),
        (
            "decision trees",
            Box::new(|d: &Dataset| {
                // The paper's overfit-prone baseline: fully grown, all features.
                let mut t = DecisionTree::new(TreeParams::default());
                t.fit(d);
                Box::new(t) as Box<dyn Classifier>
            }),
        ),
        (
            "logistic regression",
            Box::new(|d: &Dataset| {
                let mut m = LogisticRegression::new();
                m.fit(d);
                Box::new(m) as Box<dyn Classifier>
            }),
        ),
        (
            "linear SVM",
            Box::new(|d: &Dataset| {
                let mut m = LinearSvm::new();
                m.fit(d);
                Box::new(m) as Box<dyn Classifier>
            }),
        ),
        (
            "naive Bayes",
            Box::new(|d: &Dataset| {
                let mut m = GaussianNaiveBayes::new();
                m.fit(d);
                Box::new(m) as Box<dyn Classifier>
            }),
        ),
    ]
}

fn main() {
    let opts = RunOpts::from_args();
    println!("Figure 10: AUCPR vs number of features (mutual-information order)\n");

    let mut rows = Vec::new();
    for run in prepare_all(&opts) {
        let split = 8 * run.ppw;
        let (train_full, _) = run.matrix.dataset(run.truth(), 0..split);
        let (test_full, _) = run.matrix.dataset(run.truth(), split..run.matrix.len());
        // Rank features by MI on the training set.
        let ranked: Vec<usize> = rank_features(&train_full)
            .into_iter()
            .map(|(c, _)| c)
            .collect();

        println!("== KPI: {} ==", run.kpi.name);
        println!(
            "{:<22} {}",
            "algorithm",
            FEATURE_COUNTS.map(|k| format!("{k:>6}")).join("")
        );
        for (name, mut fit) in algorithms(&opts) {
            let mut line = format!("{name:<22} ");
            for &k in &FEATURE_COUNTS {
                let cols = &ranked[..k.min(ranked.len())];
                let train = train_full.select_features(cols);
                let test = test_full.select_features(cols);
                let model = fit(&train);
                let scores: Vec<Option<f64>> = (0..test.len())
                    .map(|i| Some(model.score(test.row(i))))
                    .collect();
                let auc = auc_pr_of(&scores, test.labels());
                line.push_str(&format!("{auc:>6.3}"));
                rows.push(format!("{},{name},{k},{auc:.4}", run.kpi.name));
            }
            println!("{line}");
        }
        println!();
    }
    write_csv("fig10.csv", "kpi,algorithm,n_features,aucpr", &rows);
    println!("Shape check vs paper: random forests stay high through 133 features;");
    println!("the other algorithms degrade or oscillate as weak/redundant features arrive.");
}
