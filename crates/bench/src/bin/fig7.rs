//! Figure 7 — the best cThld of each week, from the 9th week on.
//!
//! Paper's observation: best cThlds "can differ greatly over weeks" but
//! "can be more similar to the ones of the neighboring weeks" — the fact
//! that motivates EWMA prediction over cross-validation (§4.5.2).
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig7 [--full]`

use opprentice::cthld::Preference;
use opprentice::strategy::{EvalPlan, TrainingStrategy};
use opprentice_bench::{prepare_all, sparkline, write_csv, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let pref = Preference::moderate();
    println!("Figure 7: best weekly cThld (PC-Score oracle), from the 9th week\n");

    let mut rows = Vec::new();
    for run in prepare_all(&opts) {
        let ev = run.evaluator(&opts);
        let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
        let best: Vec<f64> = outcomes
            .iter()
            .map(|o| o.best_cthld(&pref).unwrap_or(f64::NAN))
            .collect();
        println!("{:<5} weeks 9..{}:", run.kpi.name, 9 + best.len());
        println!("  {}", sparkline(&best, best.len().max(1)));
        print!("  ");
        for b in &best {
            print!("{b:.2} ");
        }
        println!("\n");
        // Neighbor similarity vs global dispersion (the paper's argument).
        // For an i.i.d. series the neighbor/global deviation ratio is √2;
        // persistence pushes it below that, and the lag-1 autocorrelation
        // above zero.
        let finite: Vec<f64> = best.iter().copied().filter(|b| b.is_finite()).collect();
        if finite.len() >= 3 {
            let neighbor_dev: f64 = finite.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
                / (finite.len() - 1) as f64;
            let mean = finite.iter().sum::<f64>() / finite.len() as f64;
            let global_dev: f64 =
                finite.iter().map(|b| (b - mean).abs()).sum::<f64>() / finite.len() as f64;
            let var: f64 =
                finite.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / finite.len() as f64;
            let lag1: f64 = if var > 0.0 {
                finite
                    .windows(2)
                    .map(|w| (w[0] - mean) * (w[1] - mean))
                    .sum::<f64>()
                    / ((finite.len() - 1) as f64 * var)
            } else {
                0.0
            };
            println!(
                "  neighbor/global deviation ratio = {:.2} (i.i.d. reference ~1.41), lag-1 autocorr = {lag1:.2}\n",
                neighbor_dev / global_dev.max(1e-12)
            );
        }
        for (i, b) in best.iter().enumerate() {
            rows.push(format!("{},{},{}", run.kpi.name, 9 + i, b));
        }
    }
    write_csv("fig7.csv", "kpi,week,best_cthld", &rows);
    println!("Shape check vs paper: cThlds vary across weeks; neighbor weeks are closer than the global spread.");
}
