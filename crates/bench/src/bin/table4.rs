//! Table 4 — maximum precision when recall ≥ 0.66, for the random forest,
//! the two static combination methods and the top-3 basic detectors of
//! each KPI.
//!
//! Paper's shape: the forest exceeds 0.8 precision on every KPI, far above
//! the combiners, and matches or beats the best basic detector.
//!
//! Run: `cargo run --release -p opprentice-bench --bin table4 [--full]`

use opprentice_bench::experiments::ApproachComparison;
use opprentice_bench::{prepare_all, write_csv, RunOpts};
use opprentice_learn::metrics::max_precision_at_recall;

const MIN_RECALL: f64 = 0.66;

fn main() {
    let opts = RunOpts::from_args();
    println!("Table 4: maximum precision when recall >= {MIN_RECALL}\n");

    let mut rows = Vec::new();
    for run in prepare_all(&opts) {
        let cmp = ApproachComparison::run(&run, &opts);
        println!("== KPI: {} ==", cmp.kpi_name);
        println!("{:<44} {:>10}", "approach", "precision");

        let mut report = |label: &str, curve: &[opprentice_learn::PrPoint]| {
            let p = max_precision_at_recall(curve, MIN_RECALL);
            let shown = p
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "unreached".into());
            println!("{:<44} {:>10}", label, shown);
            rows.push(format!(
                "{},\"{}\",{}",
                cmp.kpi_name,
                label,
                p.map(|v| format!("{v:.4}")).unwrap_or_default()
            ));
        };

        report("random forest", cmp.curve_of("random forest"));
        report("normalization schema", cmp.curve_of("normalization schema"));
        report("majority vote", cmp.curve_of("majority vote"));
        for (i, (label, _auc, curve)) in cmp.top_basic(3).into_iter().enumerate() {
            report(&format!("{}. {label}", i + 1), curve);
        }
        println!();
    }
    write_csv(
        "table4.csv",
        "kpi,approach,max_precision_at_recall_0.66",
        &rows,
    );
    println!("Shape check vs paper: RF precision high on every KPI (paper: 0.83/0.87/0.89),");
    println!("combiners far below (paper: 0.11-0.32), best basic detector differs per KPI.");
}
