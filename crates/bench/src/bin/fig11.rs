//! Figure 11 — AUCPR of the three training-set strategies of Table 2:
//! I4 (all historical data, incremental retraining), R4 (recent 8 weeks),
//! F4 (first 8 weeks), on 4-week moving test windows.
//!
//! Paper's shape: "I4 (also called incremental retraining) outperforms the
//! other two training sets in most cases", with #SR showing little
//! difference (its anomaly types are simple and stable).
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig11 [--full]`

use opprentice::strategy::{EvalPlan, TrainingStrategy};
use opprentice_bench::{prepare_all, write_csv, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    println!("Figure 11: AUCPR of training-set strategies\n");
    println!("Table 2: training sets and test sets");
    println!("  {:<4} {:<22} {:<22}", "ID", "training set", "test set");
    for (id, train, test) in [
        ("I1", "all historical data", "1-week moving window"),
        ("I4", "all historical data", "4-week moving window"),
        ("R4", "recent 8-week data", "4-week moving window"),
        ("F4", "first 8-week data", "4-week moving window"),
    ] {
        println!("  {id:<4} {train:<22} {test:<22}");
    }
    println!("  (test sets start from the 9th week and move 1 week per step)\n");

    let strategies = [
        TrainingStrategy::AllHistory,
        TrainingStrategy::RecentWeeks(8),
        TrainingStrategy::FirstWeeks(8),
    ];

    let mut rows = Vec::new();
    for run in prepare_all(&opts) {
        let ev = run.evaluator(&opts);
        println!("== KPI: {} ==", run.kpi.name);
        let mut per_strategy: Vec<(String, Vec<f64>)> = Vec::new();
        for strat in strategies {
            let id = strat.table2_id(4);
            let outcomes = ev.run(strat, EvalPlan::four_week());
            let aucs: Vec<f64> = outcomes.iter().map(|o| o.auc_pr).collect();
            for (w, o) in outcomes.iter().enumerate() {
                rows.push(format!("{},{id},{w},{:.4}", run.kpi.name, o.auc_pr));
            }
            per_strategy.push((id, aucs));
        }
        let windows = per_strategy[0].1.len();
        println!(
            "{:<8} {}",
            "window",
            per_strategy
                .iter()
                .map(|(id, _)| format!("{id:>8}"))
                .collect::<String>()
        );
        for w in 0..windows {
            print!("{w:<8} ");
            for (_, aucs) in &per_strategy {
                print!("{:>8.3}", aucs[w]);
            }
            println!();
        }
        // Summary: how often I4 wins or ties within 0.01.
        let i4 = &per_strategy[0].1;
        let wins = (0..windows)
            .filter(|&w| per_strategy[1..].iter().all(|(_, a)| i4[w] >= a[w] - 0.01))
            .count();
        println!("I4 best-or-tied in {wins}/{windows} windows\n");
    }
    write_csv("fig11.csv", "kpi,strategy,window,aucpr", &rows);
    println!("Shape check vs paper: incremental retraining (I4) wins or ties in most windows.");
}
