//! Figure 12 — offline evaluation of the four cThld-selection metrics
//! (default 0.5, F-Score, SD(1,1), PC-Score) under three preferences:
//! moderate (r ≥ 0.66 ∧ p ≥ 0.66), sensitive-to-precision (0.6, 0.8) and
//! sensitive-to-recall (0.8, 0.6).
//!
//! For every weekly test set the oracle picks each metric's operating
//! point; the figure reports how many weekly points land inside the
//! preference box, and how that count grows as the box is scaled up.
//!
//! Paper's shape: "PC-Score always achieve[s] the most points inside the
//! boxes for both the original preference and the scaled-up ones."
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig12 [--full]`

use opprentice::cthld::{select_operating_point, CthldMetric, Preference};
use opprentice::strategy::{EvalPlan, TrainingStrategy};
use opprentice_bench::{prepare_all, write_csv, RunOpts};
use opprentice_learn::metrics::PrPoint;

const SCALE_RATIOS: [f64; 6] = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0];

fn metric_points(curves: &[Vec<PrPoint>], metric: CthldMetric) -> Vec<PrPoint> {
    curves
        .iter()
        .filter(|c| !c.is_empty())
        .filter_map(|c| select_operating_point(c, metric))
        .collect()
}

fn pct_in_box(points: &[PrPoint], pref: &Preference) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let inside = points
        .iter()
        .filter(|p| pref.satisfied_by(p.recall, p.precision))
        .count();
    100.0 * inside as f64 / points.len() as f64
}

fn main() {
    let opts = RunOpts::from_args();
    println!("Figure 12: offline comparison of cThld-selection metrics\n");

    let preferences = [
        ("moderate", Preference::moderate()),
        (
            "sensitive-to-precision",
            Preference::sensitive_to_precision(),
        ),
        ("sensitive-to-recall", Preference::sensitive_to_recall()),
    ];

    let mut rows = Vec::new();
    for run in prepare_all(&opts) {
        let ev = run.evaluator(&opts);
        let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
        let curves: Vec<Vec<PrPoint>> = outcomes.into_iter().map(|o| o.curve).collect();

        println!(
            "== KPI: {} ({} weekly test sets) ==",
            run.kpi.name,
            curves.len()
        );
        for (pname, pref) in &preferences {
            let metrics = [
                ("PC-Score", CthldMetric::PcScore(*pref)),
                ("default cThld", CthldMetric::Default),
                ("F-Score", CthldMetric::FScore),
                ("SD(1,1)", CthldMetric::Sd11),
            ];
            println!(
                "  preference {pname} (r>={}, p>={}):",
                pref.recall, pref.precision
            );
            print!("    {:<16}", "scale ratio ->");
            for r in SCALE_RATIOS {
                print!("{r:>7.1}");
            }
            println!();
            for (mname, metric) in metrics {
                let points = metric_points(&curves, metric);
                print!("    {mname:<16}");
                for ratio in SCALE_RATIOS {
                    let pct = pct_in_box(&points, &pref.scaled(ratio));
                    print!("{pct:>6.0}%");
                    rows.push(format!("{},{pname},{mname},{ratio},{pct:.1}", run.kpi.name));
                }
                println!();
            }
        }
        println!();
    }
    write_csv(
        "fig12.csv",
        "kpi,preference,metric,scale_ratio,pct_in_box",
        &rows,
    );
    println!("Shape check vs paper: PC-Score matches or beats the other metrics' in-box");
    println!("percentage at every scale ratio, and adapts across the three preferences.");
}
