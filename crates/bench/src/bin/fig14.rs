//! Figure 14 — operators' labeling time vs the number of anomalous windows
//! per month of data, for the three KPIs.
//!
//! Paper's shape: "the labeling time of one-month data basically increases
//! as the number of anomalous windows in that month … Overall, the
//! labeling time of one-month data is less than 6 minutes", with totals of
//! 16 / 17 / 6 minutes for PV / #SR / SRT. §5.7 contrasts this with the
//! interviewed operators' 8–12 *days* of detector tuning.
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig14`
//! (always native scale: labeling time depends on the real data volume)

use opprentice_datagen::{presets, SimulatedOperator};

fn main() {
    println!("Figure 14: labeling time vs anomalous windows per month\n");
    let operator = SimulatedOperator::default();
    let mut rows = Vec::new();
    for spec in presets::all() {
        let kpi = spec.generate();
        let session = operator.label(&kpi);
        println!(
            "== {} — total labeling time {:.1} minutes over {} months ==",
            kpi.name,
            session.total_minutes,
            session.months.len()
        );
        println!("  {:<7} {:>9} {:>9}", "month", "windows", "minutes");
        for m in &session.months {
            println!("  {:<7} {:>9} {:>9.2}", m.month, m.windows, m.minutes);
            assert!(m.minutes < 6.0, "month exceeded the paper's 6-minute bound");
            rows.push(format!(
                "{},{},{},{:.3}",
                kpi.name, m.month, m.windows, m.minutes
            ));
        }
        println!();
    }
    opprentice_bench::write_csv("fig14.csv", "kpi,month,windows,minutes", &rows);
    println!("Shape check vs paper: minutes grow with window count; every month stays under");
    println!("6 minutes; totals are tens of minutes vs the operators' days of manual tuning.");
}
