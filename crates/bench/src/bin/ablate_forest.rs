//! Ablation — random-forest hyperparameter sensitivity.
//!
//! §4.4.1 argues for random forests partly because they "have only two
//! parameters and are not very sensitive to them [38]". This ablation
//! sweeps both (tree count, per-node feature subset size) on PV and
//! reports offline AUCPR; the expected shape is a broad plateau once the
//! forest has ~25 trees.
//!
//! Run: `cargo run --release -p opprentice-bench --bin ablate_forest [--full]`

use opprentice_bench::{prepare, write_csv, RunOpts};
use opprentice_datagen::presets;
use opprentice_learn::metrics::auc_pr_of;
use opprentice_learn::{Classifier, RandomForest, RandomForestParams};

fn main() {
    let opts = RunOpts::from_args();
    let run = prepare(&presets::pv(), &opts);
    let split = 8 * run.ppw;
    let (train, _) = run.matrix.dataset(run.truth(), 0..split);
    let (test, _) = run.matrix.dataset(run.truth(), split..run.matrix.len());

    let tree_counts = [5usize, 10, 25, 50, 100];
    let feature_counts = [6usize, 12, 24, 48];

    println!("Ablation: forest sensitivity to its two parameters (PV, offline AUCPR)\n");
    print!("{:<12}", "trees\\feat");
    for &mf in &feature_counts {
        print!("{mf:>8}");
    }
    println!();

    let mut rows = Vec::new();
    let mut aucs = Vec::new();
    for &n_trees in &tree_counts {
        print!("{n_trees:<12}");
        for &max_features in &feature_counts {
            let mut f = RandomForest::new(RandomForestParams {
                n_trees,
                max_features: Some(max_features),
                seed: 42,
                ..Default::default()
            });
            f.fit(&train);
            let scores: Vec<Option<f64>> = (0..test.len())
                .map(|i| Some(f.score(test.row(i))))
                .collect();
            let auc = auc_pr_of(&scores, test.labels());
            print!("{auc:>8.3}");
            rows.push(format!("{n_trees},{max_features},{auc:.4}"));
            if n_trees >= 25 {
                aucs.push(auc);
            }
        }
        println!();
    }
    write_csv("ablate_forest.csv", "n_trees,max_features,aucpr", &rows);

    let lo = aucs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = aucs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nAUCPR spread across the >=25-tree grid: {lo:.3}..{hi:.3} (Δ {:.3})",
        hi - lo
    );
    println!("Shape check vs [38]: a broad plateau — the forest is insensitive to both knobs.");
}
