//! Figure 5 — a compacted decision tree learned from the SRT data set.
//!
//! The paper shows a depth-limited tree whose top splits use TSD, SVD and
//! diff severities, illustrating that "a feature is more important for
//! classification if it is closer to the root".
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig5 [--full]`

use opprentice_bench::{prepare, RunOpts};
use opprentice_datagen::presets;
use opprentice_learn::tree::{DecisionTree, TreeParams};
use opprentice_learn::Classifier;

fn main() {
    let opts = RunOpts::from_args();
    let run = prepare(&presets::srt(), &opts);
    let (ds, _) = run.matrix.dataset(run.truth(), 0..run.matrix.len());

    // A compact tree (the paper's figure is depth 3).
    let mut tree = DecisionTree::new(TreeParams {
        max_depth: Some(3),
        ..Default::default()
    });
    tree.fit(&ds);

    println!("Figure 5: compact decision tree learned from SRT\n");
    let rendered = tree.render(run.matrix.feature_labels());
    println!("{rendered}");
    println!("(depth {}, {} nodes)", tree.depth(), tree.node_count());

    opprentice_bench::write_csv(
        "fig5.csv",
        "rendered_tree",
        &rendered
            .lines()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>(),
    );
    println!("Shape check vs paper: the root split uses a seasonal/subspace detector's severity,");
    println!("and the tree classifies with a handful of if-then rules on detector severities.");
}
