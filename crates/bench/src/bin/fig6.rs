//! Figure 6 — a PR curve of a random forest trained and tested on PV, with
//! the operating points selected by the default cThld (0.5), F-Score,
//! SD(1,1) and PC-Score under two assumed preferences:
//! (1) recall ≥ 0.75 ∧ precision ≥ 0.6 and (2) recall ≥ 0.5 ∧ precision ≥ 0.9.
//!
//! Paper's shape: the PC-Score point lands inside whichever preference box
//! it is given; the preference-blind metrics pick one fixed point each and
//! miss at least one box.
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig6 [--full]`

use opprentice::cthld::{select_operating_point, CthldMetric, Preference};
use opprentice_bench::{prepare, write_csv, RunOpts};
use opprentice_datagen::presets;
use opprentice_learn::metrics::pr_curve;
use opprentice_learn::{Classifier, RandomForest};

fn main() {
    let opts = RunOpts::from_args();
    let run = prepare(&presets::pv(), &opts);

    // Offline protocol: train on the first 8 weeks, test on the rest.
    let split = 8 * run.ppw;
    let (train, _) = run.matrix.dataset(run.truth(), 0..split);
    // A single offline fit is cheap; a larger forest gives the finer score
    // granularity this figure's curve inspection benefits from.
    let mut params = opts.forest_params();
    params.n_trees = params.n_trees.max(150);
    let mut forest = RandomForest::new(params);
    forest.fit(&train);
    let scores: Vec<Option<f64>> = (split..run.matrix.len())
        .map(|i| {
            run.matrix
                .usable(i)
                .then(|| forest.score(run.matrix.row(i)))
        })
        .collect();
    let curve = pr_curve(&scores, &run.truth().flags()[split..]);

    println!("Figure 6: PR curve of a random forest on PV + cThld selections\n");
    let pref1 = Preference {
        recall: 0.75,
        precision: 0.6,
    };
    let pref2 = Preference {
        recall: 0.5,
        precision: 0.9,
    };

    let mut rows: Vec<String> = curve
        .iter()
        .map(|p| format!("curve,,{:.4},{:.4}", p.recall, p.precision))
        .collect();
    let mut show = |name: &str, metric: CthldMetric| {
        if let Some(p) = select_operating_point(&curve, metric) {
            println!(
                "{:<26} cThld={:.3}  recall={:.3} precision={:.3}",
                name, p.threshold, p.recall, p.precision
            );
            rows.push(format!("point,{name},{:.4},{:.4}", p.recall, p.precision));
            for (pname, pref) in [("pref1", &pref1), ("pref2", &pref2)] {
                if pref.satisfied_by(p.recall, p.precision) {
                    println!(
                        "{:<26}   -> satisfies {pname} (r>={}, p>={})",
                        "", pref.recall, pref.precision
                    );
                }
            }
        }
    };

    show("default cThld (0.5)", CthldMetric::Default);
    show("F-Score", CthldMetric::FScore);
    show("SD(1,1)", CthldMetric::Sd11);
    show("PC-Score @ pref1", CthldMetric::PcScore(pref1));
    show("PC-Score @ pref2", CthldMetric::PcScore(pref2));

    write_csv("fig6.csv", "kind,selector,recall,precision", &rows);
    println!("\nShape check vs paper: PC-Score adapts its point to each preference box;");
    println!("default/F-Score/SD(1,1) are preference-blind and each pick one fixed point.");
}
