//! Ablation — the histogram-split design choice.
//!
//! This reproduction accelerates forest training by pre-binning features
//! into quantile bins (see `opprentice_learn::binned` and DESIGN.md §4);
//! the paper's prototype used exact splits via scikit-learn. The ablation
//! quantifies the trade: training time and AUCPR for exact splits and for
//! several bin resolutions on a fixed PV training set.
//!
//! Run: `cargo run --release -p opprentice-bench --bin ablate_bins`
//! (always fast scale — the exact-split arm is the slow one being measured)

use opprentice_bench::{prepare, write_csv, RunOpts};
use opprentice_datagen::presets;
use opprentice_learn::metrics::auc_pr_of;
use opprentice_learn::{Classifier, RandomForest, RandomForestParams};
use std::time::Instant;

fn main() {
    let opts = RunOpts { full: false };
    let run = prepare(&presets::pv(), &opts);
    let split = 8 * run.ppw;
    let (train, _) = run.matrix.dataset(run.truth(), 0..split);
    let (test, _) = run.matrix.dataset(run.truth(), split..run.matrix.len());

    println!("Ablation: histogram bins vs exact CART splits (PV, 20 trees)\n");
    println!("{:<12} {:>12} {:>8}", "splits", "train time", "AUCPR");

    let arms: [(&str, Option<usize>); 5] = [
        ("exact", None),
        ("16 bins", Some(16)),
        ("64 bins", Some(64)),
        ("256 bins", Some(256)),
        ("1024 bins", Some(1024)),
    ];

    let mut rows = Vec::new();
    for (label, n_bins) in arms {
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 20,
            n_bins,
            seed: 42,
            ..Default::default()
        });
        let t0 = Instant::now();
        f.fit(&train);
        let elapsed = t0.elapsed();
        let scores: Vec<Option<f64>> = (0..test.len())
            .map(|i| Some(f.score(test.row(i))))
            .collect();
        let auc = auc_pr_of(&scores, test.labels());
        println!("{label:<12} {elapsed:>12.2?} {auc:>8.3}");
        rows.push(format!("{label},{},{auc:.4}", elapsed.as_secs_f64()));
    }
    write_csv("ablate_bins.csv", "splits,train_seconds,aucpr", &rows);
    println!("\nShape check: coarse quantile bins are an order of magnitude faster AND more");
    println!("accurate here — binning regularizes the fully-grown trees against operator");
    println!("label noise, which exact purity-chasing splits overfit. 64 bins is the default.");
}
