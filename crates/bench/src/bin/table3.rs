//! Table 3 — the detector registry: 14 basic detectors and their sampled
//! parameters, 133 configurations in total.
//!
//! Run: `cargo run --release -p opprentice-bench --bin table3`
//! Asserts the exact count the paper commits to and prints the inventory.

use opprentice_detectors::registry::{registry, CONFIG_COUNT};
use std::collections::BTreeMap;

fn main() {
    let reg = registry(60);
    assert_eq!(
        reg.len(),
        CONFIG_COUNT,
        "registry must have exactly 133 configurations"
    );

    let mut by_detector: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for c in &reg {
        by_detector
            .entry(c.detector.name())
            .or_default()
            .push(c.detector.config());
    }

    println!("Table 3: basic detectors and sampled parameters\n");
    println!("{:<22} {:>9}  sampled parameters", "detector", "# configs");
    let mut rows = Vec::new();
    let mut total = 0usize;
    for (name, configs) in &by_detector {
        let preview = if configs.len() <= 3 {
            configs.join("; ")
        } else {
            format!("{}; …; {}", configs[0], configs.last().unwrap())
        };
        println!("{:<22} {:>9}  {}", name, configs.len(), preview);
        rows.push(format!("{name},{}", configs.len()));
        total += configs.len();
    }
    println!("{:<22} {:>9}", "total", total);
    assert_eq!(by_detector.len(), 14, "must be 14 basic detectors");
    assert_eq!(total, 133);
    rows.push(format!("total,{total}"));
    opprentice_bench::write_csv("table3.csv", "detector,configurations", &rows);
    println!("\nMatches the paper: 14 basic detectors / 133 configurations.");
}
