//! Figure 13 — online detection accuracy of Opprentice as a whole:
//! EWMA-based cThld prediction vs 5-fold cross-validation vs the offline
//! best case, reported as recall/precision of 4-week moving windows that
//! slide one day per step, under the operators' actual preference
//! (recall ≥ 0.66 ∧ precision ≥ 0.66).
//!
//! Paper's shape: EWMA lands more windows inside the preference region
//! than 5-fold (paper: +40% PV, +23% #SR, +110% SRT), with the best case
//! as the ceiling.
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig13 [--full]`

use opprentice::cthld::Preference;
use opprentice::evaluate::moving_window_metrics;
use opprentice::predictor::{five_fold_cthld, EwmaCthldPredictor};
use opprentice::strategy::{EvalPlan, TrainingStrategy};
use opprentice_bench::{prepare_all, write_csv, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let pref = Preference::moderate();
    println!("Figure 13: online accuracy — EWMA vs 5-fold cThld prediction vs best case\n");

    let mut rows = Vec::new();
    for run in prepare_all(&opts) {
        let ev = run.evaluator(&opts);
        let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
        if outcomes.is_empty() {
            continue;
        }
        let test_start = outcomes[0].points.start;
        let test_end = outcomes.last().unwrap().points.end;
        let span = test_end - test_start;

        // Per-point scores over the whole test span.
        let mut scores: Vec<Option<f64>> = vec![None; span];
        for o in &outcomes {
            scores[o.points.start - test_start..o.points.end - test_start]
                .clone_from_slice(&o.scores);
        }
        let truth = &run.truth().flags()[test_start..test_end];

        // Method 1: best case (oracle per-week cThld).
        let best_weekly: Vec<f64> = outcomes
            .iter()
            .map(|o| o.best_cthld(&pref).unwrap_or(0.5))
            .collect();

        // Method 2: EWMA prediction, initialized by 5-fold on the first
        // 8-week training set.
        let fp = opts.forest_params_for(run.matrix.len());
        let (init_train, _) = run.matrix.dataset(run.truth(), 0..test_start);
        let init = five_fold_cthld(&init_train, &pref, &fp);
        let mut ewma = EwmaCthldPredictor::paper();
        ewma.initialize(init);
        let mut ewma_weekly = Vec::with_capacity(outcomes.len());
        for best in &best_weekly {
            ewma_weekly.push(ewma.predict().expect("initialized"));
            ewma.update(*best);
        }

        // Method 3: 5-fold cross-validation on all historical data, redone
        // for every week.
        let mut fold_weekly = Vec::with_capacity(outcomes.len());
        for o in &outcomes {
            let (train, _) = run.matrix.dataset(run.truth(), 0..o.points.start);
            fold_weekly.push(five_fold_cthld(&train, &pref, &fp));
        }

        // Expand weekly cThlds to per-point and slide 4-week windows a day
        // at a time.
        let expand = |weekly: &[f64]| -> Vec<f64> {
            let mut out = vec![0.5; span];
            for (w, o) in outcomes.iter().enumerate() {
                for i in o.points.clone() {
                    out[i - test_start] = weekly[w];
                }
            }
            out
        };
        let window = 4 * run.ppw;
        let step = run.ppw / 7; // one day

        println!(
            "== KPI: {} ({} weekly test sets) ==",
            run.kpi.name,
            outcomes.len()
        );
        let mut in_box = Vec::new();
        for (name, weekly) in [
            ("best case", &best_weekly),
            ("EWMA", &ewma_weekly),
            ("5-fold", &fold_weekly),
        ] {
            let cthlds = expand(weekly);
            let points = moving_window_metrics(&scores, &cthlds, truth, window, step.max(1));
            let inside = points
                .iter()
                .filter(|p| pref.satisfied_by(p.recall, p.precision))
                .count();
            let pct = if points.is_empty() {
                0.0
            } else {
                100.0 * inside as f64 / points.len() as f64
            };
            println!(
                "  {:<10} {:>4}/{:<4} windows inside the preference region ({pct:.0}%)",
                name,
                inside,
                points.len()
            );
            in_box.push((name, inside, points.len()));
            for p in &points {
                rows.push(format!(
                    "{},{name},{},{:.4},{:.4}",
                    run.kpi.name, p.start, p.recall, p.precision
                ));
            }
        }
        // Anomalies flagged online by the EWMA method (paper §5.6 reports
        // the analogous totals).
        let cthlds = expand(&ewma_weekly);
        let flagged = scores
            .iter()
            .zip(&cthlds)
            .filter(|(s, c)| s.is_some_and(|s| s >= **c))
            .count();
        println!(
            "  EWMA flags {flagged} anomalous points in the test span ({:.1}%)\n",
            100.0 * flagged as f64 / span as f64
        );
    }
    write_csv(
        "fig13.csv",
        "kpi,method,window_start,recall,precision",
        &rows,
    );
    println!("Shape check vs paper: best case >= EWMA >= 5-fold on in-region window counts.");
}
