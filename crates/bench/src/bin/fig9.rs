//! Figure 9 — AUCPR rankings and PR curves: the random forest vs the 133
//! basic-detector configurations vs the two static combination methods,
//! for each of the three KPIs.
//!
//! Paper's shape: the forest ranks 1st (PV, #SR) or 2nd within 0.01 (SRT);
//! both static combiners rank low; the best basic detector differs per KPI.
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig9 [--full]`

use opprentice_bench::experiments::ApproachComparison;
use opprentice_bench::{prepare_all, write_csv, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    println!("Figure 9: random forest vs basic detectors vs static combinations\n");

    for run in prepare_all(&opts) {
        let cmp = ApproachComparison::run(&run, &opts);
        let ranking = cmp.ranking();

        println!("== KPI: {} ==", cmp.kpi_name);
        println!("{:<5} {:<44} {:>7}", "rank", "approach", "AUCPR");
        for (rank, label, auc) in ranking.iter().take(8) {
            println!("{:<5} {:<44} {:>7.3}", rank, label, auc);
        }
        let rf_rank = cmp.rank_of("random forest");
        let norm_rank = cmp.rank_of("normalization schema");
        let vote_rank = cmp.rank_of("majority vote");
        println!(
            "… random forest rank {rf_rank}/{total}, normalization schema rank {norm_rank}, majority vote rank {vote_rank}",
            total = ranking.len()
        );

        // CSV: the full ranking.
        let rows: Vec<String> = ranking
            .iter()
            .map(|(rank, label, auc)| format!("{rank},\"{label}\",{auc:.4}"))
            .collect();
        let stem = cmp.kpi_name.replace('#', "");
        write_csv(
            &format!("fig9_{stem}_ranking.csv"),
            "rank,approach,aucpr",
            &rows,
        );

        // CSV: PR curves of RF, combiners and the top-3 basic detectors.
        let mut pr_rows = Vec::new();
        for label in ["random forest", "normalization schema", "majority vote"] {
            for p in cmp.curve_of(label) {
                pr_rows.push(format!("\"{label}\",{:.4},{:.4}", p.recall, p.precision));
            }
        }
        println!("top-3 basic detectors:");
        for (i, (label, auc, curve)) in cmp.top_basic(3).into_iter().enumerate() {
            println!("  {}. {label} (AUCPR {auc:.3})", i + 1);
            for p in curve {
                pr_rows.push(format!("\"{label}\",{:.4},{:.4}", p.recall, p.precision));
            }
        }
        write_csv(
            &format!("fig9_{stem}_pr_curves.csv"),
            "approach,recall,precision",
            &pr_rows,
        );
        println!();
    }
    println!("Shape check vs paper: RF ranks at/near the top on every KPI; combiners rank low;");
    println!("the best basic detector changes across KPIs.");
}
