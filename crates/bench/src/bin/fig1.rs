//! Figure 1 — 1-week examples of the three KPIs, with anomalous windows
//! marked (the paper circles "some obvious (not all) anomalies").
//!
//! Run: `cargo run --release -p opprentice-bench --bin fig1`
//! Prints ASCII sparklines and writes the raw series to CSV for plotting.

use opprentice_bench::sparkline;
use opprentice_datagen::presets;

fn main() {
    println!("Figure 1: 1-week examples of the three KPIs\n");
    for spec in presets::all() {
        let kpi = spec.generate();
        let ppw = kpi.series.points_per_week();
        // Show the second week (the first may have injection edge effects).
        let week = kpi.series.slice(ppw..2 * ppw);
        let anomalies: Vec<(usize, usize)> = kpi
            .windows
            .iter()
            .filter(|w| w.start >= ppw && w.end <= 2 * ppw)
            .map(|w| (w.start - ppw, w.end - ppw))
            .collect();
        println!(
            "{} (week 2, {} points, {} anomalous windows)",
            kpi.name,
            week.len(),
            anomalies.len()
        );
        println!("  {}", sparkline(week.values(), 96));
        // A marker line showing where the anomalies sit.
        let mut marks = vec![' '; 96];
        for (s, e) in &anomalies {
            let lo = s * 96 / week.len();
            let hi = (e * 96 / week.len()).min(95);
            for m in marks.iter_mut().take(hi + 1).skip(lo) {
                *m = '^';
            }
        }
        println!("  {}\n", marks.iter().collect::<String>());

        let rows: Vec<String> = week
            .iter()
            .enumerate()
            .map(|(i, (ts, v))| {
                let anomalous = kpi.truth.is_anomaly(ppw + i);
                format!(
                    "{ts},{},{}",
                    v.map(|x| x.to_string()).unwrap_or_default(),
                    u8::from(anomalous)
                )
            })
            .collect();
        opprentice_bench::write_csv(
            &format!("fig1_{}.csv", kpi.name.replace('#', "")),
            "timestamp,value,anomalous",
            &rows,
        );
    }
    println!("Shape check vs paper: PV strongly periodic; #SR spiky; SRT tight band with mild daily cycle.");
}
