//! Ablation — robustness to operator labeling noise.
//!
//! §4.2: "errors can be introduced, especially that the boundaries of an
//! anomalous window are often extended or narrowed when labeling. However,
//! machine learning is well known for being robust to noises. Our
//! evaluation in §5 also attests that the real labels of operators are
//! viable for learning." This ablation sweeps the simulated operator's
//! boundary jitter and window-miss probability, trains on the noisy labels,
//! and evaluates against the injector's *clean* truth.
//!
//! Run: `cargo run --release -p opprentice-bench --bin ablate_labels [--full]`

use opprentice_bench::{write_csv, RunOpts};
use opprentice_datagen::{presets, SimulatedOperator};
use opprentice_learn::metrics::auc_pr_of;
use opprentice_learn::{Classifier, RandomForest};

fn main() {
    let opts = RunOpts::from_args();
    let spec = presets::fast(&presets::pv(), opts.interval());
    let kpi = spec.generate();
    let matrix = opprentice::extract_features(&kpi.series);
    let ppw = kpi.series.points_per_week();
    let split = 8 * ppw;

    let jitters = [0.0f64, 4.0, 10.0, 20.0, 40.0];
    let misses = [0.0f64, 0.05, 0.15, 0.3];

    println!("Ablation: AUCPR vs operator labeling noise (PV, evaluated on clean truth)\n");
    print!("{:<14}", "jitter\\miss");
    for &m in &misses {
        print!("{m:>8.2}");
    }
    println!();

    let mut rows = Vec::new();
    let mut corner = (0.0, 0.0);
    for &jitter in &jitters {
        print!("{jitter:<14}");
        for &miss in &misses {
            let operator = SimulatedOperator {
                boundary_jitter_minutes: jitter,
                miss_prob: miss,
                ..Default::default()
            };
            let labels = operator.label(&kpi).labels;
            let (train, _) = matrix.dataset(&labels, 0..split);
            let mut f = RandomForest::new(opts.forest_params());
            f.fit(&train);
            let scores: Vec<Option<f64>> = (split..matrix.len())
                .map(|i| matrix.usable(i).then(|| f.score(matrix.row(i))))
                .collect();
            let auc = auc_pr_of(&scores, &kpi.truth.flags()[split..]);
            print!("{auc:>8.3}");
            rows.push(format!("{jitter},{miss},{auc:.4}"));
            if jitter == 0.0 && miss == 0.0 {
                corner.0 = auc;
            }
            if jitter == jitters[jitters.len() - 1] && miss == misses[misses.len() - 1] {
                corner.1 = auc;
            }
        }
        println!();
    }
    write_csv("ablate_labels.csv", "jitter_minutes,miss_prob,aucpr", &rows);
    println!(
        "\nclean labels {:.3} -> heaviest noise {:.3}: degradation is graceful, not catastrophic",
        corner.0, corner.1
    );
    println!("Shape check vs §4.2: moderate human labeling noise leaves learning viable.");
}
