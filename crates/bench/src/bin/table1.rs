//! Table 1 — the three studied KPIs' characteristics: sampling interval,
//! length in weeks, seasonality band and coefficient of variation, plus
//! §5.1's anomalous-point ratios.
//!
//! Run: `cargo run --release -p opprentice-bench --bin table1`
//! (always generates at the paper's native scale — the table describes the
//! data itself, not an experiment).

use opprentice_datagen::presets;
use opprentice_timeseries::stats;

fn main() {
    println!("Table 1: KPI data characteristics (synthetic, calibrated to the paper)\n");
    println!(
        "{:<6} {:>10} {:>8} {:>12} {:>8} {:>10}",
        "KPI", "interval", "weeks", "seasonality", "Cv", "anomalies"
    );
    let mut rows = Vec::new();
    for spec in presets::all() {
        let kpi = spec.generate();
        let cv = stats::coefficient_of_variation(&kpi.series).unwrap_or(f64::NAN);
        let band = match stats::seasonality_band(&kpi.series) {
            Some(stats::Seasonality::Strong) => "strong",
            Some(stats::Seasonality::Moderate) => "moderate",
            Some(stats::Seasonality::Weak) => "weak",
            None => "n/a",
        };
        let ratio = kpi.truth.anomaly_ratio();
        println!(
            "{:<6} {:>8}min {:>8} {:>12} {:>8.2} {:>9.1}%",
            kpi.name,
            spec.interval / 60,
            spec.weeks,
            band,
            cv,
            100.0 * ratio
        );
        rows.push(format!(
            "{},{},{},{},{:.4},{:.4}",
            kpi.name, spec.interval, spec.weeks, band, cv, ratio
        ));
    }
    opprentice_bench::write_csv(
        "table1.csv",
        "kpi,interval_s,weeks,seasonality,cv,anomaly_ratio",
        &rows,
    );
    println!("\nPaper: PV 1min/25wk/strong/0.48/7.8%  #SR 1min/19wk/weak/2.1/2.8%  SRT 60min/16wk/moderate/0.07/7.4%");
}
