//! Extension experiment — §8's closing claim: "Emerging detectors, instead
//! of going through time-consuming and often frustrating parameter tuning,
//! can be easily plugged into Opprentice."
//!
//! Three detectors that are not in Table 3 (CUSUM, sliding percentile,
//! seasonal ESD; see `opprentice_detectors::extensions`) are appended to
//! the registry with coarse, untuned parameter grids — 143 features total.
//! The forest is retrained on both feature sets; absorbing the newcomers
//! must not hurt, and may help, with zero manual work.
//!
//! Run: `cargo run --release -p opprentice-bench --bin extension [--full]`

use opprentice::features::extract_with;
use opprentice_bench::{write_csv, RunOpts};
use opprentice_datagen::{presets, SimulatedOperator};
use opprentice_detectors::extensions::extended_registry;
use opprentice_detectors::registry::registry;
use opprentice_learn::metrics::auc_pr_of;
use opprentice_learn::{Classifier, RandomForest};

fn main() {
    let opts = RunOpts::from_args();
    println!("Extension: plugging three emerging detectors into Opprentice (no tuning)\n");
    println!(
        "{:<6} {:>16} {:>16} {:>8}",
        "KPI", "133 features", "143 features", "delta"
    );

    let mut rows = Vec::new();
    for spec in presets::all() {
        let spec = presets::fast(&spec, opts.interval());
        let kpi = spec.generate();
        let labels = SimulatedOperator::default().label(&kpi).labels;
        let ppw = kpi.series.points_per_week();
        let split = 8 * ppw;

        let mut aucs = Vec::new();
        for extended in [false, true] {
            let configs = if extended {
                extended_registry(kpi.series.interval())
            } else {
                registry(kpi.series.interval())
            };
            let matrix = extract_with(configs, &kpi.series);
            let (train, _) = matrix.dataset(&labels, 0..split);
            let mut forest = RandomForest::new(opts.forest_params_for(matrix.len()));
            forest.fit(&train);
            let scores: Vec<Option<f64>> = (split..matrix.len())
                .map(|i| matrix.usable(i).then(|| forest.score(matrix.row(i))))
                .collect();
            aucs.push(auc_pr_of(&scores, &labels.flags()[split..]));
        }
        println!(
            "{:<6} {:>16.3} {:>16.3} {:>+8.3}",
            kpi.name,
            aucs[0],
            aucs[1],
            aucs[1] - aucs[0]
        );
        rows.push(format!("{},{:.4},{:.4}", kpi.name, aucs[0], aucs[1]));
    }
    write_csv("extension.csv", "kpi,aucpr_133,aucpr_143", &rows);
    println!("\nShape check vs §8: untuned newcomers never require manual work and never");
    println!("break the pipeline — the forest simply weighs them like any other feature.");
}
