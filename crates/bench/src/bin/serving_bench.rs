//! The serving-path throughput benchmark (see DESIGN.md, "Fast serving").
//!
//! Three layers are measured:
//!
//! 1. **In-process microbenches** — online feature extraction (133
//!    detectors per point, both the per-config scalar path as the *before*
//!    and the config-fused family kernels as the *after*, with per-family
//!    ns/point attribution) and forest inference three ways: the tree-walk
//!    path (`RandomForest::predict_proba`, the *before*), the compiled
//!    flat-layout path (`CompiledForest::predict`, the *after*), and the
//!    batched compiled path (`predict_batch`).
//! 2. **The real TCP server** — a trained session fed one point per
//!    round-trip versus one day per round-trip (`OBSB`), single-session
//!    and N concurrent sessions, with points/sec and p50/p99 round-trip
//!    latency. The *before* is the pre-batching stack: a naive agent
//!    (no `TCP_NODELAY`, as every client was before this change) sending
//!    one `OBS` per point, whose small writes interact with Nagle and
//!    delayed ACKs. The improved single-point path (`OBS` over a nodelay
//!    connection) is reported separately so each layer's contribution —
//!    socket options, coalesced writes, batching — is visible.
//! 3. **Training** — forest fit throughput (rows/sec through
//!    `RandomForest::fit`, which shards trees across a thread pool), and
//!    serving latency *while a background retrain is in flight*: RETRAIN
//!    is asynchronous, so the session keeps answering `OBS` on the old
//!    model until the finished forest is swapped in between requests.
//!
//! Results land in `results/BENCH_serving.json`. Modes: `--tiny` (CI
//! smoke, seconds), default (laptop-sized), `--full` (paper-sized forest
//! everywhere).
//!
//! Run with: `cargo run --release -p opprentice-bench --bin serving_bench`

use opprentice::features::OnlineExtractor;
use opprentice_detectors::registry::registry;
use opprentice_learn::{Classifier, Dataset, RandomForest, RandomForestParams};
use opprentice_server::testing::Client;
use opprentice_server::{Server, ServerConfig};
use std::io::Write;
use std::time::{Duration, Instant};

/// Points per `observe_batch` call in the batched extraction microbench —
/// matches the history-replay chunk the pipeline uses.
const EXTRACT_BATCH: usize = 256;

/// Benchmark sizes, scaled by mode.
struct Sizes {
    mode: &'static str,
    /// Microbench forest size (60 = the paper-sized serving forest).
    micro_trees: usize,
    /// Microbench training rows.
    micro_rows: usize,
    /// Microbench prediction repetitions.
    micro_preds: usize,
    /// Extraction microbench points.
    extract_points: usize,
    /// Server-session forest size.
    server_trees: usize,
    /// Hours of labeled history streamed before RETRAIN.
    train_hours: usize,
    /// Points measured per protocol variant.
    measure_points: usize,
    /// Points for the legacy (Nagle-stalled) baseline — ~40 ms each, so
    /// this sample stays small.
    legacy_points: usize,
    /// Points per OBSB line.
    batch: usize,
    /// Concurrent sessions in the fan-out measurement.
    sessions: usize,
}

/// Parses `--<flag> <N>`: a committed throughput floor. When set, the
/// bench exits non-zero after writing its JSON if the measured number
/// lands below the floor (the CI guard against path regressions).
fn floor_arg(flag: &str) -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == flag)?;
    let value = args
        .get(idx + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"));
    Some(
        value
            .parse()
            .unwrap_or_else(|e| panic!("bad {flag} {value}: {e}")),
    )
}

impl Sizes {
    fn from_args() -> Sizes {
        let tiny = std::env::args().any(|a| a == "--tiny");
        let full = std::env::args().any(|a| a == "--full");
        if tiny {
            Sizes {
                mode: "tiny",
                micro_trees: 60,
                micro_rows: 150,
                micro_preds: 400,
                extract_points: 200,
                server_trees: 8,
                train_hours: 10 * 24,
                measure_points: 96,
                legacy_points: 24,
                batch: 24,
                sessions: 2,
            }
        } else if full {
            Sizes {
                mode: "full",
                micro_trees: 60,
                micro_rows: 4800,
                micro_preds: 30_000,
                extract_points: 8000,
                server_trees: 60,
                train_hours: 21 * 24,
                measure_points: 2400,
                legacy_points: 150,
                batch: 96,
                sessions: 4,
            }
        } else {
            Sizes {
                mode: "default",
                micro_trees: 60,
                micro_rows: 2400,
                micro_preds: 10_000,
                extract_points: 2000,
                server_trees: 20,
                train_hours: 21 * 24,
                measure_points: 960,
                legacy_points: 100,
                batch: 48,
                sessions: 4,
            }
        }
    }
}

/// The daily-patterned KPI value used everywhere in the serving tests.
fn kpi_value(i: usize) -> (f64, bool) {
    let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
    let anomalous = i % 63 == 50 || i % 63 == 51;
    (if anomalous { base + 150.0 } else { base }, anomalous)
}

/// A seeded synthetic dataset shaped like the real feature matrix
/// (133 severity columns, sparse positives).
fn synthetic_dataset(rows: usize, seed: u64) -> Dataset {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*: dependency-free, deterministic.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut d = Dataset::new(133);
    let mut row = vec![0.0f64; 133];
    for i in 0..rows {
        let anomalous = i % 17 == 0;
        for v in row.iter_mut() {
            let sev = next() * 2.0;
            *v = if anomalous { sev + next() * 3.0 } else { sev };
        }
        d.push(&row, anomalous);
    }
    d
}

struct Quantiles {
    p50: f64,
    p99: f64,
}

/// p50/p99 of a latency sample, in microseconds.
fn quantiles_us(samples: &mut [Duration]) -> Quantiles {
    samples.sort_unstable();
    let at = |q: f64| {
        let idx = ((samples.len() - 1) as f64 * q) as usize;
        samples[idx].as_secs_f64() * 1e6
    };
    Quantiles {
        p50: at(0.50),
        p99: at(0.99),
    }
}

struct ProtocolRun {
    points_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Polls `STATUS` until the background retrain job lands, returning the
/// server-reported training wall time in microseconds.
fn wait_trained(c: &mut Client) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = c.send("STATUS").expect("status");
        if status.contains(" training=0") {
            return status
                .split_whitespace()
                .find_map(|f| f.strip_prefix("train_us="))
                .expect("train_us field")
                .parse()
                .expect("numeric train_us");
        }
        assert!(Instant::now() < deadline, "retrain never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Connects, trains a session on labeled history, leaving it ready to
/// serve verdicts from the compiled forest.
fn trained_client(addr: std::net::SocketAddr, sizes: &Sizes, nodelay: bool) -> Client {
    let mut c = if nodelay {
        Client::connect(addr).expect("connect")
    } else {
        Client::connect_plain(addr).expect("connect")
    };
    assert!(c.send("HELLO 3600").unwrap().starts_with("OK"));
    let mut flags = String::with_capacity(sizes.train_hours);
    // History is itself streamed in batches — training setup is not what
    // this benchmark measures.
    for chunk in (0..sizes.train_hours).collect::<Vec<_>>().chunks(24) {
        let values: Vec<String> = chunk
            .iter()
            .map(|&i| {
                let (v, anomalous) = kpi_value(i);
                flags.push(if anomalous { '1' } else { '0' });
                format!("{v}")
            })
            .collect();
        let line = format!("OBSB {} {}", chunk[0] * 3600, values.join(" "));
        assert!(c.send(&line).unwrap().starts_with("OK"));
    }
    assert!(c.send(&format!("LABEL {flags}")).unwrap().starts_with("OK"));
    // RETRAIN is asynchronous: the job trains on a background thread and
    // the model swaps in between requests. Setup waits it out so the
    // measured round-trips below all serve from the trained forest.
    assert!(c.send("RETRAIN").unwrap().starts_with("OK retraining"));
    wait_trained(&mut c);
    c
}

/// Measures single-point round-trips (`OBS`): the pre-batching serving
/// path, one write + one read per point.
fn run_obs(c: &mut Client, start_hour: usize, n: usize) -> ProtocolRun {
    let mut lat = Vec::with_capacity(n);
    let t0 = Instant::now();
    for i in 0..n {
        let (v, _) = kpi_value(start_hour + i);
        let line = format!("OBS {} {v}", (start_hour + i) * 3600);
        let sent = Instant::now();
        let reply = c.send(&line).expect("obs");
        lat.push(sent.elapsed());
        assert!(reply.starts_with("OK"), "{reply}");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let q = quantiles_us(&mut lat);
    ProtocolRun {
        points_per_sec: n as f64 / elapsed,
        p50_us: q.p50,
        p99_us: q.p99,
    }
}

/// Measures batched round-trips (`OBSB`): one write + one read per
/// `batch` points. Latency quantiles are per batch line.
fn run_obsb(c: &mut Client, start_hour: usize, n: usize, batch: usize) -> ProtocolRun {
    let mut lat = Vec::with_capacity(n / batch + 1);
    let t0 = Instant::now();
    let mut i = 0;
    while i < n {
        let take = batch.min(n - i);
        let values: Vec<String> = (0..take)
            .map(|k| format!("{}", kpi_value(start_hour + i + k).0))
            .collect();
        let line = format!("OBSB {} {}", (start_hour + i) * 3600, values.join(" "));
        let sent = Instant::now();
        let reply = c.send(&line).expect("obsb");
        lat.push(sent.elapsed());
        assert!(reply.starts_with("OK"), "{reply}");
        assert_eq!(
            reply.split('|').count(),
            take,
            "batch reply carries one verdict per point"
        );
        i += take;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let q = quantiles_us(&mut lat);
    ProtocolRun {
        points_per_sec: n as f64 / elapsed,
        p50_us: q.p50,
        p99_us: q.p99,
    }
}

fn main() {
    let sizes = Sizes::from_args();
    eprintln!("[serving_bench] mode={}", sizes.mode);

    // ---- Microbench 1: online feature extraction ------------------------
    // Best of 3 passes each: the box this runs on shares a host, and a
    // single pass can eat a stolen-CPU window; the fastest pass is the
    // closest estimate of what the code actually costs.
    const EXTRACT_PASSES: usize = 3;
    let all_ts: Vec<i64> = (0..sizes.extract_points).map(|i| i as i64 * 3600).collect();
    let all_vals: Vec<Option<f64>> = (0..sizes.extract_points)
        .map(|i| Some(kpi_value(i).0))
        .collect();

    // Streaming: one point per call, the latency-critical serving shape.
    let mut extract_stream_pps = 0.0f64;
    for _ in 0..EXTRACT_PASSES {
        let mut extractor = OnlineExtractor::new(3600);
        let t0 = Instant::now();
        for i in 0..sizes.extract_points {
            let row = extractor.observe(all_ts[i], all_vals[i]);
            std::hint::black_box(row);
        }
        let pps = sizes.extract_points as f64 / t0.elapsed().as_secs_f64();
        extract_stream_pps = extract_stream_pps.max(pps);
    }

    // Batched: `observe_batch` runs the fused family kernels,
    // cost-balanced across the worker pool — the OBSB / history-replay
    // shape. The best pass also donates its live per-family kernel
    // timings (the fused *after* of the attribution table).
    let mut extract_pps = 0.0f64;
    let mut fused_stats: Vec<opprentice::features::FamilyStat> = Vec::new();
    let mut n_shards = 0usize;
    for _ in 0..EXTRACT_PASSES {
        let mut extractor_b = OnlineExtractor::new(3600);
        let t0 = Instant::now();
        let mut i = 0;
        while i < sizes.extract_points {
            let end = (i + EXTRACT_BATCH).min(sizes.extract_points);
            let rows = extractor_b.observe_batch(&all_ts[i..end], &all_vals[i..end]);
            std::hint::black_box(rows);
            i = end;
        }
        let pps = sizes.extract_points as f64 / t0.elapsed().as_secs_f64();
        if pps > extract_pps {
            extract_pps = pps;
            fused_stats = extractor_b.family_stats();
            n_shards = extractor_b.n_shards();
        }
    }
    eprintln!(
        "[extract] streaming {extract_stream_pps:.0} pts/s, batched {extract_pps:.0} pts/s \
         ({:.2}x, 133 detectors, batch of {EXTRACT_BATCH}, {n_shards} shards, \
         best of {EXTRACT_PASSES})",
        extract_pps / extract_stream_pps,
    );

    // Per-detector-family breakdown, scalar *before*: each family's
    // configurations run alone as boxed per-config detectors over the
    // same KPI — the pre-fusion execution model.
    let mut families: Vec<(&'static str, Vec<opprentice_detectors::ConfiguredDetector>)> =
        Vec::new();
    for cfg in registry(3600) {
        let name = cfg.detector.name();
        match families.last_mut() {
            Some((n, dets)) if *n == name => dets.push(cfg),
            _ => families.push((name, vec![cfg])),
        }
    }
    let family_points = sizes.extract_points.min(2000);
    let mut family_rows = Vec::new();
    for (name, dets) in families.iter_mut() {
        let t0 = Instant::now();
        for i in 0..family_points {
            let ts = i as i64 * 3600;
            let v = Some(kpi_value(i).0);
            for cfg in dets.iter_mut() {
                std::hint::black_box(cfg.observe_clamped(ts, v));
            }
        }
        let ns_per_point = t0.elapsed().as_nanos() as f64 / family_points as f64;
        family_rows.push((*name, dets.len(), ns_per_point));
    }

    // Join with the fused *after*: a fused kernel may merge sibling
    // scalar families (TSD + TSD MAD share windows, likewise historical),
    // so sum the scalar ns over the families each kernel covers.
    let scalar_ns_for = |fused_family: &str| -> f64 {
        family_rows
            .iter()
            .filter(|(name, _, _)| match fused_family {
                "TSD/TSD MAD" => *name == "TSD" || *name == "TSD MAD",
                "historical average/MAD" => {
                    *name == "historical average" || *name == "historical MAD"
                }
                f => *name == f,
            })
            .map(|(_, _, ns)| ns)
            .sum()
    };
    let mut family_table: Vec<(&'static str, usize, f64, f64)> = fused_stats
        .iter()
        .map(|s| {
            let fused_ns = if s.points > 0 {
                s.nanos as f64 / s.points as f64
            } else {
                0.0
            };
            (s.family, s.configs, scalar_ns_for(s.family), fused_ns)
        })
        .collect();
    family_table.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (name, n, scalar_ns, fused_ns) in &family_table {
        eprintln!(
            "[extract/family] {name:<24} {n:>3} configs  scalar {scalar_ns:>7.0} ns/pt  \
             fused {fused_ns:>7.0} ns/pt  ({:.2}x)",
            scalar_ns / fused_ns.max(1e-9),
        );
    }

    // ---- Microbench 2: training throughput ------------------------------
    // `fit` shards tree building across a thread pool with per-tree RNG
    // streams, so every pass (and every thread count) produces the same
    // forest bit-for-bit — re-fitting for best-of-N is sound. Rows/sec is
    // the number the CI floor guards: the background-retrain path is only
    // useful if training keeps up with the labeled-data volume.
    const TRAIN_PASSES: usize = 3;
    let train_threads = opprentice_numeric::parallel::configured_threads();
    let data = synthetic_dataset(sizes.micro_rows, 0xC0FFEE);
    let params = RandomForestParams {
        n_trees: sizes.micro_trees,
        seed: 42,
        ..Default::default()
    };
    let mut forest = RandomForest::new(params.clone());
    let mut train_rows_per_sec = 0.0f64;
    let mut train_secs = f64::INFINITY;
    for _ in 0..TRAIN_PASSES {
        forest = RandomForest::new(params.clone());
        let t0 = Instant::now();
        forest.fit(&data);
        let secs = t0.elapsed().as_secs_f64();
        train_secs = train_secs.min(secs);
        train_rows_per_sec = train_rows_per_sec.max(sizes.micro_rows as f64 / secs);
    }
    eprintln!(
        "[train] {} trees on {} rows x 133 features: {:.1} ms, {train_rows_per_sec:.0} rows/s \
         ({train_threads} threads, best of {TRAIN_PASSES})",
        sizes.micro_trees,
        sizes.micro_rows,
        train_secs * 1e3,
    );

    // ---- Microbench 3: tree-walk vs compiled inference ------------------
    let compiled = forest.compile();
    let probes: Vec<Vec<f64>> = (0..512)
        .map(|i| data.row(i % data.len()).to_vec())
        .collect();

    let t0 = Instant::now();
    for i in 0..sizes.micro_preds {
        std::hint::black_box(forest.predict_proba(&probes[i % probes.len()]));
    }
    let walk_ns = t0.elapsed().as_nanos() as f64 / sizes.micro_preds as f64;

    let t0 = Instant::now();
    for i in 0..sizes.micro_preds {
        std::hint::black_box(compiled.predict(&probes[i % probes.len()]));
    }
    let compiled_ns = t0.elapsed().as_nanos() as f64 / sizes.micro_preds as f64;

    let batch_rounds = (sizes.micro_preds / probes.len()).max(1);
    let t0 = Instant::now();
    for _ in 0..batch_rounds {
        std::hint::black_box(compiled.predict_batch(&probes));
    }
    let batch_ns = t0.elapsed().as_nanos() as f64 / (batch_rounds * probes.len()) as f64;

    eprintln!(
        "[inference] walk {walk_ns:.0} ns/pred, compiled {compiled_ns:.0} ns/pred \
         ({:.2}x), batch {batch_ns:.0} ns/pred ({:.2}x)",
        walk_ns / compiled_ns,
        walk_ns / batch_ns
    );

    // ---- TCP server: single session, OBS vs OBSB ------------------------
    let server = Server::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            n_trees: sizes.server_trees,
            ..Default::default()
        },
    )
    .expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve().expect("serve"));

    // The pre-batching baseline: a naive agent, one OBS per round-trip,
    // no TCP_NODELAY — exactly how every client drove the server before
    // this change. Nagle + delayed ACK stall each point ~40 ms, so the
    // sample is deliberately small.
    let mut legacy = trained_client(handle.addr(), &sizes, false);
    let obs_legacy = run_obs(&mut legacy, sizes.train_hours, sizes.legacy_points);
    legacy.send("QUIT").unwrap();
    eprintln!(
        "[single] legacy OBS baseline {:.0} pts/s (p50 {:.0}us p99 {:.0}us)",
        obs_legacy.points_per_sec, obs_legacy.p50_us, obs_legacy.p99_us
    );

    let mut c = trained_client(handle.addr(), &sizes, true);
    let obs = run_obs(&mut c, sizes.train_hours, sizes.measure_points);
    let obsb = run_obsb(
        &mut c,
        sizes.train_hours + sizes.measure_points,
        sizes.measure_points,
        sizes.batch,
    );

    // ---- TCP server: serving while a retrain is in flight ----------------
    // Submit an asynchronous RETRAIN (the session already holds labels)
    // and immediately stream OBS round-trips: the point of background
    // retraining is that these keep answering from the old model instead
    // of stalling for the fit. The retrain may land mid-pass on small
    // modes — the measurement is the latency of the window that *starts*
    // with a job in flight, which is the shape an agent actually sees.
    const RETRAIN_PASSES: usize = 3;
    let during_points = (sizes.measure_points / 4).max(16);
    let mut next_hour = sizes.train_hours + 2 * sizes.measure_points;
    let mut during = ProtocolRun {
        points_per_sec: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
    };
    let mut server_train_us = 0u64;
    for _ in 0..RETRAIN_PASSES {
        let reply = c.send("RETRAIN").expect("retrain");
        assert!(reply.starts_with("OK retraining"), "{reply}");
        let run = run_obs(&mut c, next_hour, during_points);
        next_hour += during_points;
        server_train_us = server_train_us.max(wait_trained(&mut c));
        if run.points_per_sec > during.points_per_sec {
            during = run;
        }
    }
    c.send("QUIT").unwrap();
    let speedup_baseline = obsb.points_per_sec / obs_legacy.points_per_sec;
    let speedup_nodelay = obsb.points_per_sec / obs.points_per_sec;
    eprintln!(
        "[single] OBS+nodelay {:.0} pts/s (p50 {:.0}us p99 {:.0}us) | OBSB {:.0} pts/s \
         (p50 {:.0}us p99 {:.0}us per batch of {}) | {speedup_baseline:.1}x vs baseline, \
         {speedup_nodelay:.2}x vs OBS+nodelay",
        obs.points_per_sec,
        obs.p50_us,
        obs.p99_us,
        obsb.points_per_sec,
        obsb.p50_us,
        obsb.p99_us,
        sizes.batch
    );
    eprintln!(
        "[during-retrain] OBS {:.0} pts/s (p50 {:.0}us p99 {:.0}us) while training, \
         server fit {server_train_us}us (best of {RETRAIN_PASSES})",
        during.points_per_sec, during.p50_us, during.p99_us
    );

    // ---- TCP server: N concurrent untrained sessions streaming OBSB -----
    // Extraction dominates the untrained path; this measures how the
    // thread-per-connection transport scales on this host.
    let addr = handle.addr();
    let per_session = sizes.measure_points / sizes.sessions;
    let t0 = Instant::now();
    let workers: Vec<_> = (0..sizes.sessions)
        .map(|_| {
            let batch = sizes.batch;
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                assert!(c.send("HELLO 3600").unwrap().starts_with("OK"));
                let mut i = 0;
                while i < per_session {
                    let take = batch.min(per_session - i);
                    let values: Vec<String> = (0..take)
                        .map(|k| format!("{}", kpi_value(i + k).0))
                        .collect();
                    let line = format!("OBSB {} {}", i * 3600, values.join(" "));
                    assert!(c.send(&line).unwrap().starts_with("OK"));
                    i += take;
                }
                c.send("QUIT").unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let concurrent_pps = (per_session * sizes.sessions) as f64 / t0.elapsed().as_secs_f64();
    eprintln!(
        "[concurrent] {} sessions, {concurrent_pps:.0} pts/s aggregate",
        sizes.sessions
    );

    handle.shutdown();
    join.join().unwrap();

    // ---- Results --------------------------------------------------------
    let json = format!(
        r#"{{
  "mode": "{mode}",
  "inference_microbench": {{
    "n_trees": {micro_trees},
    "n_features": 133,
    "before_tree_walk_ns_per_pred": {walk_ns:.1},
    "after_compiled_ns_per_pred": {compiled_ns:.1},
    "after_compiled_batch_ns_per_pred": {batch_ns:.1},
    "speedup_compiled": {sp_c:.3},
    "speedup_compiled_batch": {sp_b:.3}
  }},
  "extraction_microbench": {{
    "points_per_sec": {extract_pps:.1},
    "streaming_points_per_sec": {extract_stream_pps:.1},
    "batch_points": {extract_batch},
    "n_shards": {n_shards},
    "best_of_passes": {extract_passes},
    "per_family": {{
      "note": "scalar = per-config boxed detectors (before), fused = config-fused family kernel CPU time from the batched run (after)",
{family_json}
    }}
  }},
  "training": {{
    "note": "RandomForest::fit rows/sec; trees are built on a thread pool with per-tree RNG streams, bit-identical to sequential",
    "n_trees": {micro_trees},
    "rows": {micro_rows},
    "threads": {train_threads},
    "best_of_passes": {train_passes},
    "fit_ms": {train_ms:.2},
    "rows_per_sec": {train_rows_per_sec:.1}
  }},
  "serving_single_session": {{
    "measure_points": {measure_points},
    "before_obs_baseline": {{
      "note": "pre-change stack: one OBS per round-trip from a naive agent without TCP_NODELAY",
      "points": {legacy_points},
      "points_per_sec": {leg_pps:.1},
      "p50_roundtrip_us": {leg_p50:.1},
      "p99_roundtrip_us": {leg_p99:.1}
    }},
    "obs_nodelay": {{
      "note": "single-point path after the I/O fixes (coalesced replies, TCP_NODELAY), still one round-trip per point",
      "points_per_sec": {obs_pps:.1},
      "p50_roundtrip_us": {obs_p50:.1},
      "p99_roundtrip_us": {obs_p99:.1}
    }},
    "after_obsb": {{
      "batch": {batch},
      "points_per_sec": {obsb_pps:.1},
      "p50_roundtrip_us": {obsb_p50:.1},
      "p99_roundtrip_us": {obsb_p99:.1}
    }},
    "speedup_obsb_over_obs_baseline": {speedup_baseline:.3},
    "speedup_obsb_over_obs_nodelay": {speedup_nodelay:.3}
  }},
  "serving_during_retrain": {{
    "note": "OBS round-trips measured in a window opened by an asynchronous RETRAIN: the old model keeps serving until the background fit swaps in between requests",
    "points": {during_points},
    "best_of_passes": {retrain_passes},
    "points_per_sec": {during_pps:.1},
    "p50_roundtrip_us": {during_p50:.1},
    "p99_roundtrip_us": {during_p99:.1},
    "server_train_us": {server_train_us}
  }},
  "serving_concurrent": {{
    "sessions": {sessions},
    "points_per_sec": {concurrent_pps:.1}
  }}
}}
"#,
        mode = sizes.mode,
        extract_batch = EXTRACT_BATCH,
        extract_passes = EXTRACT_PASSES,
        family_json = family_table
            .iter()
            .map(|(name, n, scalar_ns, fused_ns)| format!(
                "      \"{name}\": {{\"configs\": {n}, \"scalar_ns_per_point\": {scalar_ns:.1}, \
                 \"fused_ns_per_point\": {fused_ns:.1}, \"speedup\": {:.2}}}",
                scalar_ns / fused_ns.max(1e-9)
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        micro_trees = sizes.micro_trees,
        micro_rows = sizes.micro_rows,
        train_passes = TRAIN_PASSES,
        train_ms = train_secs * 1e3,
        retrain_passes = RETRAIN_PASSES,
        during_pps = during.points_per_sec,
        during_p50 = during.p50_us,
        during_p99 = during.p99_us,
        sp_c = walk_ns / compiled_ns,
        sp_b = walk_ns / batch_ns,
        measure_points = sizes.measure_points,
        legacy_points = sizes.legacy_points,
        leg_pps = obs_legacy.points_per_sec,
        leg_p50 = obs_legacy.p50_us,
        leg_p99 = obs_legacy.p99_us,
        obs_pps = obs.points_per_sec,
        obs_p50 = obs.p50_us,
        obs_p99 = obs.p99_us,
        batch = sizes.batch,
        obsb_pps = obsb.points_per_sec,
        obsb_p50 = obsb.p50_us,
        obsb_p99 = obsb.p99_us,
        sessions = sizes.sessions,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_serving.json";
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("[json] wrote {path}");

    if let Some(floor) = floor_arg("--min-extract-pps") {
        if extract_pps < floor {
            eprintln!(
                "[FAIL] batched extraction {extract_pps:.0} pts/s is below the \
                 committed floor of {floor:.0} pts/s"
            );
            std::process::exit(1);
        }
        eprintln!("[floor] batched extraction {extract_pps:.0} pts/s >= {floor:.0} pts/s");
    }
    if let Some(floor) = floor_arg("--min-obsb-pps") {
        if obsb.points_per_sec < floor {
            eprintln!(
                "[FAIL] OBSB serving {:.0} pts/s is below the committed floor of {floor:.0} pts/s",
                obsb.points_per_sec
            );
            std::process::exit(1);
        }
        eprintln!(
            "[floor] OBSB serving {:.0} pts/s >= {floor:.0} pts/s",
            obsb.points_per_sec
        );
    }
    if let Some(floor) = floor_arg("--min-train-rows-per-sec") {
        if train_rows_per_sec < floor {
            eprintln!(
                "[FAIL] training {train_rows_per_sec:.0} rows/s is below the \
                 committed floor of {floor:.0} rows/s"
            );
            std::process::exit(1);
        }
        eprintln!("[floor] training {train_rows_per_sec:.0} rows/s >= {floor:.0} rows/s");
    }
}
