//! Shared harness for the table/figure binaries.
//!
//! Every binary regenerates one table or figure of the Opprentice paper
//! (see DESIGN.md §3 for the index and EXPERIMENTS.md for measured-vs-paper
//! results). They share this setup path:
//!
//! 1. generate the three Table-1 KPIs ([`opprentice_datagen::presets`]),
//! 2. label them with the simulated operator (§4.2) — the operator's noisy
//!    labels are the ground truth, exactly as in the paper, where accuracy
//!    is always measured against what operators labeled,
//! 3. extract the 133 detector features,
//! 4. hand everything to [`opprentice::evaluate::Evaluator`].
//!
//! ## Scale
//!
//! By default the two 1-minute KPIs are rescaled to a 5-minute interval
//! ("fast scale") so every experiment fits a small host; pass `--full` to
//! any binary for the paper's native scale. The rescaling preserves the
//! relative comparisons the paper makes (see DESIGN.md §1).

pub mod experiments;

use opprentice::evaluate::Evaluator;
use opprentice::features::FeatureMatrix;
use opprentice_datagen::model::{KpiSpec, LabeledKpi};
use opprentice_datagen::operator::LabelingSession;
use opprentice_datagen::{presets, SimulatedOperator};
use opprentice_learn::RandomForestParams;
use opprentice_timeseries::Labels;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Command-line options shared by all binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// `true` = paper-native scale (1-minute PV/#SR); `false` = 5-minute.
    pub full: bool,
}

impl RunOpts {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        Self { full }
    }

    /// The interval floor applied to minute KPIs.
    pub fn interval(&self) -> u32 {
        if self.full {
            60
        } else {
            300
        }
    }

    /// Forest size: big enough for fine-grained vote probabilities.
    pub fn forest_params(&self) -> RandomForestParams {
        RandomForestParams {
            n_trees: if self.full { 60 } else { 50 },
            seed: 42,
            ..Default::default()
        }
    }

    /// Size-aware forest parameters: small KPIs (like the 60-minute SRT)
    /// afford — and, for stable cross-week score calibration, need — many
    /// more trees per retraining round.
    pub fn forest_params_for(&self, n_points: usize) -> RandomForestParams {
        let mut p = self.forest_params();
        if n_points < 10_000 {
            p.n_trees = 200;
        }
        p
    }
}

/// A fully prepared KPI experiment: data, operator labels, features.
pub struct KpiRun {
    /// The generated KPI (with the injector's exact truth, used only by
    /// the data-characterization experiments).
    pub kpi: LabeledKpi,
    /// The simulated operator's labeling session — `session.labels` is the
    /// ground truth for all accuracy experiments.
    pub session: LabelingSession,
    /// The 133-column feature matrix.
    pub matrix: FeatureMatrix,
    /// Points per week at this KPI's interval.
    pub ppw: usize,
}

impl KpiRun {
    /// The operator-labeled ground truth.
    pub fn truth(&self) -> &Labels {
        &self.session.labels
    }

    /// An evaluator over this run with size-aware forest parameters.
    pub fn evaluator(&self, opts: &RunOpts) -> Evaluator<'_> {
        let mut ev = Evaluator::new(&self.matrix, self.truth(), self.ppw);
        ev.forest_params = opts.forest_params_for(self.matrix.len());
        ev
    }
}

/// Generates, labels and featurizes one KPI spec at the chosen scale.
pub fn prepare(spec: &KpiSpec, opts: &RunOpts) -> KpiRun {
    let spec = presets::fast(spec, opts.interval());
    let t0 = Instant::now();
    let kpi = spec.generate();
    let session = SimulatedOperator::default().label(&kpi);
    let matrix = opprentice::extract_features(&kpi.series);
    let ppw = kpi.series.points_per_week();
    eprintln!(
        "[prepare] {}: {} points, {} anomalous ({:.1}%), {} features, {:.1?}",
        kpi.name,
        kpi.series.len(),
        session.labels.anomaly_count(),
        100.0 * session.labels.anomaly_ratio(),
        matrix.n_features(),
        t0.elapsed()
    );
    KpiRun {
        kpi,
        session,
        matrix,
        ppw,
    }
}

/// The three studied KPIs, prepared in the paper's order.
pub fn prepare_all(opts: &RunOpts) -> Vec<KpiRun> {
    presets::all().iter().map(|s| prepare(s, opts)).collect()
}

/// Writes a CSV file under `results/`, creating the directory as needed.
/// Returns the path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    eprintln!("[csv] wrote {}", path.display());
    path
}

/// Renders a unit-scaled ASCII sparkline of a value series (missing → `·`).
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let step = (values.len() as f64 / width as f64).max(1.0);
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    (0..width.min(values.len()))
        .map(|w| {
            let v = values[(w as f64 * step) as usize];
            if !v.is_finite() {
                '·'
            } else {
                BARS[(((v - lo) / span) * 7.0).round() as usize]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_has_requested_width() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        assert_eq!(sparkline(&values, 40).chars().count(), 40);
    }

    #[test]
    fn sparkline_marks_missing() {
        let s = sparkline(&[1.0, f64::NAN, 2.0], 3);
        assert!(s.contains('·'));
    }

    #[test]
    fn opts_interval_mapping() {
        assert_eq!(RunOpts { full: true }.interval(), 60);
        assert_eq!(RunOpts { full: false }.interval(), 300);
    }
}
