//! §5.8 — detection lag and training time, as Criterion benches.
//!
//! The paper reports, on a Xeon E5-2420: 0.15 s to extract all 133
//! features per point, < 0.0001 s to classify a point, < 5 minutes per
//! offline training round — and argues feasibility because the lag is far
//! below the 1-minute data interval. The benches below measure the same
//! three quantities; EXPERIMENTS.md records the comparison. The ordering
//! that must hold: classification ≪ extraction ≪ data interval.
//!
//! Run: `cargo bench -p opprentice-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use opprentice::extract_features;
use opprentice::features::OnlineExtractor;
use opprentice_datagen::presets;
use opprentice_learn::{Classifier, RandomForest, RandomForestParams};
use std::hint::black_box;

/// A prepared 8-week hourly KPI for the training benches (small enough for
/// Criterion's repeated fitting, large enough to be representative).
fn training_data() -> (opprentice_learn::Dataset, Vec<f64>) {
    let mut spec = presets::srt();
    spec.weeks = 8;
    let kpi = spec.generate();
    let matrix = extract_features(&kpi.series);
    let (ds, _) = matrix.dataset(&kpi.truth, 0..matrix.len());
    let probe = matrix.row(matrix.len() / 2).to_vec();
    (ds, probe)
}

fn bench_feature_extraction_lag(c: &mut Criterion) {
    // Per-point lag of running all 133 detector configurations online.
    let mut spec = presets::srt();
    spec.weeks = 8;
    let kpi = spec.generate();
    let mut group = c.benchmark_group("s5.8");
    group.bench_function("feature_extraction_per_point", |b| {
        b.iter_batched(
            || {
                // A warmed-up extractor (detectors past their windows).
                let mut ex = OnlineExtractor::new(kpi.series.interval());
                for (ts, v) in kpi.series.slice(0..kpi.series.points_per_week()).iter() {
                    ex.observe(ts, v);
                }
                ex
            },
            |mut ex| {
                let ts = kpi.series.timestamp_at(kpi.series.points_per_week());
                black_box(ex.observe(ts, Some(500.0)).len());
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_classification_lag(c: &mut Criterion) {
    let (ds, probe) = training_data();
    let mut forest = RandomForest::new(RandomForestParams {
        n_trees: 60,
        ..Default::default()
    });
    forest.fit(&ds);
    c.benchmark_group("s5.8")
        .bench_function("classification_per_point", |b| {
            b.iter(|| black_box(forest.predict_proba(black_box(&probe))))
        });
}

fn bench_training_time(c: &mut Criterion) {
    let (ds, _) = training_data();
    let mut group = c.benchmark_group("s5.8");
    group.sample_size(10);
    group.bench_function("training_round_8_weeks", |b| {
        b.iter(|| {
            let mut forest = RandomForest::new(RandomForestParams {
                n_trees: 60,
                ..Default::default()
            });
            forest.fit(black_box(&ds));
            black_box(forest.tree_count())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_extraction_lag,
    bench_classification_lag,
    bench_training_time
);
criterion_main!(benches);
