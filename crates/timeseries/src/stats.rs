//! Summary statistics over KPI series, reproducing the characteristics the
//! paper reports in Table 1: dispersion (coefficient of variation) and
//! seasonality strength.
//!
//! All statistics skip missing (`NaN`) points.

use crate::TimeSeries;

/// Mean of the present (non-missing) points, or `None` if none are present.
pub fn mean(series: &TimeSeries) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in series.values() {
        if !v.is_nan() {
            sum += v;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Population standard deviation of the present points, or `None` if fewer
/// than one point is present.
pub fn std_dev(series: &TimeSeries) -> Option<f64> {
    let m = mean(series)?;
    let mut acc = 0.0;
    let mut n = 0usize;
    for v in series.values() {
        if !v.is_nan() {
            acc += (v - m) * (v - m);
            n += 1;
        }
    }
    Some((acc / n as f64).sqrt())
}

/// Coefficient of variation `Cv = std / mean` — Table 1 reports 0.48 for PV,
/// 2.1 for #SR and 0.07 for SRT. Returns `None` when the mean is zero or the
/// series is empty/missing.
pub fn coefficient_of_variation(series: &TimeSeries) -> Option<f64> {
    let m = mean(series)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(series)? / m.abs())
}

/// Autocorrelation of the series at `lag` points, skipping pairs with a
/// missing endpoint. Returns `None` when fewer than two usable pairs exist
/// or the variance is zero.
pub fn autocorrelation(series: &TimeSeries, lag: usize) -> Option<f64> {
    if lag == 0 {
        return Some(1.0);
    }
    if series.len() <= lag {
        return None;
    }
    let m = mean(series)?;
    let mut num = 0.0;
    let mut pairs = 0usize;
    let vals = series.values();
    for i in lag..vals.len() {
        let (a, b) = (vals[i], vals[i - lag]);
        if !a.is_nan() && !b.is_nan() {
            num += (a - m) * (b - m);
            pairs += 1;
        }
    }
    if pairs < 2 {
        return None;
    }
    let mut den = 0.0;
    let mut n = 0usize;
    for v in vals {
        if !v.is_nan() {
            den += (v - m) * (v - m);
            n += 1;
        }
    }
    if den == 0.0 {
        return None;
    }
    // Scale numerator and denominator to comparable per-sample averages.
    Some((num / pairs as f64) / (den / n as f64))
}

/// Seasonality strength: the autocorrelation at the daily lag, clamped to
/// `[0, 1]`. The paper characterizes PV as "strong", SRT as "moderate" and
/// #SR as "weak" seasonality (Table 1); this gives those bands a number.
pub fn seasonality_strength(series: &TimeSeries) -> Option<f64> {
    let lag = series.points_per_day();
    autocorrelation(series, lag).map(|r| r.clamp(0.0, 1.0))
}

/// Qualitative seasonality band matching Table 1's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seasonality {
    /// Daily autocorrelation below 0.4.
    Weak,
    /// Daily autocorrelation in `[0.4, 0.75)`.
    Moderate,
    /// Daily autocorrelation of at least 0.75.
    Strong,
}

/// Classifies [`seasonality_strength`] into Table 1's bands.
pub fn seasonality_band(series: &TimeSeries) -> Option<Seasonality> {
    let s = seasonality_strength(series)?;
    Some(if s >= 0.75 {
        Seasonality::Strong
    } else if s >= 0.4 {
        Seasonality::Moderate
    } else {
        Seasonality::Weak
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(len: usize, v: f64) -> TimeSeries {
        TimeSeries::from_values(0, 60, vec![v; len])
    }

    #[test]
    fn mean_and_std_skip_missing() {
        let ts = TimeSeries::from_values(0, 60, vec![1.0, f64::NAN, 3.0]);
        assert_eq!(mean(&ts), Some(2.0));
        assert!((std_dev(&ts).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_all_missing_yields_none() {
        let empty = TimeSeries::new(0, 60);
        assert_eq!(mean(&empty), None);
        let missing = TimeSeries::from_values(0, 60, vec![f64::NAN; 4]);
        assert_eq!(mean(&missing), None);
        assert_eq!(coefficient_of_variation(&missing), None);
    }

    #[test]
    fn cv_matches_hand_computation() {
        let ts = TimeSeries::from_values(0, 60, vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // mean = 5, population std = 2 => Cv = 0.4
        assert!((coefficient_of_variation(&ts).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cv_none_for_zero_mean() {
        let ts = TimeSeries::from_values(0, 60, vec![-1.0, 1.0]);
        assert_eq!(coefficient_of_variation(&ts), None);
    }

    #[test]
    fn autocorrelation_of_periodic_signal_peaks_at_period() {
        // Hourly interval => 24 points/day; a perfect daily sine.
        let n = 24 * 14;
        let vals: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
            .collect();
        let ts = TimeSeries::from_values(0, 3600, vals);
        let daily = autocorrelation(&ts, 24).unwrap();
        assert!(daily > 0.95, "daily autocorr {daily}");
        let half = autocorrelation(&ts, 12).unwrap();
        assert!(half < -0.9, "half-period autocorr {half}");
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let ts = constant(10, 5.0);
        assert_eq!(autocorrelation(&ts, 0), Some(1.0));
    }

    #[test]
    fn autocorrelation_none_when_variance_zero() {
        let ts = constant(100, 5.0);
        assert_eq!(autocorrelation(&ts, 1), None);
    }

    #[test]
    fn seasonality_bands() {
        let n = 24 * 14;
        let strong: Vec<f64> = (0..n)
            .map(|i| 100.0 + 50.0 * (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
            .collect();
        let ts = TimeSeries::from_values(0, 3600, strong);
        assert_eq!(seasonality_band(&ts), Some(Seasonality::Strong));
    }

    #[test]
    fn weak_seasonality_for_noise() {
        // Deterministic pseudo-noise with no daily structure.
        let n = 24 * 14;
        let vals: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761usize) % 1000) as f64)
            .collect();
        let ts = TimeSeries::from_values(0, 3600, vals);
        assert_eq!(seasonality_band(&ts), Some(Seasonality::Weak));
    }
}
