//! Anomaly labels: per-point ground truth and operator-style windows.
//!
//! Operators using the labeling tool of §4.2 do not label individual time
//! bins; they "left click and drag the mouse to label the window of
//! anomalies". Detection, training and evaluation, however, "are all designed
//! to work with individual data points" (§4.3.1). [`AnomalyWindow`] and
//! [`Labels`] provide both views and the conversions between them.

use serde::{Deserialize, Serialize};

/// A contiguous run of anomalous points, `[start, end)` in point indices.
///
/// This is the unit of one operator label action: Fig. 14 of the paper plots
/// labeling time against the number of these windows per month.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AnomalyWindow {
    /// First anomalous point index (inclusive).
    pub start: usize,
    /// One past the last anomalous point index (exclusive).
    pub end: usize,
}

impl AnomalyWindow {
    /// Creates a window over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` (windows are non-empty).
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "anomaly window must be non-empty");
        Self { start, end }
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Windows are non-empty by construction; always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if point index `i` falls inside the window.
    pub fn contains(&self, i: usize) -> bool {
        (self.start..self.end).contains(&i)
    }

    /// `true` if the two windows share at least one point.
    pub fn overlaps(&self, other: &AnomalyWindow) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Per-point anomaly labels aligned with a [`crate::TimeSeries`].
///
/// `true` marks an anomalous point. This is the "ground truth" of §2.2:
/// recall and precision are computed against it point by point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Labels {
    flags: Vec<bool>,
}

impl Labels {
    /// All-normal labels for a series of `len` points.
    pub fn all_normal(len: usize) -> Self {
        Self {
            flags: vec![false; len],
        }
    }

    /// Builds labels from raw per-point flags.
    pub fn from_flags(flags: Vec<bool>) -> Self {
        Self { flags }
    }

    /// Builds point labels of length `len` from operator windows.
    ///
    /// Windows may overlap (an operator may label the same region twice);
    /// points past `len` are clipped, mirroring the tool's behaviour at the
    /// end of the loaded data.
    pub fn from_windows(len: usize, windows: &[AnomalyWindow]) -> Self {
        let mut flags = vec![false; len];
        for w in windows {
            for flag in flags.iter_mut().take(w.end.min(len)).skip(w.start.min(len)) {
                *flag = true;
            }
        }
        Self { flags }
    }

    /// Number of labeled points.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// `true` if point `i` is labeled anomalous.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn is_anomaly(&self, i: usize) -> bool {
        self.flags[i]
    }

    /// Marks point `i` anomalous (right-click erase is [`Labels::clear`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn mark(&mut self, i: usize) {
        self.flags[i] = true;
    }

    /// Clears the anomaly mark on point `i` — the tool's "right click and
    /// drag to (partially) cancel previously labeled window".
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn clear(&mut self, i: usize) {
        self.flags[i] = false;
    }

    /// Appends a label for a newly arrived point.
    pub fn push(&mut self, anomalous: bool) {
        self.flags.push(anomalous);
    }

    /// Total anomalous points.
    pub fn anomaly_count(&self) -> usize {
        self.flags.iter().filter(|&&f| f).count()
    }

    /// Fraction of anomalous points — the paper reports 7.8%, 2.8% and 7.4%
    /// for PV, #SR and SRT (§5.1).
    pub fn anomaly_ratio(&self) -> f64 {
        if self.flags.is_empty() {
            return 0.0;
        }
        self.anomaly_count() as f64 / self.len() as f64
    }

    /// The raw flags.
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// Labels restricted to `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Labels {
        Labels {
            flags: self.flags[range].to_vec(),
        }
    }

    /// Decomposes the point labels into maximal anomalous windows — the
    /// inverse of [`Labels::from_windows`] up to window merging.
    pub fn to_windows(&self) -> Vec<AnomalyWindow> {
        let mut windows = Vec::new();
        let mut run_start: Option<usize> = None;
        for (i, &f) in self.flags.iter().enumerate() {
            match (f, run_start) {
                (true, None) => run_start = Some(i),
                (false, Some(s)) => {
                    windows.push(AnomalyWindow::new(s, i));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            windows.push(AnomalyWindow::new(s, self.flags.len()));
        }
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_basics() {
        let w = AnomalyWindow::new(5, 8);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert!(w.contains(5));
        assert!(w.contains(7));
        assert!(!w.contains(8));
        assert!(!w.contains(4));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = AnomalyWindow::new(3, 3);
    }

    #[test]
    fn window_overlap() {
        let a = AnomalyWindow::new(0, 5);
        let b = AnomalyWindow::new(4, 9);
        let c = AnomalyWindow::new(5, 9);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn from_windows_marks_points() {
        let labels =
            Labels::from_windows(10, &[AnomalyWindow::new(2, 4), AnomalyWindow::new(7, 9)]);
        let marked: Vec<usize> = (0..10).filter(|&i| labels.is_anomaly(i)).collect();
        assert_eq!(marked, vec![2, 3, 7, 8]);
        assert_eq!(labels.anomaly_count(), 4);
    }

    #[test]
    fn from_windows_clips_past_end() {
        let labels = Labels::from_windows(5, &[AnomalyWindow::new(3, 100)]);
        assert_eq!(labels.anomaly_count(), 2);
    }

    #[test]
    fn overlapping_windows_do_not_double_count() {
        let labels =
            Labels::from_windows(10, &[AnomalyWindow::new(2, 6), AnomalyWindow::new(4, 8)]);
        assert_eq!(labels.anomaly_count(), 6);
    }

    #[test]
    fn to_windows_round_trip() {
        let windows = vec![
            AnomalyWindow::new(0, 2),
            AnomalyWindow::new(5, 6),
            AnomalyWindow::new(8, 10),
        ];
        let labels = Labels::from_windows(10, &windows);
        assert_eq!(labels.to_windows(), windows);
    }

    #[test]
    fn to_windows_handles_trailing_run() {
        let labels = Labels::from_flags(vec![false, true, true]);
        assert_eq!(labels.to_windows(), vec![AnomalyWindow::new(1, 3)]);
    }

    #[test]
    fn adjacent_windows_merge_in_round_trip() {
        // from_windows([2,4), [4,6)) == one run [2,6): merging is expected.
        let labels = Labels::from_windows(8, &[AnomalyWindow::new(2, 4), AnomalyWindow::new(4, 6)]);
        assert_eq!(labels.to_windows(), vec![AnomalyWindow::new(2, 6)]);
    }

    #[test]
    fn mark_clear_push() {
        let mut labels = Labels::all_normal(3);
        labels.mark(1);
        assert!(labels.is_anomaly(1));
        labels.clear(1);
        assert!(!labels.is_anomaly(1));
        labels.push(true);
        assert_eq!(labels.len(), 4);
        assert!(labels.is_anomaly(3));
    }

    #[test]
    fn anomaly_ratio() {
        let labels = Labels::from_flags(vec![true, false, false, true]);
        assert!((labels.anomaly_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(Labels::all_normal(0).anomaly_ratio(), 0.0);
    }

    #[test]
    fn slice_labels() {
        let labels = Labels::from_flags(vec![true, false, true, true, false]);
        let s = labels.slice(1..4);
        assert_eq!(s.flags(), &[false, true, true]);
    }
}
