//! The fixed-interval KPI time series container.

use serde::{Deserialize, Serialize};

/// Number of seconds in a day.
pub const SECONDS_PER_DAY: i64 = 86_400;
/// Number of seconds in a week.
pub const SECONDS_PER_WEEK: i64 = 7 * SECONDS_PER_DAY;

/// A fixed-interval `(timestamp, value)` time series — the paper's "KPI data".
///
/// Values are `f64`; a missing point ("dirty data", §6 of the paper) is
/// stored as `NaN` and surfaced through [`TimeSeries::get`] as `None`.
/// Timestamps are derived: point `i` is at `start + i * interval` seconds.
///
/// The container is append-only, matching the online setting of the paper:
/// new points arrive one interval at a time and are pushed at the end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    start: i64,
    interval: u32,
    values: Vec<f64>,
}

/// Equality treats missing points (`NaN`) as equal to each other, so two
/// generated series with the same gaps compare equal (bitwise semantics).
impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start
            && self.interval == other.interval
            && self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.to_bits() == b.to_bits() || a == b)
    }
}

impl TimeSeries {
    /// Creates an empty series whose first point will be at epoch second
    /// `start`, with `interval` seconds between consecutive points.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(start: i64, interval: u32) -> Self {
        assert!(interval > 0, "interval must be positive");
        Self {
            start,
            interval,
            values: Vec::new(),
        }
    }

    /// Creates a series from raw values (use `NaN` for missing points).
    pub fn from_values(start: i64, interval: u32, values: Vec<f64>) -> Self {
        assert!(interval > 0, "interval must be positive");
        Self {
            start,
            interval,
            values,
        }
    }

    /// Epoch second of the first point.
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Seconds between consecutive points.
    pub fn interval(&self) -> u32 {
        self.interval
    }

    /// Number of points (including missing ones).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends the next point's value. Use [`TimeSeries::push_missing`] for a gap.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Appends a missing point (stored as `NaN`).
    pub fn push_missing(&mut self) {
        self.values.push(f64::NAN);
    }

    /// The value at index `i`, or `None` if the point is missing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        let v = self.values[i];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Raw value at index `i` (`NaN` for missing), or `None` out of bounds.
    pub fn raw(&self, i: usize) -> Option<f64> {
        self.values.get(i).copied()
    }

    /// `true` if the point at `i` is missing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn is_missing(&self, i: usize) -> bool {
        self.values[i].is_nan()
    }

    /// Epoch second of the point at index `i`.
    pub fn timestamp_at(&self, i: usize) -> i64 {
        self.start + i as i64 * i64::from(self.interval)
    }

    /// Index of the point covering epoch second `ts`, or `None` if `ts`
    /// precedes the series start or lands past the last point.
    pub fn index_of(&self, ts: i64) -> Option<usize> {
        if ts < self.start {
            return None;
        }
        let idx = ((ts - self.start) / i64::from(self.interval)) as usize;
        (idx < self.len()).then_some(idx)
    }

    /// Points per day, e.g. 1440 for a 1-minute KPI, 24 for SRT's 60-minute
    /// interval (Table 1).
    pub fn points_per_day(&self) -> usize {
        (SECONDS_PER_DAY / i64::from(self.interval)) as usize
    }

    /// Points per week.
    pub fn points_per_week(&self) -> usize {
        (SECONDS_PER_WEEK / i64::from(self.interval)) as usize
    }

    /// Number of whole weeks currently held.
    pub fn whole_weeks(&self) -> usize {
        self.len() / self.points_per_week()
    }

    /// The values backing this series (`NaN` = missing).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A sub-series covering `range` (half-open index range). The slice keeps
    /// correct absolute timestamps.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> TimeSeries {
        TimeSeries {
            start: self.timestamp_at(range.start),
            interval: self.interval,
            values: self.values[range].to_vec(),
        }
    }

    /// Iterator over `(timestamp, Option<value>)` pairs.
    pub fn iter(&self) -> TimeSeriesIter<'_> {
        TimeSeriesIter {
            series: self,
            idx: 0,
        }
    }

    /// Fraction of points that are missing.
    pub fn missing_ratio(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let missing = self.values.iter().filter(|v| v.is_nan()).count();
        missing as f64 / self.len() as f64
    }
}

/// Iterator over the `(timestamp, Option<value>)` pairs of a [`TimeSeries`].
#[derive(Debug)]
pub struct TimeSeriesIter<'a> {
    series: &'a TimeSeries,
    idx: usize,
}

impl Iterator for TimeSeriesIter<'_> {
    type Item = (i64, Option<f64>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.idx >= self.series.len() {
            return None;
        }
        let item = (
            self.series.timestamp_at(self.idx),
            self.series.get(self.idx),
        );
        self.idx += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.series.len() - self.idx;
        (rem, Some(rem))
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = (i64, Option<f64>);
    type IntoIter = TimeSeriesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Slot of the day (0-based) for epoch second `ts` at a given interval —
/// e.g. minute-of-day for a 60-second interval. Used by detectors with daily
/// seasonal memory (historical average, Holt–Winters).
pub fn slot_of_day(ts: i64, interval: u32) -> usize {
    (ts.rem_euclid(SECONDS_PER_DAY) / i64::from(interval)) as usize
}

/// Slot of the week (0-based) for epoch second `ts` at a given interval.
/// Used by detectors with weekly seasonal memory (TSD, TSD MAD).
pub fn slot_of_week(ts: i64, interval: u32) -> usize {
    (ts.rem_euclid(SECONDS_PER_WEEK) / i64::from(interval)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_0_to_9() -> TimeSeries {
        TimeSeries::from_values(1000, 60, (0..10).map(f64::from).collect())
    }

    #[test]
    fn new_series_is_empty() {
        let ts = TimeSeries::new(0, 60);
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = TimeSeries::new(0, 0);
    }

    #[test]
    fn push_and_get() {
        let mut ts = TimeSeries::new(0, 60);
        ts.push(1.5);
        ts.push_missing();
        ts.push(3.0);
        assert_eq!(ts.get(0), Some(1.5));
        assert_eq!(ts.get(1), None);
        assert!(ts.is_missing(1));
        assert_eq!(ts.get(2), Some(3.0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn timestamps_are_start_plus_interval() {
        let ts = series_0_to_9();
        assert_eq!(ts.timestamp_at(0), 1000);
        assert_eq!(ts.timestamp_at(3), 1180);
    }

    #[test]
    fn index_of_inverts_timestamp_at() {
        let ts = series_0_to_9();
        for i in 0..ts.len() {
            assert_eq!(ts.index_of(ts.timestamp_at(i)), Some(i));
        }
        // Mid-interval timestamps map to the covering point.
        assert_eq!(ts.index_of(1030), Some(0));
        assert_eq!(ts.index_of(999), None);
        assert_eq!(ts.index_of(1000 + 600), None);
    }

    #[test]
    fn calendar_math() {
        let minute = TimeSeries::new(0, 60);
        assert_eq!(minute.points_per_day(), 1440);
        assert_eq!(minute.points_per_week(), 10080);
        let hourly = TimeSeries::new(0, 3600);
        assert_eq!(hourly.points_per_day(), 24);
        assert_eq!(hourly.points_per_week(), 168);
    }

    #[test]
    fn whole_weeks_counts_complete_weeks() {
        let mut ts = TimeSeries::new(0, 3600);
        for _ in 0..(168 * 2 + 5) {
            ts.push(0.0);
        }
        assert_eq!(ts.whole_weeks(), 2);
    }

    #[test]
    fn slice_preserves_timestamps() {
        let ts = series_0_to_9();
        let s = ts.slice(3..7);
        assert_eq!(s.len(), 4);
        assert_eq!(s.start(), ts.timestamp_at(3));
        assert_eq!(s.get(0), Some(3.0));
        assert_eq!(s.timestamp_at(1), ts.timestamp_at(4));
    }

    #[test]
    fn iterator_yields_all_points() {
        let mut ts = series_0_to_9();
        ts.push_missing();
        let collected: Vec<_> = ts.iter().collect();
        assert_eq!(collected.len(), 11);
        assert_eq!(collected[0], (1000, Some(0.0)));
        assert_eq!(collected[10], (1000 + 600, None));
        assert_eq!(ts.iter().size_hint(), (11, Some(11)));
    }

    #[test]
    fn missing_ratio() {
        let mut ts = TimeSeries::new(0, 60);
        assert_eq!(ts.missing_ratio(), 0.0);
        ts.push(1.0);
        ts.push_missing();
        ts.push_missing();
        ts.push(4.0);
        assert!((ts.missing_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slot_helpers() {
        // 90 minutes past midnight at 60s interval = slot 90 of the day.
        assert_eq!(slot_of_day(90 * 60, 60), 90);
        // Same with a day offset.
        assert_eq!(slot_of_day(SECONDS_PER_DAY + 90 * 60, 60), 90);
        // Week slot advances across days.
        assert_eq!(slot_of_week(SECONDS_PER_DAY + 90 * 60, 60), 1440 + 90);
        // Negative epochs still map into [0, period).
        assert_eq!(slot_of_day(-60, 60), 1439);
        assert_eq!(slot_of_week(-60, 60), 10079);
    }

    #[test]
    fn clone_equality() {
        let ts = series_0_to_9();
        assert_eq!(ts.clone(), ts);
    }
}
