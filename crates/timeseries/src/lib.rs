//! KPI time-series containers for the Opprentice reproduction.
//!
//! The Opprentice paper (IMC 2015) works on *KPI data*: `(timestamp, value)`
//! pair time series with a fixed sampling interval, collected from sources
//! such as SNMP, syslogs and web access logs (§2.1). This crate provides the
//! data model everything else in the workspace is built on:
//!
//! * [`TimeSeries`] — a fixed-interval series with `NaN` encoding missing
//!   points ("dirty data" in §6 of the paper),
//! * [`Labels`] — per-point anomaly ground truth, convertible to and from
//!   the [`AnomalyWindow`]s that operators actually label with the tool of
//!   §4.2,
//! * calendar math ([`TimeSeries::points_per_day`], [`slot_of_day`],
//!   [`slot_of_week`]…) used by the seasonal detectors,
//! * summary statistics ([`stats`]) reproducing the Table 1 characteristics
//!   (coefficient of variation, seasonality strength).
//!
//! # Example
//!
//! ```
//! use opprentice_timeseries::{TimeSeries, Labels, AnomalyWindow};
//!
//! // A 1-minute KPI starting at epoch 0.
//! let mut ts = TimeSeries::new(0, 60);
//! for i in 0..1440 {
//!     ts.push((i % 60) as f64); // a toy hourly pattern
//! }
//! assert_eq!(ts.points_per_day(), 1440);
//!
//! // Operators label windows, not individual points (§4.2).
//! let labels = Labels::from_windows(ts.len(), &[AnomalyWindow::new(100, 110)]);
//! assert_eq!(labels.anomaly_count(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod labels;
mod series;
pub mod stats;

pub use labels::{AnomalyWindow, Labels};
pub use series::{
    slot_of_day, slot_of_week, TimeSeries, TimeSeriesIter, SECONDS_PER_DAY, SECONDS_PER_WEEK,
};
