//! Property-based tests for the time-series containers.

use opprentice_timeseries::{slot_of_day, slot_of_week, AnomalyWindow, Labels, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// index_of is the left inverse of timestamp_at for every in-range point.
    #[test]
    fn index_of_inverts_timestamp(
        start in -1_000_000i64..1_000_000,
        interval in 1u32..7200,
        len in 1usize..500,
    ) {
        let ts = TimeSeries::from_values(start, interval, vec![0.0; len]);
        for i in (0..len).step_by(7.max(len / 13)) {
            prop_assert_eq!(ts.index_of(ts.timestamp_at(i)), Some(i));
        }
    }

    /// Windows -> labels -> windows preserves the labeled point set.
    #[test]
    fn window_label_round_trip(
        len in 1usize..300,
        raw in prop::collection::vec((0usize..300, 1usize..20), 0..8),
    ) {
        let windows: Vec<AnomalyWindow> = raw
            .into_iter()
            .filter(|(s, _)| *s < len)
            .map(|(s, w)| AnomalyWindow::new(s, (s + w).min(len).max(s + 1)))
            .collect();
        let labels = Labels::from_windows(len, &windows);
        let rebuilt = Labels::from_windows(len, &labels.to_windows());
        prop_assert_eq!(labels, rebuilt);
    }

    /// to_windows yields disjoint, sorted, maximal windows.
    #[test]
    fn to_windows_disjoint_sorted(flags in prop::collection::vec(any::<bool>(), 0..300)) {
        let labels = Labels::from_flags(flags);
        let ws = labels.to_windows();
        for pair in ws.windows(2) {
            // Strictly separated: adjacent runs would have merged.
            prop_assert!(pair[0].end < pair[1].start);
        }
        let total: usize = ws.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, labels.anomaly_count());
    }

    /// Day slots are consistent with week slots.
    #[test]
    fn slots_consistent(ts in -10_000_000i64..10_000_000, interval in prop::sample::select(vec![60u32, 300, 3600])) {
        let d = slot_of_day(ts, interval);
        let w = slot_of_week(ts, interval);
        let per_day = (86_400 / interval as i64) as usize;
        prop_assert_eq!(w % per_day, d);
        prop_assert!(w < per_day * 7);
    }

    /// Slicing preserves values and timestamps.
    #[test]
    fn slice_consistency(len in 2usize..200, cut in 0usize..100) {
        let vals: Vec<f64> = (0..len).map(|i| i as f64).collect();
        let ts = TimeSeries::from_values(0, 60, vals);
        let a = cut.min(len - 1);
        let b = len;
        let s = ts.slice(a..b);
        prop_assert_eq!(s.len(), b - a);
        for i in 0..s.len() {
            prop_assert_eq!(s.get(i), ts.get(a + i));
            prop_assert_eq!(s.timestamp_at(i), ts.timestamp_at(a + i));
        }
    }
}
