//! Durable session state: write-ahead log + snapshots + recovery.
//!
//! Each durable session owns a directory under the server's state root:
//!
//! ```text
//! <state_dir>/<session_id>/
//!     wal.log          append-only; one applied command per line
//!     snapshot.oprf    latest full-state snapshot (OPRF v4)
//!     snapshot.tmp     in-flight snapshot (renamed into place when synced)
//! ```
//!
//! **WAL.** The log's first line is a meta comment recording the log format
//! and the forest size the session was created with (so recovery does not
//! depend on the server's *current* configuration). Every subsequent line
//! is the raw text of one successfully applied protocol command (`HELLO`,
//! `PREF`, `OBS`, `LABEL`, `RETRAIN`). A command is appended *after* it has
//! been applied and *before* its `OK` is sent, so every acknowledged
//! command survives a crash. The one deliberate exception is `RETRAIN`,
//! which trains in the background: its line is appended at the moment the
//! finished model is *swapped in*, not when the job was accepted, so a
//! crash during training recovers to the old model (the job simply never
//! happened) and a crash after the swap recovers to the new one — never a
//! torn in-between.
//!
//! **Snapshots.** Replaying `OBS` lines is cheap (feature extraction);
//! replaying `RETRAIN` lines is the expensive part. A snapshot therefore
//! captures the trained state (forest + EWMA prediction + labels) plus the
//! WAL sequence number it corresponds to. Snapshots are written to a temp
//! file, fsynced, and atomically renamed — a crash mid-snapshot leaves the
//! previous snapshot intact.
//!
//! **Recovery** (see [`recover`]): replay the WAL prefix covered by the
//! snapshot with `RETRAIN` skipped, install the snapshot's trained state,
//! then replay the suffix in full. Because forests are deterministic given
//! their seed and feature extraction is deterministic given the points, a
//! recovered session scores incoming data *identically* to one that never
//! crashed.

use crate::proto::{parse_request, Request};
use crate::service::Session;
use opprentice::snapshot::{SessionSnapshot, SnapshotError};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.oprf";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const WAL_META_PREFIX: &str = "# opprentice-wal v1 n_trees=";

/// Errors while creating, logging to, or recovering a durable session.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// The session directory already exists (use `RESUME`).
    SessionExists,
    /// No such session on disk.
    UnknownSession,
    /// Another live connection owns this session.
    SessionBusy,
    /// The WAL is malformed (bad meta line or unparseable command).
    CorruptWal(String),
    /// The snapshot failed to decode or disagrees with the WAL.
    CorruptSnapshot(SnapshotError),
    /// A WAL command failed to re-apply during recovery.
    ReplayFailed(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "session store I/O: {e}"),
            StoreError::SessionExists => write!(f, "session already exists (RESUME it)"),
            StoreError::UnknownSession => write!(f, "unknown session"),
            StoreError::SessionBusy => write!(f, "session busy"),
            StoreError::CorruptWal(why) => write!(f, "corrupt WAL: {why}"),
            StoreError::CorruptSnapshot(e) => write!(f, "corrupt snapshot: {e}"),
            StoreError::ReplayFailed(why) => write!(f, "WAL replay failed: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The server-wide registry of durable sessions: the state root plus the
/// set of session ids currently owned by a live connection.
pub struct SessionStore {
    root: PathBuf,
    active: Arc<Mutex<HashSet<String>>>,
}

impl SessionStore {
    /// Opens (creating if needed) the state root.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<SessionStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(SessionStore {
            root,
            active: Arc::new(Mutex::new(HashSet::new())),
        })
    }

    fn session_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Claims exclusive live ownership of `id` for one connection.
    fn acquire(&self, id: &str) -> Result<SessionLease, StoreError> {
        let mut active = self.active.lock();
        if !active.insert(id.to_string()) {
            return Err(StoreError::SessionBusy);
        }
        Ok(SessionLease {
            id: id.to_string(),
            active: self.active.clone(),
        })
    }

    /// Creates a fresh durable session. Fails if the id already exists on
    /// disk or is owned by a live connection.
    pub(crate) fn create(&self, id: &str, n_trees: usize) -> Result<DurableSession, StoreError> {
        let lease = self.acquire(id)?;
        let dir = self.session_dir(id);
        if dir.exists() {
            return Err(StoreError::SessionExists);
        }
        std::fs::create_dir_all(&dir)?;
        let mut wal = BufWriter::new(
            OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(dir.join(WAL_FILE))?,
        );
        writeln!(wal, "{WAL_META_PREFIX}{n_trees}")?;
        wal.flush()?;
        Ok(DurableSession {
            dir,
            wal,
            wal_seq: 0,
            last_snapshot_seq: 0,
            lease,
        })
    }

    /// Recovers a durable session from disk: replays the WAL around the
    /// latest snapshot and returns the rebuilt protocol session together
    /// with the reopened log.
    ///
    /// The returned `Session` is byte-for-byte equivalent (in observable
    /// verdicts) to the session the log describes.
    pub(crate) fn resume(&self, id: &str) -> Result<(DurableSession, Session), StoreError> {
        let lease = self.acquire(id)?;
        let dir = self.session_dir(id);
        if !dir.join(WAL_FILE).exists() {
            return Err(StoreError::UnknownSession);
        }

        let (n_trees, lines) = read_wal(&dir.join(WAL_FILE))?;
        let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let session = recover(n_trees, &lines, snapshot.as_ref())?;

        let wal = BufWriter::new(OpenOptions::new().append(true).open(dir.join(WAL_FILE))?);
        let wal_seq = lines.len() as u64;
        let last_snapshot_seq = snapshot.as_ref().map_or(0, |s| s.wal_seq);
        Ok((
            DurableSession {
                dir,
                wal,
                wal_seq,
                last_snapshot_seq,
                lease,
            },
            session,
        ))
    }

    /// `true` if a session with this id exists on disk.
    pub fn exists(&self, id: &str) -> bool {
        self.session_dir(id).join(WAL_FILE).exists()
    }
}

/// Live-ownership token; releases the id when the connection ends.
struct SessionLease {
    id: String,
    active: Arc<Mutex<HashSet<String>>>,
}

impl Drop for SessionLease {
    fn drop(&mut self) {
        self.active.lock().remove(&self.id);
    }
}

/// One connection's handle on its durable state: the open WAL plus
/// snapshot bookkeeping.
pub struct DurableSession {
    dir: PathBuf,
    wal: BufWriter<File>,
    wal_seq: u64,
    last_snapshot_seq: u64,
    #[allow(dead_code)] // held for its Drop (releases the live-ownership claim)
    lease: SessionLease,
}

impl DurableSession {
    /// Appends one applied command line to the WAL and flushes it to the
    /// OS, so it survives a process crash. Call after applying the command
    /// and before acknowledging it.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.wal, "{line}")?;
        self.wal.flush()?;
        self.wal_seq += 1;
        Ok(())
    }

    /// Appends a group of applied command lines with a *single* flush at
    /// the end — group commit. Durability is the same as [`append`]'s
    /// (nothing is acknowledged until the whole group has reached the OS),
    /// but an N-point `OBSB` costs one flush instead of N.
    ///
    /// [`append`]: DurableSession::append
    pub fn append_batch<I>(&mut self, lines: I) -> std::io::Result<()>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut n = 0u64;
        for line in lines {
            writeln!(self.wal, "{}", line.as_ref())?;
            n += 1;
        }
        self.wal.flush()?;
        self.wal_seq += n;
        Ok(())
    }

    /// Commands applied since the last snapshot.
    pub fn since_snapshot(&self) -> u64 {
        self.wal_seq - self.last_snapshot_seq
    }

    /// Writes a full-state snapshot atomically (temp file, fsync, rename).
    pub fn snapshot(&mut self, opp: &opprentice::Opprentice) -> std::io::Result<()> {
        let snap = SessionSnapshot::capture(opp, self.wal_seq);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let mut file = File::create(&tmp)?;
        file.write_all(&snap.to_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        self.last_snapshot_seq = self.wal_seq;
        Ok(())
    }

    /// Fsyncs the WAL itself (used at clean shutdown).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.flush()?;
        self.wal.get_ref().sync_all()
    }
}

/// Reads and validates the WAL: returns the forest size from the meta line
/// and the applied command lines.
fn read_wal(path: &Path) -> Result<(usize, Vec<String>), StoreError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = Vec::new();
    let mut n_trees = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 {
            let rest = line
                .strip_prefix(WAL_META_PREFIX)
                .ok_or_else(|| StoreError::CorruptWal("missing meta line".to_string()))?;
            n_trees = Some(
                rest.parse::<usize>()
                    .map_err(|_| StoreError::CorruptWal("bad n_trees in meta line".to_string()))?,
            );
            continue;
        }
        if line.is_empty() {
            continue; // torn final line from a crash mid-write
        }
        lines.push(line);
    }
    let n_trees = n_trees.ok_or_else(|| StoreError::CorruptWal("empty WAL".to_string()))?;
    Ok((n_trees, lines))
}

/// Loads the snapshot if one exists.
fn read_snapshot(path: &Path) -> Result<Option<SessionSnapshot>, StoreError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    SessionSnapshot::from_bytes(&bytes)
        .map(Some)
        .map_err(StoreError::CorruptSnapshot)
}

/// Rebuilds a protocol session from its WAL lines and optional snapshot.
///
/// Lines `[0, snapshot.wal_seq)` are replayed with `RETRAIN` skipped (the
/// snapshot carries the training those lines produced), then the snapshot's
/// trained state is installed, then the remaining lines are replayed in
/// full — re-running `RETRAIN` exactly as the original session did, which
/// is deterministic because forests are seeded.
fn recover(
    n_trees: usize,
    lines: &[String],
    snapshot: Option<&SessionSnapshot>,
) -> Result<Session, StoreError> {
    let covered = match snapshot {
        Some(s) => {
            if s.wal_seq > lines.len() as u64 {
                return Err(StoreError::CorruptSnapshot(SnapshotError::StateMismatch(
                    "snapshot covers more commands than the WAL holds",
                )));
            }
            s.wal_seq as usize
        }
        None => 0,
    };

    let mut session = Session::new(n_trees);
    for line in &lines[..covered] {
        replay_line(&mut session, line, true)?;
    }
    if let Some(snap) = snapshot {
        let pipeline = session
            .pipeline_mut()
            .ok_or_else(|| StoreError::ReplayFailed("snapshot but no HELLO in WAL".to_string()))?;
        snap.install_into(pipeline)
            .map_err(StoreError::CorruptSnapshot)?;
    }
    for line in &lines[covered..] {
        replay_line(&mut session, line, false)?;
    }
    Ok(session)
}

/// Re-applies one WAL line to the session under recovery. Uses the
/// synchronous-retrain variant of the state machine: a logged `RETRAIN`
/// marks a completed swap, so replay must finish training before the next
/// line.
fn replay_line(session: &mut Session, line: &str, skip_retrain: bool) -> Result<(), StoreError> {
    let request =
        parse_request(line).map_err(|e| StoreError::CorruptWal(format!("`{line}`: {e}")))?;
    if skip_retrain && request == Request::Retrain {
        return Ok(());
    }
    match session.apply_replay(&request) {
        crate::proto::Response::Err(reason) => {
            Err(StoreError::ReplayFailed(format!("`{line}`: {reason}")))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Response;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test (no external tempdir crate).
    fn scratch() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nonce = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "opprentice-store-test-{}-{nonce}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn apply_all(session: &mut Session, durable: &mut DurableSession, lines: &[String]) {
        for line in lines {
            let request = parse_request(line).unwrap();
            match session.apply(&request) {
                Response::Ok(_) => {
                    // Mirror the server: a RETRAIN line records the swap,
                    // so the background job must land before it is logged.
                    if request == Request::Retrain {
                        session.wait_training().expect("retrain lands");
                    }
                    durable.append(line).unwrap();
                }
                other => panic!("`{line}` -> {other:?}"),
            }
        }
    }

    /// A labeled daily-pattern workload: HELLO + OBS stream + LABEL +
    /// RETRAIN, as protocol lines.
    fn workload(n: usize, session_id: &str) -> Vec<String> {
        let mut lines = vec![
            "PREF 0.5 0.5".to_string(),
            format!("HELLO 3600 {session_id}"),
        ];
        let mut flags = String::new();
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            let anomalous = i % 63 == 50 || i % 63 == 51;
            let v = if anomalous { base + 150.0 } else { base };
            lines.push(format!("OBS {} {v}", i * 3600));
            flags.push(if anomalous { '1' } else { '0' });
        }
        lines.push(format!("LABEL {flags}"));
        lines.push("RETRAIN".to_string());
        lines
    }

    fn probe(session: &mut Session, t0: i64) -> Vec<Response> {
        [100.0, 400.0, 120.0, 60.0]
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                session.apply(&Request::Obs {
                    timestamp: t0 + i as i64 * 3600,
                    value: Some(v),
                })
            })
            .collect()
    }

    #[test]
    fn create_then_resume_round_trips() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let lines = workload(21 * 24, "kpi-1");

        let mut durable = store.create("kpi-1", 8).unwrap();
        let mut live = Session::new(8);
        apply_all(&mut live, &mut durable, &lines);
        drop(durable); // crash: no snapshot, no clean close

        let (_d2, mut recovered) = store.resume("kpi-1").unwrap();
        // The replayed RETRAIN rebuilt the swapped-in model exactly.
        match recovered.apply(&Request::Status) {
            Response::Ok(s) => assert!(s.contains("model_version=1"), "{s}"),
            other => panic!("{other:?}"),
        }
        let t0 = (21 * 24) * 3600;
        assert_eq!(probe(&mut live, t0), probe(&mut recovered, t0));
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn snapshot_skips_replaying_retrain() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let lines = workload(21 * 24, "kpi-2");

        let mut durable = store.create("kpi-2", 8).unwrap();
        let mut live = Session::new(8);
        apply_all(&mut live, &mut durable, &lines);
        durable.snapshot(live.pipeline_mut().unwrap()).unwrap();
        // More traffic after the snapshot.
        let extra: Vec<String> = (0..48)
            .map(|i| format!("OBS {} 101.5", (21 * 24 + i) * 3600))
            .collect();
        apply_all(&mut live, &mut durable, &extra);
        drop(durable);

        let (d2, mut recovered) = store.resume("kpi-2").unwrap();
        assert_eq!(d2.since_snapshot(), 48);
        // The snapshot path restores the model version too.
        match recovered.apply(&Request::Status) {
            Response::Ok(s) => assert!(s.contains("model_version=1"), "{s}"),
            other => panic!("{other:?}"),
        }
        let t0 = (21 * 24 + 48) * 3600;
        assert_eq!(probe(&mut live, t0), probe(&mut recovered, t0));
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn batched_appends_replay_like_singles() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let lines = workload(14 * 24, "batched");

        let mut durable = store.create("batched", 8).unwrap();
        let mut live = Session::new(8);
        apply_all(&mut live, &mut durable, &lines);
        // A burst applied as one batch: the session sees an OBSB, the WAL
        // gets the decomposed OBS lines in one group commit.
        let t0 = (14 * 24) * 3600i64;
        let values: Vec<Option<f64>> = vec![Some(101.0), None, Some(250.0), Some(99.5)];
        let response = live.apply(&Request::ObsBatch {
            start: t0,
            values: values.clone(),
        });
        assert!(matches!(response, Response::Ok(_)), "{response:?}");
        durable
            .append_batch(values.iter().enumerate().map(|(i, v)| {
                let ts = t0 + i as i64 * 3600;
                match v {
                    Some(v) => format!("OBS {ts} {v}"),
                    None => format!("OBS {ts} nan"),
                }
            }))
            .unwrap();
        assert_eq!(durable.since_snapshot(), lines.len() as u64 + 4);
        drop(durable); // crash

        let (_d2, mut recovered) = store.resume("batched").unwrap();
        let t1 = t0 + 4 * 3600;
        assert_eq!(probe(&mut live, t1), probe(&mut recovered, t1));
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn double_create_and_unknown_resume_fail() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let d = store.create("dup", 8).unwrap();
        drop(d);
        assert!(matches!(
            store.create("dup", 8),
            Err(StoreError::SessionExists)
        ));
        assert!(matches!(
            store.resume("nope"),
            Err(StoreError::UnknownSession)
        ));
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn live_session_cannot_be_resumed_concurrently() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let d = store.create("busy", 8).unwrap();
        assert!(matches!(store.resume("busy"), Err(StoreError::SessionBusy)));
        drop(d); // released: now it resumes (and recovers an empty session)
        let (_d2, _s) = store.resume("busy").unwrap();
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn torn_snapshot_tmp_is_ignored() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let lines = workload(14 * 24, "torn");
        let mut durable = store.create("torn", 8).unwrap();
        let mut live = Session::new(8);
        apply_all(&mut live, &mut durable, &lines);
        durable.snapshot(live.pipeline_mut().unwrap()).unwrap();
        // A crash mid-snapshot leaves a garbage tmp file; recovery must not
        // even look at it.
        std::fs::write(root.join("torn").join(SNAPSHOT_TMP), b"partial garbage").unwrap();
        drop(durable);
        let (_d2, mut recovered) = store.resume("torn").unwrap();
        let t0 = (14 * 24) * 3600;
        assert_eq!(probe(&mut live, t0), probe(&mut recovered, t0));
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_reported_not_panicked() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let lines = workload(14 * 24, "corrupt");
        let mut durable = store.create("corrupt", 8).unwrap();
        let mut live = Session::new(8);
        apply_all(&mut live, &mut durable, &lines);
        durable.snapshot(live.pipeline_mut().unwrap()).unwrap();
        drop(durable);
        // Truncate the snapshot to simulate a torn write that somehow got
        // renamed (e.g. disk corruption after the fact).
        let snap_path = root.join("corrupt").join(SNAPSHOT_FILE);
        let bytes = std::fs::read(&snap_path).unwrap();
        std::fs::write(&snap_path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.resume("corrupt"),
            Err(StoreError::CorruptSnapshot(_))
        ));
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn corrupt_wal_is_reported_not_panicked() {
        let root = scratch();
        let store = SessionStore::open(&root).unwrap();
        let mut durable = store.create("badwal", 8).unwrap();
        let mut live = Session::new(8);
        apply_all(
            &mut live,
            &mut durable,
            &["HELLO 60 badwal".to_string(), "OBS 0 1.0".to_string()],
        );
        drop(durable);
        let wal_path = root.join("badwal").join(WAL_FILE);
        let mut content = std::fs::read_to_string(&wal_path).unwrap();
        content.push_str("NOT A COMMAND\n");
        std::fs::write(&wal_path, content).unwrap();
        assert!(matches!(
            store.resume("badwal"),
            Err(StoreError::CorruptWal(_))
        ));
        std::fs::remove_dir_all(root).unwrap();
    }
}
