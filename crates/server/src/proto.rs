//! The line protocol: request parsing and response formatting.
//!
//! Kept separate from the transport so it is unit-testable without sockets
//! and reusable over any line-delimited byte stream.

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `HELLO <interval_seconds> [session_id]` — must be the first command.
    /// With a session id (and a server-side state directory) the session is
    /// durable: every applied command is write-ahead logged and the trained
    /// state snapshotted, so `RESUME` can rebuild it after a crash.
    Hello {
        /// KPI sampling interval in seconds.
        interval: u32,
        /// Durable session id (`[A-Za-z0-9_-]{1,64}`), if any.
        session: Option<String>,
    },
    /// `RESUME <session_id>` — instead of `HELLO`: rebuild a durable
    /// session from its write-ahead log and latest snapshot.
    Resume {
        /// The durable session id to recover.
        session: String,
    },
    /// `PREF <recall> <precision>` — set the accuracy preference.
    Pref {
        /// Minimum acceptable recall, in `(0, 1]`.
        recall: f64,
        /// Minimum acceptable precision, in `(0, 1]`.
        precision: f64,
    },
    /// `OBS <ts> <value|nan>` — feed one point.
    Obs {
        /// Epoch seconds of the point.
        timestamp: i64,
        /// The value (`None` = missing point).
        value: Option<f64>,
    },
    /// `OBSB <ts0> <v0> [v1 ...]` — feed a batch of consecutive points in
    /// one line. Point `i` lands at `ts0 + i * interval`; the reply is one
    /// `OK` line with the per-point verdicts joined by `|`, each rendered
    /// exactly as the equivalent `OBS` would have rendered it.
    ObsBatch {
        /// Epoch seconds of the first point.
        start: i64,
        /// The values, one per point (`None` = missing point).
        values: Vec<Option<f64>>,
    },
    /// `LABEL <flags>` — label the oldest unlabeled points (`0`/`1` chars).
    Label {
        /// One flag per point, oldest first.
        flags: Vec<bool>,
    },
    /// `RETRAIN` — incremental retraining round.
    Retrain,
    /// `STATUS` — report counters.
    Status,
    /// `QUIT` — close the connection.
    Quit,
}

/// A server response, rendered as one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OK …`
    Ok(String),
    /// `ERR <reason>`
    Err(String),
    /// `BYE`
    Bye,
}

impl Response {
    /// Renders the response line (without the trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Ok(s) if s.is_empty() => "OK".to_string(),
            Response::Ok(s) => format!("OK {s}"),
            Response::Err(s) => format!("ERR {s}"),
            Response::Bye => "BYE".to_string(),
        }
    }
}

/// Validates a durable session id: it becomes a directory name on the
/// server, so the alphabet is locked down hard (no separators, no dots —
/// nothing a path traversal could be built from).
pub fn validate_session_id(id: &str) -> Result<(), String> {
    if id.is_empty() || id.len() > 64 {
        return Err("session id must be 1..=64 chars".to_string());
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return Err("session id may only contain [A-Za-z0-9_-]".to_string());
    }
    Ok(())
}

/// Parses one `OBS`/`OBSB` value token: a finite f64, or `nan` for a
/// missing point.
fn parse_value(raw: &str) -> Result<Option<f64>, String> {
    if raw.eq_ignore_ascii_case("nan") {
        return Ok(None);
    }
    let v: f64 = raw.parse().map_err(|_| "bad value")?;
    if !v.is_finite() {
        return Err("value must be finite".to_string());
    }
    Ok(Some(v))
}

/// Parses one request line. Returns `Err` with a human-readable reason on
/// malformed input (the connection stays usable — bad lines are answered
/// with `ERR`, not dropped, so an operator poking at the port with netcat
/// gets feedback).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().ok_or("empty line")?;
    let parsed = match cmd.to_ascii_uppercase().as_str() {
        "HELLO" => {
            let interval: u32 = parts
                .next()
                .ok_or("HELLO needs an interval")?
                .parse()
                .map_err(|_| "bad interval")?;
            if interval == 0 || interval > 7 * 86_400 {
                return Err("interval out of range".to_string());
            }
            let session = match parts.next() {
                Some(id) => {
                    validate_session_id(id)?;
                    Some(id.to_string())
                }
                None => None,
            };
            Request::Hello { interval, session }
        }
        "RESUME" => {
            let id = parts.next().ok_or("RESUME needs a session id")?;
            validate_session_id(id)?;
            Request::Resume {
                session: id.to_string(),
            }
        }
        "PREF" => {
            let recall: f64 = parts
                .next()
                .ok_or("PREF needs recall")?
                .parse()
                .map_err(|_| "bad recall")?;
            let precision: f64 = parts
                .next()
                .ok_or("PREF needs precision")?
                .parse()
                .map_err(|_| "bad precision")?;
            // Zero would make the preference vacuous (every operating point
            // "satisfies" recall >= 0), so the domain is half-open.
            if !(recall > 0.0 && recall <= 1.0 && precision > 0.0 && precision <= 1.0) {
                return Err("preference out of (0, 1]".to_string());
            }
            Request::Pref { recall, precision }
        }
        "OBS" => {
            let timestamp: i64 = parts
                .next()
                .ok_or("OBS needs a timestamp")?
                .parse()
                .map_err(|_| "bad timestamp")?;
            let raw = parts.next().ok_or("OBS needs a value")?;
            Request::Obs {
                timestamp,
                value: parse_value(raw)?,
            }
        }
        "OBSB" => {
            let start: i64 = parts
                .next()
                .ok_or("OBSB needs a start timestamp")?
                .parse()
                .map_err(|_| "bad timestamp")?;
            let mut values = Vec::new();
            for raw in parts.by_ref() {
                values.push(parse_value(raw)?);
            }
            if values.is_empty() {
                return Err("OBSB needs at least one value".to_string());
            }
            Request::ObsBatch { start, values }
        }
        "LABEL" => {
            let raw = parts.next().ok_or("LABEL needs flags")?;
            let mut flags = Vec::with_capacity(raw.len());
            for c in raw.chars() {
                match c {
                    '0' => flags.push(false),
                    '1' => flags.push(true),
                    other => return Err(format!("bad flag char `{other}`")),
                }
            }
            if flags.is_empty() {
                return Err("empty flags".to_string());
            }
            Request::Label { flags }
        }
        "RETRAIN" => Request::Retrain,
        "STATUS" => Request::Status,
        "QUIT" => Request::Quit,
        other => return Err(format!("unknown command `{other}`")),
    };
    if parts.next().is_some() {
        return Err("trailing arguments".to_string());
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_request("HELLO 60"),
            Ok(Request::Hello {
                interval: 60,
                session: None
            })
        );
        assert_eq!(
            parse_request("HELLO 60 web-pv_7"),
            Ok(Request::Hello {
                interval: 60,
                session: Some("web-pv_7".into())
            })
        );
        assert_eq!(
            parse_request("RESUME web-pv_7"),
            Ok(Request::Resume {
                session: "web-pv_7".into()
            })
        );
        assert_eq!(
            parse_request("PREF 0.66 0.66"),
            Ok(Request::Pref {
                recall: 0.66,
                precision: 0.66
            })
        );
        assert_eq!(
            parse_request("OBS 1000 42.5"),
            Ok(Request::Obs {
                timestamp: 1000,
                value: Some(42.5)
            })
        );
        assert_eq!(
            parse_request("OBS 1000 nan"),
            Ok(Request::Obs {
                timestamp: 1000,
                value: None
            })
        );
        assert_eq!(
            parse_request("OBSB 1000 1.5 nan 3"),
            Ok(Request::ObsBatch {
                start: 1000,
                values: vec![Some(1.5), None, Some(3.0)]
            })
        );
        assert_eq!(
            parse_request("LABEL 0101"),
            Ok(Request::Label {
                flags: vec![false, true, false, true]
            })
        );
        assert_eq!(parse_request("RETRAIN"), Ok(Request::Retrain));
        assert_eq!(parse_request("STATUS"), Ok(Request::Status));
        assert_eq!(parse_request("QUIT"), Ok(Request::Quit));
    }

    #[test]
    fn commands_are_case_insensitive() {
        assert_eq!(
            parse_request("hello 300"),
            Ok(Request::Hello {
                interval: 300,
                session: None
            })
        );
        assert_eq!(
            parse_request("obs 0 NaN"),
            Ok(Request::Obs {
                timestamp: 0,
                value: None
            })
        );
    }

    #[test]
    fn session_ids_are_locked_down() {
        // The id becomes a directory name: nothing traversal-shaped.
        for bad in ["..", "a/b", "a\\b", "a.b", "", "a b", &"x".repeat(65)] {
            assert!(validate_session_id(bad).is_err(), "{bad:?} accepted");
            assert!(
                parse_request(&format!("RESUME {bad}")).is_err(),
                "{bad:?} parsed"
            );
        }
        for good in ["a", "A-1", "web_pv", &"x".repeat(64)] {
            assert!(validate_session_id(good).is_ok(), "{good:?} rejected");
        }
    }

    #[test]
    fn zero_preference_is_rejected() {
        // recall = 0 or precision = 0 makes the preference vacuous.
        assert!(parse_request("PREF 0 0.5").is_err());
        assert!(parse_request("PREF 0.5 0").is_err());
        assert!(parse_request("PREF 0.0 0.0").is_err());
        assert!(parse_request("PREF 1 1").is_ok());
        assert!(parse_request("PREF nan 0.5").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_request("").is_err());
        assert!(parse_request("HELLO").is_err());
        assert!(parse_request("HELLO abc").is_err());
        assert!(parse_request("HELLO 0").is_err());
        assert!(parse_request("OBS 5").is_err());
        assert!(parse_request("OBS x 1.0").is_err());
        assert!(parse_request("OBS 5 inf").is_err());
        assert!(parse_request("OBSB").is_err());
        assert!(parse_request("OBSB 5").is_err());
        assert!(parse_request("OBSB 5 1.0 x").is_err());
        assert!(parse_request("OBSB x 1.0").is_err());
        assert!(parse_request("OBSB 5 1.0 inf").is_err());
        assert!(parse_request("LABEL 01x").is_err());
        assert!(parse_request("LABEL").is_err());
        assert!(parse_request("PREF 2 0.5").is_err());
        assert!(parse_request("FLY ME").is_err());
        assert!(parse_request("STATUS noise").is_err());
    }

    #[test]
    fn response_rendering() {
        assert_eq!(Response::Ok(String::new()).render(), "OK");
        assert_eq!(Response::Ok("p=0.5".into()).render(), "OK p=0.5");
        assert_eq!(Response::Err("nope".into()).render(), "ERR nope");
        assert_eq!(Response::Bye.render(), "BYE");
    }
}
