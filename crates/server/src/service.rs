//! The TCP transport: accept loop, per-connection session, graceful
//! shutdown.

use crate::proto::{parse_request, Request, Response};
use opprentice::cthld::Preference;
use opprentice::{Opprentice, OpprenticeConfig};
use opprentice_learn::RandomForestParams;
use opprentice_timeseries::Labels;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One client's session state: the protocol state machine around one
/// [`Opprentice`] pipeline.
struct Session {
    pipeline: Option<Opprentice>,
    preference: Preference,
    n_trees: usize,
}

impl Session {
    fn new(n_trees: usize) -> Self {
        Self { pipeline: None, preference: Preference::moderate(), n_trees }
    }

    fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Hello { interval } => {
                if self.pipeline.is_some() {
                    return Response::Err("already configured".into());
                }
                let config = OpprenticeConfig {
                    preference: self.preference,
                    forest: RandomForestParams { n_trees: self.n_trees, ..Default::default() },
                    ..Default::default()
                };
                self.pipeline = Some(Opprentice::new(interval, config));
                Response::Ok(format!("opprentice interval={interval}"))
            }
            Request::Pref { recall, precision } => {
                self.preference = Preference { recall, precision };
                if self.pipeline.is_some() {
                    // Applies from the next HELLO; keep semantics simple.
                    return Response::Err("PREF must precede HELLO".into());
                }
                Response::Ok(format!("pref recall={recall} precision={precision}"))
            }
            Request::Obs { timestamp, value } => {
                let Some(p) = self.pipeline.as_mut() else {
                    return Response::Err("HELLO first".into());
                };
                match p.observe(timestamp, value) {
                    Some(d) => Response::Ok(format!(
                        "p={:.4} cthld={:.3} anomaly={}",
                        d.probability,
                        d.cthld,
                        u8::from(d.is_anomaly)
                    )),
                    None => Response::Ok("pending".into()),
                }
            }
            Request::Label { flags } => {
                let Some(p) = self.pipeline.as_mut() else {
                    return Response::Err("HELLO first".into());
                };
                let unlabeled = p.observed_len() - p.labeled_len();
                if flags.len() > unlabeled {
                    return Response::Err(format!("only {unlabeled} points are unlabeled"));
                }
                p.ingest_labels(&Labels::from_flags(flags));
                Response::Ok(format!("labeled={}", p.labeled_len()))
            }
            Request::Retrain => {
                let Some(p) = self.pipeline.as_mut() else {
                    return Response::Err("HELLO first".into());
                };
                if p.retrain() {
                    Response::Ok(format!("trained cthld={:.3}", p.current_cthld()))
                } else {
                    Response::Err("need at least one labeled anomaly".into())
                }
            }
            Request::Status => match self.pipeline.as_ref() {
                None => Response::Ok("observed=0 labeled=0 trained=0".into()),
                Some(p) => Response::Ok(format!(
                    "observed={} labeled={} trained={} cthld={:.3}",
                    p.observed_len(),
                    p.labeled_len(),
                    u8::from(p.is_trained()),
                    p.current_cthld()
                )),
            },
            Request::Quit => Response::Bye,
        }
    }
}

/// Runs one connection to completion.
fn serve_connection(stream: TcpStream, n_trees: usize) {
    let peer = stream.peer_addr().ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut session = Session::new(n_trees);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // disconnect
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(line.trim()) {
            Ok(req) => session.handle(req),
            Err(reason) => Response::Err(reason),
        };
        let quit = response == Response::Bye;
        if writer.write_all(response.render().as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
        if quit {
            break;
        }
    }
    let _ = peer;
}

/// Handle used to stop a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown; the accept loop exits after its current cycle.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept with a throwaway connection.
        if let Ok(s) = TcpStream::connect(self.addr) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// The Opprentice TCP server.
pub struct Server {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    /// Forest size per session (tunable for tests).
    pub n_trees: usize,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, stop: Arc::new(AtomicBool::new(false)), n_trees: 50 })
    }

    /// A handle for shutting the server down.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: self.stop.clone(),
            addr: self.listener.local_addr().expect("bound listener"),
        }
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] is called.
    /// Connection threads are joined before returning, so a clean shutdown
    /// never strands a session mid-write.
    pub fn serve(self) -> std::io::Result<()> {
        let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let n_trees = self.n_trees;
                    let handle = std::thread::spawn(move || serve_connection(stream, n_trees));
                    workers.lock().push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(_) => continue,
            }
        }
        for handle in workers.lock().drain(..) {
            let _ = handle.join();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny blocking test client.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let writer = stream.try_clone().expect("clone");
            Client { reader: BufReader::new(stream), writer }
        }

        fn send(&mut self, line: &str) -> String {
            self.writer.write_all(line.as_bytes()).unwrap();
            self.writer.write_all(b"\n").unwrap();
            self.writer.flush().unwrap();
            let mut out = String::new();
            self.reader.read_line(&mut out).unwrap();
            out.trim_end().to_string()
        }
    }

    fn start_server() -> (ServerHandle, std::thread::JoinHandle<()>) {
        let mut server = Server::bind("127.0.0.1:0").expect("bind");
        server.n_trees = 8; // keep test retraining fast
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve().expect("serve"));
        (handle, join)
    }

    /// Streams a daily-patterned history with labeled spikes, then checks
    /// online verdicts — the full protocol lifecycle over a real socket.
    #[test]
    fn full_protocol_lifecycle() {
        let (handle, join) = start_server();
        let mut c = Client::connect(handle.addr());

        assert!(c.send("HELLO 3600").starts_with("OK opprentice"));
        assert_eq!(c.send("STATUS"), "OK observed=0 labeled=0 trained=0 cthld=0.500");

        // Stream 21 days of hourly data with a spike every 63 hours.
        let n = 21 * 24;
        let mut flags = String::with_capacity(n);
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            let anomalous = i % 63 == 50 || i % 63 == 51;
            let v = if anomalous { base + 150.0 } else { base };
            let reply = c.send(&format!("OBS {} {v}", i * 3600));
            assert!(reply.starts_with("OK"), "{reply}");
            flags.push(if anomalous { '1' } else { '0' });
        }

        // Label everything, retrain.
        assert_eq!(c.send(&format!("LABEL {flags}")), format!("OK labeled={n}"));
        let trained = c.send("RETRAIN");
        assert!(trained.starts_with("OK trained"), "{trained}");

        // A normal continuation scores low; a spike alerts.
        let normal = c.send(&format!("OBS {} 100.0", n * 3600));
        assert!(normal.contains("anomaly=0"), "{normal}");
        let spike = c.send(&format!("OBS {} 400.0", (n + 1) * 3600));
        assert!(spike.contains("anomaly=1"), "{spike}");

        assert_eq!(c.send("QUIT"), "BYE");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn protocol_errors_keep_the_connection_alive() {
        let (handle, join) = start_server();
        let mut c = Client::connect(handle.addr());

        // Everything before HELLO that needs a pipeline: ERR.
        assert!(c.send("OBS 0 1.0").starts_with("ERR"));
        assert!(c.send("RETRAIN").starts_with("ERR"));
        // Garbage: ERR with a reason, connection still usable.
        assert!(c.send("GARBAGE").starts_with("ERR"));
        assert!(c.send("HELLO 60").starts_with("OK"));
        // Double HELLO rejected.
        assert!(c.send("HELLO 60").starts_with("ERR"));
        // Labeling more than observed rejected.
        assert!(c.send("LABEL 111").starts_with("ERR"));
        // Retrain without positives rejected.
        c.send("OBS 0 1.0");
        c.send("LABEL 0");
        assert!(c.send("RETRAIN").starts_with("ERR"));

        assert_eq!(c.send("QUIT"), "BYE");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn preference_must_precede_hello() {
        let (handle, join) = start_server();
        let mut c = Client::connect(handle.addr());
        assert!(c.send("PREF 0.8 0.6").starts_with("OK pref"));
        assert!(c.send("HELLO 60").starts_with("OK"));
        assert!(c.send("PREF 0.5 0.5").starts_with("ERR"));
        c.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn concurrent_connections_are_isolated() {
        let (handle, join) = start_server();
        let mut a = Client::connect(handle.addr());
        let mut b = Client::connect(handle.addr());
        assert!(a.send("HELLO 60").starts_with("OK"));
        // b is unconfigured even though a is configured.
        assert!(b.send("OBS 0 1.0").starts_with("ERR"));
        assert!(b.send("HELLO 300").starts_with("OK"));
        a.send("OBS 0 5.0");
        assert_eq!(a.send("STATUS"), "OK observed=1 labeled=0 trained=0 cthld=0.500");
        assert_eq!(b.send("STATUS"), "OK observed=0 labeled=0 trained=0 cthld=0.500");
        a.send("QUIT");
        b.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn disconnect_without_quit_is_fine() {
        let (handle, join) = start_server();
        {
            let mut c = Client::connect(handle.addr());
            assert!(c.send("HELLO 60").starts_with("OK"));
            // Drop the client abruptly.
        }
        // Server still accepts new connections.
        let mut c2 = Client::connect(handle.addr());
        assert!(c2.send("HELLO 60").starts_with("OK"));
        c2.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }
}
