//! The TCP transport: accept loop, per-connection session, connection
//! hardening (timeouts, load shedding, panic isolation), durable-session
//! orchestration, background retraining with atomic model hot-swap,
//! graceful shutdown.
//!
//! # Background retraining
//!
//! `RETRAIN` replies immediately (`OK retraining job=<id>`) and trains on
//! a dedicated thread while `OBS`/`OBSB` keep serving the old model. The
//! finished model is swapped in atomically between requests (see
//! [`harvest_training`]), the swap is logged to the WAL at that moment,
//! and an `EVENT retrained …` line is pushed to the client ahead of the
//! next reply. While a job is in flight, `LABEL` and a second `RETRAIN`
//! are rejected — that invariant is what lets WAL replay (a synchronous
//! retrain at the logged swap position) rebuild the exact model the live
//! session was serving.

use crate::proto::{parse_request, Request, Response};
use crate::store::{DurableSession, SessionStore};
use opprentice::cthld::Preference;
use opprentice::{Detection, Opprentice, OpprenticeConfig};
use opprentice_learn::RandomForestParams;
use opprentice_timeseries::Labels;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for the serving layer. The defaults suit production; tests
/// shrink the timeouts and the forest.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Forest size per session.
    pub n_trees: usize,
    /// Root directory for durable session state (WALs + snapshots).
    /// `None` disables `HELLO <interval> <id>` and `RESUME`.
    pub state_dir: Option<PathBuf>,
    /// Granularity of the per-connection read loop: how often a blocked
    /// read wakes up to check deadlines and the shutdown flag.
    pub read_tick: Duration,
    /// A line must complete within this once its first byte arrives
    /// (defeats slowloris clients that trickle one byte at a time).
    pub line_deadline: Duration,
    /// Connections with no complete line for this long are reaped.
    pub idle_timeout: Duration,
    /// Lines longer than this get `ERR` + disconnect (bounds memory per
    /// connection against garbage floods).
    pub max_line_len: usize,
    /// Connections beyond this are answered `ERR busy` and closed
    /// immediately instead of degrading everyone.
    pub max_connections: usize,
    /// Snapshot a durable session every N applied commands.
    pub snapshot_every: u64,
    /// Test hook: accept a `PANIC` verb that panics inside the command
    /// handler, to exercise panic isolation from the outside. Never enable
    /// in production.
    pub enable_panic_verb: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            n_trees: 50,
            state_dir: None,
            read_tick: Duration::from_millis(50),
            line_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            max_line_len: 1 << 20,
            max_connections: 256,
            snapshot_every: 256,
            enable_panic_verb: false,
        }
    }
}

/// One client's session state: the protocol state machine around one
/// [`Opprentice`] pipeline. Pure — no I/O — so the store can replay
/// commands through it during recovery.
pub(crate) struct Session {
    pipeline: Option<Opprentice>,
    preference: Preference,
    n_trees: usize,
}

impl Session {
    pub(crate) fn new(n_trees: usize) -> Self {
        Self {
            pipeline: None,
            preference: Preference::moderate(),
            n_trees,
        }
    }

    pub(crate) fn pipeline_mut(&mut self) -> Option<&mut Opprentice> {
        self.pipeline.as_mut()
    }

    /// Applies one request to the state machine. `HELLO`'s session id and
    /// `RESUME` are connection-level concerns handled before this point;
    /// here `HELLO` just configures the pipeline.
    pub(crate) fn apply(&mut self, request: &Request) -> Response {
        match request {
            Request::Hello {
                interval,
                session: _,
            } => {
                if self.pipeline.is_some() {
                    return Response::Err("already configured".into());
                }
                let config = OpprenticeConfig {
                    preference: self.preference,
                    forest: RandomForestParams {
                        n_trees: self.n_trees,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                self.pipeline = Some(Opprentice::new(*interval, config));
                Response::Ok(format!("opprentice interval={interval}"))
            }
            Request::Resume { .. } => {
                Response::Err("RESUME must be the first command on a fresh connection".into())
            }
            Request::Pref { recall, precision } => {
                if self.pipeline.is_some() {
                    // Applies from the next HELLO; keep semantics simple.
                    return Response::Err("PREF must precede HELLO".into());
                }
                self.preference = Preference {
                    recall: *recall,
                    precision: *precision,
                };
                Response::Ok(format!("pref recall={recall} precision={precision}"))
            }
            Request::Obs { timestamp, value } => {
                let Some(p) = self.pipeline.as_mut() else {
                    return Response::Err("HELLO first".into());
                };
                let mut out = String::new();
                push_verdict(&mut out, p.observe(*timestamp, *value));
                Response::Ok(out)
            }
            Request::ObsBatch { start, values } => {
                let Some(p) = self.pipeline.as_mut() else {
                    return Response::Err("HELLO first".into());
                };
                let mut out = String::with_capacity(values.len() * 32);
                for (i, verdict) in p.observe_batch(*start, values).into_iter().enumerate() {
                    if i > 0 {
                        out.push('|');
                    }
                    push_verdict(&mut out, verdict);
                }
                Response::Ok(out)
            }
            Request::Label { flags } => {
                let Some(p) = self.pipeline.as_mut() else {
                    return Response::Err("HELLO first".into());
                };
                // New labels would change the training set the in-flight
                // job already snapshotted. Rejecting them keeps the labeled
                // prefix at swap time identical to the one at submission
                // time, which is what makes WAL replay (a synchronous
                // retrain at the swap position) reproduce the live model.
                if p.training_in_flight() {
                    return Response::Err(
                        "retrain in progress; send labels after it completes".into(),
                    );
                }
                match p.ingest_labels(&Labels::from_flags(flags.clone())) {
                    Ok(()) => Response::Ok(format!("labeled={}", p.labeled_len())),
                    Err(e) => Response::Err(e.to_string()),
                }
            }
            Request::Retrain => {
                let Some(p) = self.pipeline.as_mut() else {
                    return Response::Err("HELLO first".into());
                };
                match p.start_retrain() {
                    Ok(job) => Response::Ok(format!("retraining job={job}")),
                    Err(e) => Response::Err(e.to_string()),
                }
            }
            Request::Status => match self.pipeline.as_ref() {
                None => Response::Ok(
                    "observed=0 labeled=0 trained=0 extract_us=0 infer_us=0 \
                     train_us=0 model_version=0 training=0"
                        .into(),
                ),
                Some(p) => Response::Ok(format!(
                    "observed={} labeled={} trained={} cthld={:.3} extract_us={} infer_us={} \
                     train_us={} model_version={} training={}",
                    p.observed_len(),
                    p.labeled_len(),
                    u8::from(p.is_trained()),
                    p.current_cthld(),
                    p.extract_us(),
                    p.infer_us(),
                    p.train_us(),
                    p.model_version(),
                    u8::from(p.training_in_flight())
                )),
            },
            Request::Quit => Response::Bye,
        }
    }

    /// Applies one request during WAL replay. Identical to [`Session::apply`]
    /// except that `RETRAIN` trains synchronously: a logged `RETRAIN` marks
    /// the position where a background job's model was swapped in, so replay
    /// must produce the new model before the next line. The result is
    /// bit-identical to the live session's because the live job trained on
    /// exactly the labeled prefix that exists here (labels are rejected
    /// while a job is in flight) and the asynchronous path is the
    /// synchronous path — `Opprentice::retrain` is `start_retrain` +
    /// `wait_retrain`.
    pub(crate) fn apply_replay(&mut self, request: &Request) -> Response {
        let response = self.apply(request);
        if matches!(request, Request::Retrain) {
            if let Response::Ok(_) = &response {
                return match self.wait_training() {
                    Some(r) => Response::Ok(format!("trained cthld={:.3}", r.cthld)),
                    // A panicked trainer keeps the old model; the replayed
                    // WAL said a swap happened, so surface the divergence.
                    None => Response::Err("retrain failed during replay".into()),
                };
            }
        }
        response
    }

    /// Non-blocking check for a finished background retrain; swaps the new
    /// model in if one is ready.
    pub(crate) fn poll_training(&mut self) -> Option<opprentice::TrainingReport> {
        self.pipeline.as_mut()?.poll_retrain()
    }

    /// Blocks until any in-flight retrain lands (replay and tests).
    pub(crate) fn wait_training(&mut self) -> Option<opprentice::TrainingReport> {
        self.pipeline.as_mut()?.wait_retrain()
    }
}

/// Renders one observation's verdict exactly as an `OBS` reply carries it
/// after the `OK ` — shared by the single and batched paths so `OBSB`
/// replies are guaranteed byte-identical to the equivalent `OBS` sequence.
fn push_verdict(out: &mut String, d: Option<Detection>) {
    match d {
        Some(d) => {
            let _ = write!(
                out,
                "p={:.4} cthld={:.3} anomaly={}",
                d.probability,
                d.cthld,
                u8::from(d.is_anomaly)
            );
        }
        None => out.push_str("pending"),
    }
}

/// Shared, immutable context handed to every connection thread.
struct ConnCtx {
    config: ServerConfig,
    store: Option<SessionStore>,
    stop: Arc<AtomicBool>,
}

/// True for commands that mutate session state and therefore belong in
/// the write-ahead log. `RETRAIN` is deliberately absent: accepting one
/// only *starts* a background job, which mutates nothing until its model
/// is swapped in — [`harvest_training`] logs the `RETRAIN` at that moment,
/// so recovery replays to exactly the model that was serving (old before
/// the swap, new after), never a torn state.
fn is_durable_command(request: &Request) -> bool {
    matches!(
        request,
        Request::Hello { .. }
            | Request::Pref { .. }
            | Request::Obs { .. }
            | Request::ObsBatch { .. }
            | Request::Label { .. }
    )
}

/// Polls the session's background trainer; when a new model just landed,
/// makes the swap durable (logs `RETRAIN` at the swap position — see
/// [`is_durable_command`]) and returns the completion event line to write
/// to the client ahead of the next reply.
fn harvest_training(session: &mut Session, durable: &mut Option<DurableSession>) -> Option<String> {
    let report = session.poll_training()?;
    if let Some(d) = durable.as_mut() {
        // An append failure leaves the swap volatile — recovery would land
        // on the old model — but the live session serves the new one
        // either way, and the next snapshot captures it durably.
        let _ = d.append("RETRAIN");
    }
    Some(format!(
        "EVENT retrained job={} model_version={} cthld={:.3} train_us={}",
        report.job_id, report.model_version, report.cthld, report.train_us
    ))
}

/// Parses and applies one trimmed, non-empty line; maintains the WAL and
/// periodic snapshots for durable sessions. Runs inside `catch_unwind`.
fn apply_line(
    trimmed: &str,
    session: &mut Session,
    durable: &mut Option<DurableSession>,
    ctx: &ConnCtx,
) -> Response {
    if ctx.config.enable_panic_verb && trimmed.eq_ignore_ascii_case("PANIC") {
        panic!("injected test panic");
    }
    let request = match parse_request(trimmed) {
        Ok(r) => r,
        Err(reason) => return Response::Err(reason),
    };

    // Connection-level setup commands that involve the store.
    match &request {
        Request::Hello {
            session: Some(id), ..
        } => {
            let Some(store) = ctx.store.as_ref() else {
                return Response::Err("durable sessions need a server state directory".into());
            };
            if session.pipeline.is_some() {
                return Response::Err("already configured".into());
            }
            let mut new_durable = match store.create(id, ctx.config.n_trees) {
                Ok(d) => d,
                Err(e) => return Response::Err(e.to_string()),
            };
            let response = session.apply(&request);
            if let Response::Ok(_) = &response {
                // A `PREF` sent before this `HELLO` predates the WAL, so the
                // effective preference is synthesized into the log here —
                // otherwise a pre-snapshot crash would silently reset a
                // recovered session to the default preference.
                let pref = format!(
                    "PREF {} {}",
                    session.preference.recall, session.preference.precision
                );
                for line in [pref.as_str(), trimmed] {
                    if let Err(e) = new_durable.append(line) {
                        return Response::Err(format!("session store I/O: {e}"));
                    }
                }
                *durable = Some(new_durable);
            }
            return response;
        }
        Request::Resume { session: id } => {
            let Some(store) = ctx.store.as_ref() else {
                return Response::Err("durable sessions need a server state directory".into());
            };
            if session.pipeline.is_some() {
                return Response::Err("already configured".into());
            }
            return match store.resume(id) {
                Ok((d, recovered)) => {
                    *session = recovered;
                    *durable = Some(d);
                    let status = session.apply(&Request::Status);
                    match status {
                        Response::Ok(s) => Response::Ok(format!("resumed {s}")),
                        other => other,
                    }
                }
                Err(e) => Response::Err(e.to_string()),
            };
        }
        _ => {}
    }

    let response = session.apply(&request);

    if let (Response::Ok(_), Some(d)) = (&response, durable.as_mut()) {
        if is_durable_command(&request) {
            // Append after apply, before the OK goes out: every command the
            // client sees acknowledged is on disk.
            let appended = match &request {
                // A batch is logged as its equivalent `OBS` lines — replay
                // needs no batch awareness — with one flush for the whole
                // group (group commit) instead of one per point.
                Request::ObsBatch { start, values } => {
                    let interval = session
                        .pipeline_mut()
                        .map_or(1, |p| i64::from(p.interval()));
                    d.append_batch(values.iter().enumerate().map(|(i, v)| {
                        let ts = start + i as i64 * interval;
                        match v {
                            Some(v) => format!("OBS {ts} {v}"),
                            None => format!("OBS {ts} nan"),
                        }
                    }))
                }
                _ => d.append(trimmed),
            };
            if let Err(e) = appended {
                return Response::Err(format!("session store I/O: {e}"));
            }
            if d.since_snapshot() >= ctx.config.snapshot_every {
                if let Some(p) = session.pipeline_mut() {
                    // Snapshot failure is non-fatal: the WAL alone is
                    // sufficient for recovery, just slower.
                    let _ = d.snapshot(p);
                }
            }
        }
    }
    response
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    // One syscall per line, not three (body, newline, flush).
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    writer.write_all(&out)
}

/// Runs one connection to completion with the full hardening stack:
/// tick-based reads (so deadlines and shutdown are honored), slowloris and
/// idle timeouts, a line-length cap, per-command panic isolation, and
/// durable-session bookkeeping with a final snapshot on clean exit.
fn serve_connection(stream: TcpStream, ctx: Arc<ConnCtx>) {
    // Request/response over small lines: Nagle only adds 40 ms delayed-ACK
    // stalls here, so replies go out the moment they are written.
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = stream;
    let _ = reader.set_read_timeout(Some(ctx.config.read_tick));

    let mut session = Session::new(ctx.config.n_trees);
    let mut durable: Option<DurableSession> = None;
    let mut poisoned = false;

    let mut buf: Vec<u8> = Vec::new();
    // Reused response accumulator: all replies for one read's worth of
    // complete lines go out in a single coalesced write.
    let mut out: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 4096];
    let mut last_line_at = Instant::now();
    let mut line_started_at: Option<Instant> = None;

    'outer: loop {
        if ctx.stop.load(Ordering::SeqCst) {
            break; // graceful drain: finish via the snapshot path below
        }
        match reader.read(&mut scratch) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                if line_started_at.is_none() {
                    line_started_at = Some(Instant::now());
                }
                buf.extend_from_slice(&scratch[..n]);
                if buf.len() > ctx.config.max_line_len {
                    let _ = write_line(&mut writer, "ERR line too long");
                    break;
                }
                // Drain every complete line already buffered before
                // answering, so a client that pipelines K commands costs
                // one write syscall, not K. Lines are processed in place
                // (borrowed slices of `buf`) — no per-line allocation.
                let mut consumed = 0usize;
                let mut done = false;
                out.clear();
                while let Some(rel) = buf[consumed..].iter().position(|&b| b == b'\n') {
                    let end = consumed + rel;
                    let line = String::from_utf8_lossy(&buf[consumed..end]);
                    consumed = end + 1;
                    last_line_at = Instant::now();
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    // A panicking handler must take down this connection
                    // only: answer ERR, drop the session, keep serving
                    // everyone else. The session is considered poisoned —
                    // no final snapshot is taken from it.
                    //
                    // A finished background retrain is harvested here, at
                    // the top of request handling: the swap happens between
                    // requests, never mid-reply, and its completion event
                    // precedes the reply to the request that observed it.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let event = harvest_training(&mut session, &mut durable);
                        let response = apply_line(trimmed, &mut session, &mut durable, &ctx);
                        (event, response)
                    }));
                    let (event, response, finished) = match outcome {
                        Ok((event, Response::Bye)) => (event, Response::Bye, true),
                        Ok((event, r)) => (event, r, false),
                        Err(_) => {
                            poisoned = true;
                            (None, Response::Err("internal error".into()), true)
                        }
                    };
                    if let Some(event) = event {
                        out.extend_from_slice(event.as_bytes());
                        out.push(b'\n');
                    }
                    out.extend_from_slice(response.render().as_bytes());
                    out.push(b'\n');
                    if finished {
                        done = true;
                        break;
                    }
                }
                if consumed > 0 {
                    buf.drain(..consumed);
                    // The slowloris clock restarts only when a line was
                    // completed; a still-partial line keeps its original
                    // start time.
                    line_started_at = if buf.is_empty() {
                        None
                    } else {
                        Some(Instant::now())
                    };
                }
                let write_failed = !out.is_empty() && writer.write_all(&out).is_err();
                if write_failed || done {
                    break 'outer;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let now = Instant::now();
                if let Some(started) = line_started_at {
                    if now.duration_since(started) > ctx.config.line_deadline {
                        let _ = write_line(&mut writer, "ERR line timeout");
                        break;
                    }
                } else if now.duration_since(last_line_at) > ctx.config.idle_timeout {
                    let _ = write_line(&mut writer, "ERR idle timeout");
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }

    if !poisoned {
        if let Some(d) = durable.as_mut() {
            if let Some(p) = session.pipeline_mut() {
                let _ = d.snapshot(p);
            }
            let _ = d.sync();
        }
    }
    let _ = writer.shutdown(Shutdown::Both);
}

/// Handle used to stop a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown. The accept loop exits, live connections drain
    /// (flushing durable state) within one read tick, and `serve` joins
    /// them before returning.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept with a throwaway connection.
        if let Ok(s) = TcpStream::connect(self.addr) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// The Opprentice TCP server.
pub struct Server {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
    store: Option<SessionStore>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with defaults.
    pub fn bind(addr: &str) -> std::io::Result<Server> {
        Self::bind_with(addr, ServerConfig::default())
    }

    /// Binds with explicit configuration. Opens (creating if necessary)
    /// the durable state root when one is configured.
    pub fn bind_with(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let store = match &config.state_dir {
            Some(dir) => Some(SessionStore::open(dir)?),
            None => None,
        };
        Ok(Server {
            listener,
            stop: Arc::new(AtomicBool::new(false)),
            config,
            store,
        })
    }

    /// A handle for shutting the server down.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: self.stop.clone(),
            addr: self.listener.local_addr().expect("bound listener"),
        }
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] is called.
    ///
    /// Hardening at the accept layer: finished worker handles are reaped
    /// every accept (no unbounded `JoinHandle` growth under churn), and
    /// connections beyond `max_connections` are shed with `ERR busy`
    /// instead of queueing. Connection threads are joined before
    /// returning, so a clean shutdown never strands a session mid-write.
    pub fn serve(self) -> std::io::Result<()> {
        let ctx = Arc::new(ConnCtx {
            config: self.config,
            store: self.store,
            stop: self.stop.clone(),
        });
        let active = Arc::new(AtomicUsize::new(0));
        let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(mut stream) => {
                    workers.lock().retain(|h| !h.is_finished());
                    if active.load(Ordering::SeqCst) >= ctx.config.max_connections {
                        let _ = stream.write_all(b"ERR busy\n");
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    let guard = ConnGuard(active.clone());
                    let ctx = ctx.clone();
                    let handle = std::thread::spawn(move || {
                        let _guard = guard;
                        serve_connection(stream, ctx);
                    });
                    workers.lock().push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(_) => continue,
            }
        }
        for handle in workers.lock().drain(..) {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Decrements the live-connection count when a worker exits by any path
/// (including a panic that escapes `serve_connection`, which cannot happen
/// today but must not wedge the cap if it ever does).
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A tiny blocking test client. Asynchronous `EVENT` lines (retrain
    /// completions) are collected into `events` rather than returned as
    /// replies, mirroring how a real client demultiplexes the stream.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
        events: Vec<String>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let writer = stream.try_clone().expect("clone");
            Client {
                reader: BufReader::new(stream),
                writer,
                events: Vec::new(),
            }
        }

        fn send(&mut self, line: &str) -> String {
            self.writer.write_all(line.as_bytes()).unwrap();
            self.writer.write_all(b"\n").unwrap();
            self.writer.flush().unwrap();
            self.read_line()
        }

        fn read_line(&mut self) -> String {
            loop {
                let mut out = String::new();
                self.reader.read_line(&mut out).unwrap();
                let line = out.trim_end().to_string();
                if line.starts_with("EVENT ") {
                    self.events.push(line);
                    continue;
                }
                return line;
            }
        }
    }

    /// Issues `RETRAIN` and polls `STATUS` until the background job lands.
    fn retrain_and_wait(c: &mut Client) {
        let reply = c.send("RETRAIN");
        assert!(reply.starts_with("OK retraining job="), "{reply}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = c.send("STATUS");
            if status.contains("training=0") {
                assert!(status.contains(" trained=1 "), "{status}");
                return;
            }
            assert!(Instant::now() < deadline, "retrain never landed: {status}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            n_trees: 8,
            ..Default::default()
        } // small forest: fast retrains
    }

    fn start_server(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind_with("127.0.0.1:0", config).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve().expect("serve"));
        (handle, join)
    }

    /// Streams a daily-patterned history with labeled spikes, then checks
    /// online verdicts — the full protocol lifecycle over a real socket.
    #[test]
    fn full_protocol_lifecycle() {
        let (handle, join) = start_server(test_config());
        let mut c = Client::connect(handle.addr());

        assert!(c.send("HELLO 3600").starts_with("OK opprentice"));
        assert!(c
            .send("STATUS")
            .starts_with("OK observed=0 labeled=0 trained=0 cthld=0.500 extract_us="));

        // Stream 21 days of hourly data with a spike every 63 hours.
        let n = 21 * 24;
        let mut flags = String::with_capacity(n);
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            let anomalous = i % 63 == 50 || i % 63 == 51;
            let v = if anomalous { base + 150.0 } else { base };
            let reply = c.send(&format!("OBS {} {v}", i * 3600));
            assert!(reply.starts_with("OK"), "{reply}");
            flags.push(if anomalous { '1' } else { '0' });
        }

        // Label everything, retrain (asynchronously — serving continues
        // on the untrained default until the new model swaps in).
        assert_eq!(c.send(&format!("LABEL {flags}")), format!("OK labeled={n}"));
        retrain_and_wait(&mut c);
        assert_eq!(c.events.len(), 1, "{:?}", c.events);
        assert!(
            c.events[0].starts_with("EVENT retrained job=1 model_version=1 cthld="),
            "{:?}",
            c.events
        );

        // A normal continuation scores low; a spike alerts.
        let normal = c.send(&format!("OBS {} 100.0", n * 3600));
        assert!(normal.contains("anomaly=0"), "{normal}");
        let spike = c.send(&format!("OBS {} 400.0", (n + 1) * 3600));
        assert!(spike.contains("anomaly=1"), "{spike}");

        assert_eq!(c.send("QUIT"), "BYE");
        handle.shutdown();
        join.join().unwrap();
    }

    /// While a retrain job is in flight, `LABEL` and a second `RETRAIN`
    /// are refused — the invariant that keeps WAL replay exact. Driven at
    /// the Session level, where nothing polls the job in, so the
    /// assertions cannot race the trainer thread finishing.
    #[test]
    fn mid_flight_labels_and_second_retrain_are_rejected() {
        fn apply(s: &mut Session, line: &str) -> Response {
            s.apply(&parse_request(line).unwrap())
        }
        let mut s = Session::new(8);
        assert!(matches!(apply(&mut s, "HELLO 3600"), Response::Ok(_)));
        let n = 14 * 24;
        let mut flags = String::with_capacity(n);
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            let anomalous = i % 63 == 50 || i % 63 == 51;
            let v = if anomalous { base + 150.0 } else { base };
            assert!(matches!(
                apply(&mut s, &format!("OBS {} {v}", i * 3600)),
                Response::Ok(_)
            ));
            flags.push(if anomalous { '1' } else { '0' });
        }
        assert!(matches!(
            apply(&mut s, &format!("LABEL {flags}")),
            Response::Ok(_)
        ));

        match apply(&mut s, "RETRAIN") {
            Response::Ok(m) => assert_eq!(m, "retraining job=1"),
            other => panic!("unexpected {}", other.render()),
        }
        match apply(&mut s, "LABEL 0") {
            Response::Err(m) => {
                assert_eq!(m, "retrain in progress; send labels after it completes");
            }
            other => panic!("unexpected {}", other.render()),
        }
        match apply(&mut s, "RETRAIN") {
            Response::Err(m) => assert_eq!(m, "retrain already in progress"),
            other => panic!("unexpected {}", other.render()),
        }
        // Observations keep flowing throughout.
        assert!(matches!(
            apply(&mut s, &format!("OBS {} 100.0", n * 3600)),
            Response::Ok(_)
        ));

        // Once the job lands, both are accepted again.
        let report = s.wait_training().expect("job lands");
        assert_eq!(report.model_version, 1);
        assert!(matches!(apply(&mut s, "LABEL 0"), Response::Ok(_)));
        match apply(&mut s, "RETRAIN") {
            Response::Ok(m) => assert_eq!(m, "retraining job=2"),
            other => panic!("unexpected {}", other.render()),
        }
        assert_eq!(s.wait_training().expect("job lands").model_version, 2);
    }

    /// The load-bearing batching contract: an `OBSB` reply is the `|`-join
    /// of exactly the replies the equivalent `OBS` sequence produces.
    #[test]
    fn obsb_reply_matches_single_obs_replies() {
        let (handle, join) = start_server(test_config());
        let mut singles = Client::connect(handle.addr());
        let mut batched = Client::connect(handle.addr());
        assert!(singles.send("HELLO 3600").starts_with("OK"));
        assert!(batched.send("HELLO 3600").starts_with("OK"));

        let values = ["100.0", "120.5", "nan", "90.25"];
        let one_by_one: Vec<String> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let reply = singles.send(&format!("OBS {} {v}", i as i64 * 3600));
                reply.strip_prefix("OK ").expect("OK reply").to_string()
            })
            .collect();
        assert_eq!(
            batched.send(&format!("OBSB 0 {}", values.join(" "))),
            format!("OK {}", one_by_one.join("|"))
        );

        // A batch needs a pipeline, like a single observation does.
        let mut fresh = Client::connect(handle.addr());
        assert!(fresh.send("OBSB 0 1.0").starts_with("ERR"));

        singles.send("QUIT");
        batched.send("QUIT");
        fresh.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    /// STATUS exposes the session's cumulative extraction and inference
    /// wall-clock, so operators can see where serving time goes. Under
    /// the fused batch path the family kernels run concurrently on the
    /// extraction pool: the counter must report the *caller-experienced*
    /// latency of the batch call, never the summed per-worker CPU time —
    /// so it advances monotonically but stays bounded by session
    /// wall-clock.
    #[test]
    fn status_reports_cumulative_timing_counters() {
        let (handle, join) = start_server(test_config());
        let mut c = Client::connect(handle.addr());

        // Before HELLO the counters exist and are zero.
        assert_eq!(
            c.send("STATUS"),
            "OK observed=0 labeled=0 trained=0 extract_us=0 infer_us=0 \
             train_us=0 model_version=0 training=0"
        );
        let session_t0 = std::time::Instant::now();
        assert!(c.send("HELLO 60").starts_with("OK"));

        fn counter(status: &str, key: &str) -> u64 {
            status
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix(key))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("no {key} in {status}"))
        }

        // Feeding points advances the extraction counter monotonically.
        for i in 0..64 {
            assert!(c
                .send(&format!("OBS {} {}.0", i * 60, 100 + i % 7))
                .starts_with("OK"));
        }
        let status = c.send("STATUS");
        let after_obs = counter(&status, "extract_us=");
        assert!(after_obs > 0, "{status}");

        // Batches large enough to take the worker-pool path (with several
        // shards extracting concurrently).
        for round in 0..4 {
            let batch: Vec<String> = (0..64).map(|i| format!("{}.0", 100 + i % 5)).collect();
            assert!(c
                .send(&format!(
                    "OBSB {} {}",
                    (64 + round * 64) * 60,
                    batch.join(" ")
                ))
                .starts_with("OK"));
        }
        let status = c.send("STATUS");
        let after_obsb = counter(&status, "extract_us=");
        assert!(after_obsb > after_obs, "{status}");
        // The no-double-counting bound: with N pool workers extracting in
        // parallel, summed kernel time could be ~N x wall-clock; the
        // counter reports wall-clock, so it can never exceed the time the
        // whole session has existed.
        let session_us = session_t0.elapsed().as_micros() as u64;
        assert!(
            after_obsb <= session_us,
            "extract_us={after_obsb} exceeds session wall-clock {session_us}us \
             (per-worker time double-counted?)"
        );

        c.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    /// Pipelined commands (many lines in one write) are all answered, in
    /// order — the coalesced read/write path.
    #[test]
    fn pipelined_lines_are_all_answered() {
        let (handle, join) = start_server(test_config());
        let mut c = Client::connect(handle.addr());
        c.writer
            .write_all(b"HELLO 60\nOBS 0 1.0\nSTATUS\nBOGUS\n")
            .unwrap();
        c.writer.flush().unwrap();
        assert!(c.read_line().starts_with("OK opprentice"));
        assert_eq!(c.read_line(), "OK pending");
        assert!(c.read_line().starts_with("OK observed=1"));
        assert!(c.read_line().starts_with("ERR"));
        c.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn protocol_errors_keep_the_connection_alive() {
        let (handle, join) = start_server(test_config());
        let mut c = Client::connect(handle.addr());

        // Everything before HELLO that needs a pipeline: ERR.
        assert!(c.send("OBS 0 1.0").starts_with("ERR"));
        assert!(c.send("RETRAIN").starts_with("ERR"));
        // Garbage: ERR with a reason, connection still usable.
        assert!(c.send("GARBAGE").starts_with("ERR"));
        assert!(c.send("HELLO 60").starts_with("OK"));
        // Double HELLO rejected.
        assert!(c.send("HELLO 60").starts_with("ERR"));
        // Labeling more than observed rejected.
        assert!(c.send("LABEL 111").starts_with("ERR"));
        // Retrain without positives rejected.
        c.send("OBS 0 1.0");
        c.send("LABEL 0");
        assert!(c.send("RETRAIN").starts_with("ERR"));

        assert_eq!(c.send("QUIT"), "BYE");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn preference_must_precede_hello() {
        let (handle, join) = start_server(test_config());
        let mut c = Client::connect(handle.addr());
        assert!(c.send("PREF 0.8 0.6").starts_with("OK pref"));
        assert!(c.send("HELLO 60").starts_with("OK"));
        assert!(c.send("PREF 0.5 0.5").starts_with("ERR"));
        c.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn concurrent_connections_are_isolated() {
        let (handle, join) = start_server(test_config());
        let mut a = Client::connect(handle.addr());
        let mut b = Client::connect(handle.addr());
        assert!(a.send("HELLO 60").starts_with("OK"));
        // b is unconfigured even though a is configured.
        assert!(b.send("OBS 0 1.0").starts_with("ERR"));
        assert!(b.send("HELLO 300").starts_with("OK"));
        a.send("OBS 0 5.0");
        assert!(a
            .send("STATUS")
            .starts_with("OK observed=1 labeled=0 trained=0 cthld=0.500 extract_us="));
        assert!(b
            .send("STATUS")
            .starts_with("OK observed=0 labeled=0 trained=0 cthld=0.500 extract_us="));
        a.send("QUIT");
        b.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn disconnect_without_quit_is_fine() {
        let (handle, join) = start_server(test_config());
        {
            let mut c = Client::connect(handle.addr());
            assert!(c.send("HELLO 60").starts_with("OK"));
            // Drop the client abruptly.
        }
        // Server still accepts new connections.
        let mut c2 = Client::connect(handle.addr());
        assert!(c2.send("HELLO 60").starts_with("OK"));
        c2.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(150),
            read_tick: Duration::from_millis(20),
            ..test_config()
        };
        let (handle, join) = start_server(config);
        let mut c = Client::connect(handle.addr());
        assert!(c.send("HELLO 60").starts_with("OK"));
        // Go silent; the server must hang up on us, not wait forever.
        assert_eq!(c.read_line(), "ERR idle timeout");
        assert_eq!(c.read_line(), ""); // EOF
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn oversized_lines_are_rejected() {
        let config = ServerConfig {
            max_line_len: 64,
            ..test_config()
        };
        let (handle, join) = start_server(config);
        let mut c = Client::connect(handle.addr());
        c.writer.write_all(&vec![b'A'; 256]).unwrap();
        c.writer.flush().unwrap();
        assert_eq!(c.read_line(), "ERR line too long");
        assert_eq!(c.read_line(), ""); // EOF
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn excess_connections_are_shed_with_err_busy() {
        let config = ServerConfig {
            max_connections: 1,
            ..test_config()
        };
        let (handle, join) = start_server(config);
        let mut first = Client::connect(handle.addr());
        assert!(first.send("HELLO 60").starts_with("OK"));
        // The slot is taken: the next connection is turned away at once.
        let mut second = Client::connect(handle.addr());
        assert_eq!(second.read_line(), "ERR busy");
        // The first connection is unaffected.
        assert!(first.send("STATUS").starts_with("OK"));
        first.send("QUIT");
        // With the slot free again (allow a tick for the reap), new
        // connections are served.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut third = Client::connect(handle.addr());
            let reply = third.send("HELLO 60");
            if reply.starts_with("OK") {
                third.send("QUIT");
                break;
            }
            assert!(Instant::now() < deadline, "slot never freed: {reply}");
            std::thread::sleep(Duration::from_millis(20));
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn resume_without_state_dir_is_a_clean_error() {
        let (handle, join) = start_server(test_config());
        let mut c = Client::connect(handle.addr());
        assert!(c.send("RESUME some-session").starts_with("ERR"));
        assert!(c.send("HELLO 60 some-session").starts_with("ERR"));
        // The connection is still usable for an ephemeral session.
        assert!(c.send("HELLO 60").starts_with("OK"));
        c.send("QUIT");
        handle.shutdown();
        join.join().unwrap();
    }
}
