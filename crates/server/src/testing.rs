//! Chaos-testing utilities: a blocking line-protocol client plus a fault
//! injector that mistreats the server in the ways real networks do.
//!
//! Lives in the library (rather than `#[cfg(test)]`) so integration and
//! workspace-level chaos tests can drive a real server over real sockets
//! with the same tooling.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// A tiny blocking test client for the line protocol. Asynchronous
/// `EVENT` lines (background-retrain completions) are demultiplexed into
/// [`Client::events`] rather than returned as command replies.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    events: Vec<String>,
}

impl Client {
    /// Connects to the server with `TCP_NODELAY` set (the deployment
    /// recommendation for this small-line request/response protocol).
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::from_stream(stream)
    }

    /// Connects *without* `TCP_NODELAY` — a naive agent whose small
    /// per-point writes interact with Nagle + delayed ACK (~40 ms stalls).
    /// The serving benchmark uses this as its pre-batching baseline.
    pub fn connect_plain(addr: SocketAddr) -> std::io::Result<Client> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            events: Vec::new(),
        })
    }

    /// Sends one command line and returns the one-line response (trimmed).
    pub fn send(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Reads one response line (trimmed). An empty string means EOF.
    /// `EVENT` lines encountered on the way are collected into
    /// [`Client::events`] and not returned.
    pub fn read_line(&mut self) -> std::io::Result<String> {
        loop {
            let mut out = String::new();
            self.reader.read_line(&mut out)?;
            let line = out.trim_end().to_string();
            if line.starts_with("EVENT ") {
                self.events.push(line);
                continue;
            }
            return Ok(line);
        }
    }

    /// Asynchronous `EVENT` lines collected so far, in arrival order.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Writes raw bytes without framing (for malformed-input injection).
    pub fn write_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Bounds how long reads may block.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Closes the connection abruptly, without `QUIT`.
    pub fn kill(self) {
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

/// Injects client-side faults against a running server.
pub struct FaultInjector {
    addr: SocketAddr,
}

impl FaultInjector {
    /// Targets the server at `addr`.
    pub fn new(addr: SocketAddr) -> FaultInjector {
        FaultInjector { addr }
    }

    /// Slowloris: trickles the bytes of `line` one at a time with `gap`
    /// between them, never sending the newline. Returns the server's
    /// response line once it loses patience (empty string if it just
    /// closed the socket).
    pub fn slowloris(&self, line: &str, gap: Duration) -> std::io::Result<String> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        for &b in line.as_bytes() {
            if stream.write_all(&[b]).is_err() {
                break; // server already hung up on us
            }
            std::thread::sleep(gap);
        }
        let mut out = String::new();
        let _ = reader.read_line(&mut out);
        Ok(out.trim_end().to_string())
    }

    /// Sends a partial command (no newline) and disconnects mid-line.
    pub fn disconnect_mid_command(&self, partial: &str) -> std::io::Result<()> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.write_all(partial.as_bytes())?;
        stream.flush()?;
        stream.shutdown(Shutdown::Both)
    }

    /// Floods the server with `lines` lines of deterministic pseudo-random
    /// garbage (including non-UTF-8 bytes), reading the response to each.
    /// Returns how many `ERR` responses came back; stops early if the
    /// server hangs up.
    pub fn garbage_flood(&self, lines: usize, seed: u64) -> std::io::Result<usize> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        // A bare LCG keeps this dependency-free and reproducible.
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut errs = 0;
        for _ in 0..lines {
            let mut junk = Vec::with_capacity(33);
            let len = 1 + (state >> 33) as usize % 32;
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut byte = (state >> 56) as u8;
                // No control/whitespace bytes: an accidentally blank line
                // gets no response and would deadlock the flood loop.
                if byte <= 0x20 || byte == 0x7F {
                    byte = b'?';
                }
                junk.push(byte);
            }
            junk.push(b'\n');
            if writer.write_all(&junk).is_err() {
                break;
            }
            let mut response = String::new();
            match reader.read_line(&mut response) {
                Ok(0) | Err(_) => break,
                Ok(_) if response.starts_with("ERR") => errs += 1,
                Ok(_) => {}
            }
        }
        Ok(errs)
    }

    /// Opens a connection and leaves it completely silent, returning the
    /// stream so the caller controls its lifetime. The server's idle
    /// reaper should eventually hang up.
    pub fn connect_and_stall(&self) -> std::io::Result<TcpStream> {
        TcpStream::connect(self.addr)
    }
}
