//! `opprentice-serve` — run the Opprentice TCP service.
//!
//! ```text
//! opprentice-serve [ADDR]     # default 127.0.0.1:4755 ("OPpr" on a phone pad)
//! ```
//!
//! Try it interactively:
//!
//! ```text
//! $ opprentice-serve &
//! $ nc 127.0.0.1 4755
//! HELLO 60
//! OK opprentice interval=60
//! OBS 0 100.0
//! OK pending
//! ```

use opprentice_server::Server;

fn main() -> std::io::Result<()> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:4755".to_string());
    let server = Server::bind(&addr)?;
    let handle = server.handle();
    eprintln!("opprentice-serve listening on {}", handle.addr());
    eprintln!("protocol: HELLO <interval> | OBS <ts> <value|nan> | LABEL <flags> | RETRAIN | STATUS | QUIT");
    server.serve()
}
