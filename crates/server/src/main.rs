//! `opprentice-serve` — run the Opprentice TCP service.
//!
//! ```text
//! opprentice-serve [ADDR] [--state-dir DIR]
//! ```
//!
//! Defaults to `127.0.0.1:4755` ("OPpr" on a phone pad). With
//! `--state-dir`, clients may open durable sessions
//! (`HELLO <interval> <id>`) and recover them (`RESUME <id>`) across
//! disconnects and server restarts.
//!
//! `SIGINT`/`SIGTERM` trigger a graceful drain: the accept loop stops,
//! live connections are unwound, and durable sessions flush a final
//! snapshot before the process exits.
//!
//! Try it interactively:
//!
//! ```text
//! $ opprentice-serve &
//! $ nc 127.0.0.1 4755
//! HELLO 60
//! OK opprentice interval=60
//! OBS 0 100.0
//! OK pending
//! ```

use opprentice_server::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: flip a flag, let a thread act on it.
    STOP.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) via the libc
/// `signal(2)` entry point — the one bit of FFI this binary needs, kept
/// out of the (`forbid(unsafe_code)`) library.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(2, on_signal as *const () as usize);
        signal(15, on_signal as *const () as usize);
    }
}

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:4755".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-dir" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--state-dir needs a path");
                    std::process::exit(2);
                });
                config.state_dir = Some(PathBuf::from(dir));
            }
            other => addr = other.to_string(),
        }
    }

    install_signal_handlers();
    let server = Server::bind_with(&addr, config)?;
    let handle = server.handle();
    eprintln!("opprentice-serve listening on {}", handle.addr());
    eprintln!(
        "protocol: HELLO <interval> [session] | RESUME <session> | OBS <ts> <value|nan> | \
         LABEL <flags> | RETRAIN | STATUS | QUIT"
    );

    // The signal handler can only flip a flag; this thread turns the flag
    // into a graceful drain.
    std::thread::spawn(move || loop {
        if STOP.load(Ordering::SeqCst) {
            eprintln!("opprentice-serve: shutting down");
            handle.shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    });

    server.serve()
}
