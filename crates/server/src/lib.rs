//! A TCP service exposing the Opprentice pipeline over a line protocol.
//!
//! The paper's system ran as an online service beside the monitored search
//! engine (§5.8 sizes its detection lag against the 1-minute data
//! interval). This crate provides that deployment shape: monitoring agents
//! stream `(timestamp, value)` points over TCP, receive verdicts inline,
//! and push operator labels after each weekly labeling session.
//!
//! Design notes (per the project's networking guides): the workload is
//! CPU-bound (feature extraction + forest inference) with a handful of
//! long-lived connections — exactly the case where an async runtime buys
//! nothing, so the server is plain `std::net` with one thread per
//! connection and a clean shutdown path. The protocol is line-based and
//! telnet-friendly; framing is newline, encoding is ASCII.
//!
//! ## Protocol
//!
//! Each connection monitors one KPI. Requests are single lines; responses
//! are single lines starting with `OK`, `ERR` or `BYE`.
//!
//! ```text
//! HELLO <interval_seconds> [session_id]
//!                               first command; fixes the KPI's interval.
//!                               With a session id (and a server state
//!                               directory) the session is durable: every
//!                               applied command is write-ahead logged and
//!                               the trained state snapshotted.
//! RESUME <session_id>           instead of HELLO: rebuild a durable
//!                               session after a disconnect or server
//!                               crash; verdicts continue exactly where
//!                               they left off
//! PREF <recall> <precision>     set the accuracy preference, each in
//!                               (0, 1] (before HELLO; default 0.66 0.66)
//! OBS <ts> <value|nan>          feed one point -> verdict (or "pending")
//! OBSB <ts0> <v0> [v1 ...]      feed a batch of consecutive points (point
//!                               i lands at ts0 + i*interval) -> one OK
//!                               line with the per-point verdicts joined
//!                               by `|`, each byte-identical to what the
//!                               equivalent OBS would have returned
//! LABEL <flags>                 label the oldest unlabeled points; flags is
//!                               a string of 0/1, one per point
//! RETRAIN                       incremental retraining + cThld refresh
//! STATUS                        counters and current cThld
//! QUIT                          close the connection
//! ```
//!
//! ## Robustness
//!
//! The serving layer is hardened against misbehaving clients and process
//! crashes:
//!
//! - **Durability.** Durable sessions append every acknowledged command to
//!   a per-session write-ahead log *before* the `OK` goes out, and
//!   periodically snapshot the trained state (forest, threshold predictor,
//!   labels) atomically. `RESUME` replays the log around the latest
//!   snapshot; because training is deterministically seeded, a resumed
//!   session produces byte-identical verdicts to one that never crashed.
//! - **Timeouts.** A line must complete within a deadline once its first
//!   byte arrives (anti-slowloris), and connections with no traffic are
//!   reaped, so one hung client can never pin a thread forever.
//! - **Load shedding.** Connections beyond the configured cap are answered
//!   `ERR busy` and closed instead of degrading everyone.
//! - **Panic isolation.** A panic while handling a command is caught,
//!   answered with `ERR internal error`, and takes down only that
//!   connection — never the server.
//!
//! ## Throughput
//!
//! The hot path is built for batch-friendly serving: trained forests are
//! compiled to a flat cache-friendly layout (`opprentice_learn`'s
//! `CompiledForest`) at retrain time, `OBSB` amortizes the per-line
//! round-trip over many points, the connection loop drains every complete
//! pipelined line before answering with one coalesced write, and durable
//! batches are group-committed to the WAL with a single flush. See
//! `crates/bench/src/bin/serving_bench.rs` for the measurement harness.
//!
//! All knobs live on [`ServerConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proto;
mod service;
mod store;
pub mod testing;

pub use proto::{parse_request, validate_session_id, Request, Response};
pub use service::{Server, ServerConfig, ServerHandle};
pub use store::{SessionStore, StoreError};
