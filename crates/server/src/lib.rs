//! A TCP service exposing the Opprentice pipeline over a line protocol.
//!
//! The paper's system ran as an online service beside the monitored search
//! engine (§5.8 sizes its detection lag against the 1-minute data
//! interval). This crate provides that deployment shape: monitoring agents
//! stream `(timestamp, value)` points over TCP, receive verdicts inline,
//! and push operator labels after each weekly labeling session.
//!
//! Design notes (per the project's networking guides): the workload is
//! CPU-bound (feature extraction + forest inference) with a handful of
//! long-lived connections — exactly the case where an async runtime buys
//! nothing, so the server is plain `std::net` with one thread per
//! connection and a clean shutdown path. The protocol is line-based and
//! telnet-friendly; framing is newline, encoding is ASCII.
//!
//! ## Protocol
//!
//! Each connection monitors one KPI. Requests are single lines; responses
//! are single lines starting with `OK`, `ERR` or `BYE`.
//!
//! ```text
//! HELLO <interval_seconds>      first command; fixes the KPI's interval
//! PREF <recall> <precision>     set the accuracy preference (before HELLO's
//!                               first RETRAIN; default 0.66 0.66)
//! OBS <ts> <value|nan>          feed one point -> verdict (or "pending")
//! LABEL <flags>                 label the oldest unlabeled points; flags is
//!                               a string of 0/1, one per point
//! RETRAIN                       incremental retraining + cThld refresh
//! STATUS                        counters and current cThld
//! QUIT                          close the connection
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proto;
mod service;

pub use proto::{parse_request, Request, Response};
pub use service::{Server, ServerHandle};
