//! Property-based tests for the framework layer.

use opprentice::cthld::{pc_score, select_operating_point, CthldMetric, Preference};
use opprentice::evaluate::moving_window_metrics;
use opprentice::postprocess::{group_alerts, DurationFilter};
use opprentice::predictor::EwmaCthldPredictor;
use opprentice_learn::metrics::PrPoint;
use proptest::prelude::*;

fn curve_strategy() -> impl Strategy<Value = Vec<PrPoint>> {
    prop::collection::vec((0.0f64..1.0, 0.01f64..=1.0), 1..40).prop_map(|mut raw| {
        // Build a valid curve: thresholds strictly descending, recall
        // non-decreasing.
        raw.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        raw.dedup_by(|a, b| a.0 == b.0);
        let n = raw.len();
        raw.into_iter()
            .enumerate()
            .map(|(i, (t, p))| PrPoint {
                threshold: t,
                recall: (i + 1) as f64 / n as f64,
                precision: p,
            })
            .collect()
    })
}

proptest! {
    /// PC-Score is the F-Score plus exactly 0 or 1.
    #[test]
    fn pc_score_is_f_plus_incentive(r in 0.0f64..=1.0, p in 0.0f64..=1.0) {
        let pref = Preference::moderate();
        let f = opprentice_learn::metrics::f_score(r, p);
        let pc = pc_score(r, p, &pref);
        let bonus = pc - f;
        prop_assert!((bonus - 0.0).abs() < 1e-12 || (bonus - 1.0).abs() < 1e-12);
        prop_assert_eq!((bonus - 1.0).abs() < 1e-12, pref.satisfied_by(r, p));
    }

    /// The PC-Score selection picks an in-box point whenever one exists.
    #[test]
    fn pc_score_selection_finds_the_box(curve in curve_strategy(), rr in 0.1f64..0.9, pp in 0.1f64..0.9) {
        let pref = Preference { recall: rr, precision: pp };
        let chosen = select_operating_point(&curve, CthldMetric::PcScore(pref)).unwrap();
        let box_exists = curve.iter().any(|p| pref.satisfied_by(p.recall, p.precision));
        if box_exists {
            prop_assert!(pref.satisfied_by(chosen.recall, chosen.precision),
                "box exists but chosen {chosen:?}");
        }
    }

    /// Every selection metric returns a point that is on the curve.
    #[test]
    fn selections_come_from_the_curve(curve in curve_strategy()) {
        for metric in [
            CthldMetric::FScore,
            CthldMetric::Sd11,
            CthldMetric::PcScore(Preference::moderate()),
        ] {
            let p = select_operating_point(&curve, metric).unwrap();
            prop_assert!(curve.contains(&p), "{metric:?} invented a point");
        }
    }

    /// The duration filter preserves stream length and never passes a run
    /// shorter than the minimum.
    #[test]
    fn duration_filter_invariants(verdicts in prop::collection::vec(any::<bool>(), 0..200), min in 1usize..6) {
        let out = DurationFilter::apply(min, &verdicts);
        prop_assert_eq!(out.len(), verdicts.len());
        // No surviving anomaly run is shorter than min.
        let mut run = 0usize;
        for (i, &v) in out.iter().enumerate() {
            if v {
                run += 1;
            } else {
                prop_assert!(run == 0 || run >= min, "short run ending at {i}");
                run = 0;
            }
            // The filter can only remove detections, never add them.
            prop_assert!(!v || verdicts[i], "filter invented an anomaly at {i}");
        }
        prop_assert!(run == 0 || run >= min);
    }

    /// Alerts partition the anomalous points exactly.
    #[test]
    fn alerts_cover_anomalous_points(probs in prop::collection::vec(prop::option::of(0.0f64..1.0), 0..150)) {
        let cthld = 0.5;
        let alerts = group_alerts(&probs, cthld);
        let mut covered = vec![false; probs.len()];
        for a in &alerts {
            prop_assert!(a.peak_probability >= cthld);
            for i in a.window.start..a.window.end {
                prop_assert!(probs[i].is_some_and(|p| p >= cthld), "alert covers normal point {i}");
                covered[i] = true;
            }
        }
        for (i, p) in probs.iter().enumerate() {
            if p.is_some_and(|p| p >= cthld) {
                prop_assert!(covered[i], "anomalous point {i} not alerted");
            }
        }
    }

    /// EWMA predictions always stay inside [0, 1] and converge to a
    /// constant input.
    #[test]
    fn ewma_predictor_bounds(updates in prop::collection::vec(0.0f64..=1.0, 1..50), alpha in 0.01f64..=1.0) {
        let mut p = EwmaCthldPredictor::new(alpha);
        for &u in &updates {
            let next = p.update(u);
            prop_assert!((0.0..=1.0).contains(&next));
        }
        // Converge on repetition (rate depends on alpha).
        for _ in 0..2000 {
            p.update(0.7);
        }
        prop_assert!((p.predict().unwrap() - 0.7).abs() < 1e-3);
    }

    /// Moving-window metrics always produce recall/precision in [0, 1] and
    /// at most one point per step position.
    #[test]
    fn moving_window_bounds(
        n in 10usize..120,
        window in 2usize..20,
        step in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let scores: Vec<Option<f64>> = (0..n).map(|_| (next() > 0.1).then(&mut next)).collect();
        let truth: Vec<bool> = (0..n).map(|_| next() < 0.2).collect();
        let cthlds = vec![0.5; n];
        let points = moving_window_metrics(&scores, &cthlds, &truth, window.min(n), step);
        for p in &points {
            prop_assert!((0.0..=1.0).contains(&p.recall));
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!(p.start + window.min(n) <= n);
        }
    }
}

proptest! {
    /// The session-snapshot decoder is total: arbitrary bytes never panic.
    /// Crash recovery reads snapshot files that may be torn or corrupted,
    /// so decoding must fail as a value, not a process abort.
    #[test]
    fn snapshot_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..800)) {
        let _ = opprentice::SessionSnapshot::from_bytes(&bytes);
    }

    /// Same, with a valid magic + version prefix so the fuzz bytes reach
    /// the field decoding paths instead of dying at the header.
    #[test]
    fn snapshot_decoder_never_panics_past_header(
        mut bytes in prop::collection::vec(any::<u8>(), 6..800),
    ) {
        bytes[..4].copy_from_slice(b"OPRF");
        bytes[4..6].copy_from_slice(&4u16.to_le_bytes());
        let _ = opprentice::SessionSnapshot::from_bytes(&bytes);
    }
}

/// Any `f64` bit pattern: NaNs, infinities, subnormals, both zeros — the
/// hostile end of the input space the EWMA predictor must absorb.
fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

proptest! {
    /// The EWMA predictor is total over `f64`: any update input — NaN and
    /// infinities included — leaves both the returned cThld and the stored
    /// prediction inside [0, 1]. A NaN that slipped through would poison
    /// every later prediction (NaN survives `clamp`) and with it every
    /// verdict the serving layer emits.
    #[test]
    fn ewma_update_is_total_over_f64(
        updates in prop::collection::vec(any_f64(), 0..60),
        alpha in 0.0f64..=1.0,
    ) {
        let mut p = EwmaCthldPredictor::new(alpha);
        // Empty history: no prediction, and predicting is not an error.
        prop_assert_eq!(p.predict(), None);
        for &u in &updates {
            let next = p.update(u);
            prop_assert!((0.0..=1.0).contains(&next), "update({u}) returned {next}");
            if let Some(pred) = p.predict() {
                prop_assert!((0.0..=1.0).contains(&pred), "stored {pred} after update({u})");
            }
        }
    }

    /// Initialization is equally total: a non-finite seed is ignored, a
    /// finite one lands clamped into [0, 1].
    #[test]
    fn ewma_initialize_is_total_over_f64(seed in any_f64(), follow in any_f64()) {
        let mut p = EwmaCthldPredictor::paper();
        p.initialize(seed);
        if let Some(pred) = p.predict() {
            prop_assert!((0.0..=1.0).contains(&pred), "initialize({seed}) stored {pred}");
        }
        let next = p.update(follow);
        prop_assert!((0.0..=1.0).contains(&next));
    }

    /// A constant history is a fixpoint: the blend `α·c + (1−α)·c` leaves
    /// the prediction at `c` for every α, up to float rounding.
    #[test]
    fn ewma_constant_history_is_a_fixpoint(
        c in 0.0f64..=1.0,
        alpha in 0.0f64..=1.0,
        n in 1usize..30,
    ) {
        let mut p = EwmaCthldPredictor::new(alpha);
        p.initialize(c);
        for _ in 0..n {
            p.update(c);
        }
        prop_assert!((p.predict().unwrap() - c).abs() < 1e-9);
    }

    /// Every α in [0, 1] constructs (the out-of-range and NaN cases are
    /// the `#[should_panic]` tests below).
    #[test]
    fn ewma_valid_alphas_construct(alpha in 0.0f64..=1.0) {
        let mut p = EwmaCthldPredictor::new(alpha);
        prop_assert!((0.0..=1.0).contains(&p.update(0.3)));
    }
}

#[test]
#[should_panic(expected = "alpha must be in [0, 1]")]
fn ewma_alpha_above_one_panics() {
    let _ = EwmaCthldPredictor::new(1.5);
}

#[test]
#[should_panic(expected = "alpha must be in [0, 1]")]
fn ewma_alpha_below_zero_panics() {
    let _ = EwmaCthldPredictor::new(-0.5);
}

#[test]
#[should_panic(expected = "alpha must be in [0, 1]")]
fn ewma_nan_alpha_panics() {
    let _ = EwmaCthldPredictor::new(f64::NAN);
}
