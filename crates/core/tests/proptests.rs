//! Property-based tests for the framework layer.

use opprentice::cthld::{pc_score, select_operating_point, CthldMetric, Preference};
use opprentice::evaluate::moving_window_metrics;
use opprentice::postprocess::{group_alerts, DurationFilter};
use opprentice::predictor::EwmaCthldPredictor;
use opprentice_learn::metrics::PrPoint;
use proptest::prelude::*;

fn curve_strategy() -> impl Strategy<Value = Vec<PrPoint>> {
    prop::collection::vec((0.0f64..1.0, 0.01f64..=1.0), 1..40).prop_map(|mut raw| {
        // Build a valid curve: thresholds strictly descending, recall
        // non-decreasing.
        raw.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        raw.dedup_by(|a, b| a.0 == b.0);
        let n = raw.len();
        raw.into_iter()
            .enumerate()
            .map(|(i, (t, p))| PrPoint {
                threshold: t,
                recall: (i + 1) as f64 / n as f64,
                precision: p,
            })
            .collect()
    })
}

proptest! {
    /// PC-Score is the F-Score plus exactly 0 or 1.
    #[test]
    fn pc_score_is_f_plus_incentive(r in 0.0f64..=1.0, p in 0.0f64..=1.0) {
        let pref = Preference::moderate();
        let f = opprentice_learn::metrics::f_score(r, p);
        let pc = pc_score(r, p, &pref);
        let bonus = pc - f;
        prop_assert!((bonus - 0.0).abs() < 1e-12 || (bonus - 1.0).abs() < 1e-12);
        prop_assert_eq!((bonus - 1.0).abs() < 1e-12, pref.satisfied_by(r, p));
    }

    /// The PC-Score selection picks an in-box point whenever one exists.
    #[test]
    fn pc_score_selection_finds_the_box(curve in curve_strategy(), rr in 0.1f64..0.9, pp in 0.1f64..0.9) {
        let pref = Preference { recall: rr, precision: pp };
        let chosen = select_operating_point(&curve, CthldMetric::PcScore(pref)).unwrap();
        let box_exists = curve.iter().any(|p| pref.satisfied_by(p.recall, p.precision));
        if box_exists {
            prop_assert!(pref.satisfied_by(chosen.recall, chosen.precision),
                "box exists but chosen {chosen:?}");
        }
    }

    /// Every selection metric returns a point that is on the curve.
    #[test]
    fn selections_come_from_the_curve(curve in curve_strategy()) {
        for metric in [
            CthldMetric::FScore,
            CthldMetric::Sd11,
            CthldMetric::PcScore(Preference::moderate()),
        ] {
            let p = select_operating_point(&curve, metric).unwrap();
            prop_assert!(curve.contains(&p), "{metric:?} invented a point");
        }
    }

    /// The duration filter preserves stream length and never passes a run
    /// shorter than the minimum.
    #[test]
    fn duration_filter_invariants(verdicts in prop::collection::vec(any::<bool>(), 0..200), min in 1usize..6) {
        let out = DurationFilter::apply(min, &verdicts);
        prop_assert_eq!(out.len(), verdicts.len());
        // No surviving anomaly run is shorter than min.
        let mut run = 0usize;
        for (i, &v) in out.iter().enumerate() {
            if v {
                run += 1;
            } else {
                prop_assert!(run == 0 || run >= min, "short run ending at {i}");
                run = 0;
            }
            // The filter can only remove detections, never add them.
            prop_assert!(!v || verdicts[i], "filter invented an anomaly at {i}");
        }
        prop_assert!(run == 0 || run >= min);
    }

    /// Alerts partition the anomalous points exactly.
    #[test]
    fn alerts_cover_anomalous_points(probs in prop::collection::vec(prop::option::of(0.0f64..1.0), 0..150)) {
        let cthld = 0.5;
        let alerts = group_alerts(&probs, cthld);
        let mut covered = vec![false; probs.len()];
        for a in &alerts {
            prop_assert!(a.peak_probability >= cthld);
            for i in a.window.start..a.window.end {
                prop_assert!(probs[i].is_some_and(|p| p >= cthld), "alert covers normal point {i}");
                covered[i] = true;
            }
        }
        for (i, p) in probs.iter().enumerate() {
            if p.is_some_and(|p| p >= cthld) {
                prop_assert!(covered[i], "anomalous point {i} not alerted");
            }
        }
    }

    /// EWMA predictions always stay inside [0, 1] and converge to a
    /// constant input.
    #[test]
    fn ewma_predictor_bounds(updates in prop::collection::vec(0.0f64..=1.0, 1..50), alpha in 0.01f64..=1.0) {
        let mut p = EwmaCthldPredictor::new(alpha);
        for &u in &updates {
            let next = p.update(u);
            prop_assert!((0.0..=1.0).contains(&next));
        }
        // Converge on repetition (rate depends on alpha).
        for _ in 0..2000 {
            p.update(0.7);
        }
        prop_assert!((p.predict().unwrap() - 0.7).abs() < 1e-3);
    }

    /// Moving-window metrics always produce recall/precision in [0, 1] and
    /// at most one point per step position.
    #[test]
    fn moving_window_bounds(
        n in 10usize..120,
        window in 2usize..20,
        step in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let scores: Vec<Option<f64>> = (0..n).map(|_| (next() > 0.1).then(&mut next)).collect();
        let truth: Vec<bool> = (0..n).map(|_| next() < 0.2).collect();
        let cthlds = vec![0.5; n];
        let points = moving_window_metrics(&scores, &cthlds, &truth, window.min(n), step);
        for p in &points {
            prop_assert!((0.0..=1.0).contains(&p.recall));
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!(p.start + window.min(n) <= n);
        }
    }
}

proptest! {
    /// The session-snapshot decoder is total: arbitrary bytes never panic.
    /// Crash recovery reads snapshot files that may be torn or corrupted,
    /// so decoding must fail as a value, not a process abort.
    #[test]
    fn snapshot_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..800)) {
        let _ = opprentice::SessionSnapshot::from_bytes(&bytes);
    }

    /// Same, with a valid magic + version prefix so the fuzz bytes reach
    /// the field decoding paths instead of dying at the header.
    #[test]
    fn snapshot_decoder_never_panics_past_header(
        mut bytes in prop::collection::vec(any::<u8>(), 6..800),
    ) {
        bytes[..4].copy_from_slice(b"OPRF");
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        let _ = opprentice::SessionSnapshot::from_bytes(&bytes);
    }
}
