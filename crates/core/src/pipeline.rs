//! The deployable Opprentice pipeline (Fig. 3): ingest labeled history,
//! retrain periodically, detect incoming points online.
//!
//! From the operators' view there are exactly two interactions (§4.1):
//! specify an accuracy preference once, and label anomalies periodically.
//! Everything else — feature extraction by the 133 detector configurations,
//! random-forest training, cThld selection and prediction — happens inside
//! this type.

use crate::cthld::{best_cthld, Preference};
use crate::error::PipelineError;
use crate::features::{FeatureMatrix, OnlineExtractor};
use crate::predictor::{five_fold_cthld, EwmaCthldPredictor};
use opprentice_learn::metrics::pr_curve;
use opprentice_learn::{Classifier, CompiledForest, RandomForest, RandomForestParams};
use opprentice_timeseries::{Labels, TimeSeries};
use std::time::Instant;

/// Points per chunk when replaying history through the batch extractor.
const HISTORY_CHUNK: usize = 256;

/// Configuration of an [`Opprentice`] instance.
#[derive(Debug, Clone)]
pub struct OpprenticeConfig {
    /// The operators' accuracy preference ("recall ≥ R and precision ≥ P").
    pub preference: Preference,
    /// Random-forest hyperparameters.
    pub forest: RandomForestParams,
    /// Smoothing constant of the EWMA cThld predictor (0.8 in the paper).
    pub cthld_alpha: f64,
    /// cThld used before any prediction exists (the forest default, 0.5).
    pub fallback_cthld: f64,
}

impl Default for OpprenticeConfig {
    fn default() -> Self {
        Self {
            preference: Preference::moderate(),
            forest: RandomForestParams::default(),
            cthld_alpha: 0.8,
            fallback_cthld: 0.5,
        }
    }
}

/// The verdict for one incoming point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Anomaly probability from the random forest (vote fraction).
    pub probability: f64,
    /// The cThld in effect when the point was classified.
    pub cthld: f64,
    /// `probability >= cthld`.
    pub is_anomaly: bool,
}

/// The operators' apprentice: the end-to-end anomaly detection pipeline.
pub struct Opprentice {
    config: OpprenticeConfig,
    interval: u32,
    extractor: OnlineExtractor,
    matrix: FeatureMatrix,
    truth: Labels,
    forest: Option<RandomForest>,
    /// The forest flattened for the serving hot path — rebuilt whenever
    /// `forest` changes, bit-identical to it in every prediction.
    compiled: Option<CompiledForest>,
    predictor: EwmaCthldPredictor,
    /// Scratch row for online prediction (severities with `None` → 0.0),
    /// reused across points so the hot path allocates nothing.
    feat_buf: Vec<f64>,
    /// Cumulative wall-clock nanoseconds spent in feature extraction.
    extract_ns: u64,
    /// Cumulative wall-clock nanoseconds spent scoring (matrix append +
    /// forest prediction).
    infer_ns: u64,
}

impl Opprentice {
    /// Creates a fresh pipeline for a KPI sampled every `interval` seconds.
    pub fn new(interval: u32, config: OpprenticeConfig) -> Self {
        let extractor = OnlineExtractor::new(interval);
        let matrix = FeatureMatrix::new(extractor.labels());
        let predictor = EwmaCthldPredictor::new(config.cthld_alpha);
        Self {
            config,
            interval,
            extractor,
            matrix,
            truth: Labels::all_normal(0),
            forest: None,
            compiled: None,
            predictor,
            feat_buf: Vec::new(),
            extract_ns: 0,
            infer_ns: 0,
        }
    }

    /// Number of points observed so far.
    pub fn observed_len(&self) -> usize {
        self.matrix.len()
    }

    /// Number of points with operator labels so far.
    pub fn labeled_len(&self) -> usize {
        self.truth.len()
    }

    /// The cThld currently in effect.
    pub fn current_cthld(&self) -> f64 {
        self.predictor
            .predict()
            .unwrap_or(self.config.fallback_cthld)
    }

    /// `true` once a classifier has been trained.
    pub fn is_trained(&self) -> bool {
        self.forest.is_some()
    }

    /// The configuration the pipeline was created with.
    pub fn config(&self) -> &OpprenticeConfig {
        &self.config
    }

    /// The KPI sampling interval in seconds.
    pub fn interval(&self) -> u32 {
        self.interval
    }

    /// Cumulative wall-clock microseconds spent extracting features over
    /// the pipeline's lifetime ([`Opprentice::observe`] and
    /// [`Opprentice::observe_batch`]).
    pub fn extract_us(&self) -> u64 {
        self.extract_ns / 1_000
    }

    /// Cumulative wall-clock microseconds spent scoring (matrix append +
    /// forest prediction) over the pipeline's lifetime.
    pub fn infer_us(&self) -> u64 {
        self.infer_ns / 1_000
    }

    /// The operator labels accumulated so far.
    pub fn labels(&self) -> &Labels {
        &self.truth
    }

    /// The trained classifier, if any.
    pub fn forest(&self) -> Option<&RandomForest> {
        self.forest.as_ref()
    }

    /// The compiled (serving-path) forest, if trained — predictions from
    /// it are bit-identical to [`Opprentice::forest`]'s tree walk.
    pub fn compiled_forest(&self) -> Option<&CompiledForest> {
        self.compiled.as_ref()
    }

    /// The raw EWMA prediction state (`None` before initialization) —
    /// exposed for snapshotting; [`Opprentice::current_cthld`] is the
    /// operational view.
    pub fn predicted_cthld(&self) -> Option<f64> {
        self.predictor.predict()
    }

    /// Installs externally restored trained state (a decoded snapshot):
    /// the classifier and the EWMA prediction. Observation and label state
    /// are *not* touched — the caller rebuilds those by replaying the
    /// write-ahead log, which is what keeps restored sessions scoring
    /// identically to uninterrupted ones.
    pub fn restore_trained_state(&mut self, forest: Option<RandomForest>, prediction: Option<f64>) {
        self.compiled = forest.as_ref().map(RandomForest::compile);
        self.forest = forest;
        match prediction {
            Some(c) => self.predictor.initialize(c),
            None => self.predictor = EwmaCthldPredictor::new(self.config.cthld_alpha),
        }
    }

    /// Replays an already-labeled historical series through the detectors —
    /// the initial setup step ("operators … label anomalies in the
    /// historical data at the beginning", §4.1).
    ///
    /// # Errors
    ///
    /// Fails without modifying the pipeline if called after points have
    /// been observed, if the series interval differs, or if labels and
    /// series lengths differ.
    pub fn ingest_history(
        &mut self,
        series: &TimeSeries,
        labels: &Labels,
    ) -> Result<(), PipelineError> {
        if !self.matrix.is_empty() {
            return Err(PipelineError::HistoryAfterObservations {
                observed: self.matrix.len(),
            });
        }
        if series.interval() != self.interval {
            return Err(PipelineError::IntervalMismatch {
                expected: self.interval,
                got: series.interval(),
            });
        }
        if series.len() != labels.len() {
            return Err(PipelineError::LengthMismatch {
                series: series.len(),
                labels: labels.len(),
            });
        }
        let m = self.extractor.n_features();
        let mut ts_buf = Vec::with_capacity(HISTORY_CHUNK);
        let mut val_buf = Vec::with_capacity(HISTORY_CHUNK);
        let mut i = 0;
        while i < series.len() {
            let end = (i + HISTORY_CHUNK).min(series.len());
            ts_buf.clear();
            val_buf.clear();
            for j in i..end {
                ts_buf.push(series.timestamp_at(j));
                val_buf.push(series.get(j));
            }
            let t0 = Instant::now();
            let rows = self.extractor.observe_batch(&ts_buf, &val_buf);
            self.extract_ns += t0.elapsed().as_nanos() as u64;
            for (k, v) in val_buf.iter().enumerate() {
                self.matrix.push_row(&rows[k * m..(k + 1) * m], v.is_some());
            }
            i = end;
        }
        self.truth = labels.clone();
        Ok(())
    }

    /// Feeds one incoming point; returns the verdict (or `None` when no
    /// classifier is trained yet or the point is missing).
    ///
    /// This is the serving hot path: the severity row goes straight into
    /// the matrix and a reused scratch buffer (no per-point allocation),
    /// and the prediction comes from the compiled forest.
    pub fn observe(&mut self, timestamp: i64, value: Option<f64>) -> Option<Detection> {
        let t0 = Instant::now();
        let row = self.extractor.observe(timestamp, value);
        self.extract_ns += t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        self.matrix.push_row(row, value.is_some());
        self.feat_buf.clear();
        self.feat_buf.extend(row.iter().map(|s| s.unwrap_or(0.0)));
        let verdict = (|| {
            value?;
            let compiled = self.compiled.as_ref()?;
            let probability = compiled.predict(&self.feat_buf);
            let cthld = self
                .predictor
                .predict()
                .unwrap_or(self.config.fallback_cthld);
            Some(Detection {
                probability,
                cthld,
                is_anomaly: probability >= cthld,
            })
        })();
        self.infer_ns += t1.elapsed().as_nanos() as u64;
        verdict
    }

    /// Feeds a run of consecutive points starting at `start` (each
    /// subsequent point one interval later); returns one verdict slot per
    /// point. Verdicts are bit-identical to calling [`Opprentice::observe`]
    /// once per point — the batch path only shards the 133 detector
    /// configurations across a worker pool.
    pub fn observe_batch(&mut self, start: i64, values: &[Option<f64>]) -> Vec<Option<Detection>> {
        let m = self.extractor.n_features();
        let step = i64::from(self.interval);
        let timestamps: Vec<i64> = (0..values.len() as i64).map(|i| start + i * step).collect();

        let t0 = Instant::now();
        let rows = self.extractor.observe_batch(&timestamps, values);
        self.extract_ns += t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let cthld = self
            .predictor
            .predict()
            .unwrap_or(self.config.fallback_cthld);
        let compiled = self.compiled.as_ref();
        let mut out = Vec::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            let row = &rows[i * m..(i + 1) * m];
            self.matrix.push_row(row, v.is_some());
            self.feat_buf.clear();
            self.feat_buf.extend(row.iter().map(|s| s.unwrap_or(0.0)));
            out.push(match (v, compiled) {
                (Some(_), Some(c)) => {
                    let probability = c.predict(&self.feat_buf);
                    Some(Detection {
                        probability,
                        cthld,
                        is_anomaly: probability >= cthld,
                    })
                }
                _ => None,
            });
        }
        self.infer_ns += t1.elapsed().as_nanos() as u64;
        out
    }

    /// Appends operator labels for the oldest `labels.len()` unlabeled
    /// points — the periodic (e.g. weekly) labeling session. "All the data
    /// are labeled only once" (§4.1).
    ///
    /// # Errors
    ///
    /// Fails without modifying the pipeline if more labels arrive than
    /// there are unlabeled points.
    pub fn ingest_labels(&mut self, labels: &Labels) -> Result<(), PipelineError> {
        if self.truth.len() + labels.len() > self.matrix.len() {
            return Err(PipelineError::LabelsBeyondData {
                observed: self.matrix.len(),
                labeled: self.truth.len(),
                incoming: labels.len(),
            });
        }
        for i in 0..labels.len() {
            self.truth.push(labels.is_anomaly(i));
        }
        Ok(())
    }

    /// Incrementally retrains the classifier on all labeled data and
    /// refreshes the cThld prediction (§4.5.2):
    ///
    /// 1. the previous classifier (if any) is scored on the latest labeled
    ///    week to find that week's *best* cThld, which updates the EWMA
    ///    prediction;
    /// 2. a new forest is trained on every labeled, usable point;
    /// 3. on the very first training round, the prediction is initialized
    ///    by 5-fold cross-validation.
    ///
    /// Returns `false` when there is not yet enough labeled data (no
    /// anomalous sample at all).
    pub fn retrain(&mut self) -> bool {
        let labeled = self.truth.len();
        let ppw = (7 * 86_400 / i64::from(self.interval)) as usize;

        // Step 1: harvest the best cThld of the latest labeled week.
        if let Some(old) = &self.forest {
            let week_start = labeled.saturating_sub(ppw);
            let scores: Vec<Option<f64>> = (week_start..labeled)
                .map(|i| self.matrix.usable(i).then(|| old.score(self.matrix.row(i))))
                .collect();
            let flags = &self.truth.flags()[week_start..labeled];
            let curve = pr_curve(&scores, flags);
            if let Some(best) = best_cthld(&curve, &self.config.preference) {
                self.predictor.update(best);
            }
        }

        // Step 2: retrain on everything labeled.
        let (ds, _) = self.matrix.dataset(&self.truth, 0..labeled);
        if ds.is_empty() || ds.positives() == 0 {
            return false;
        }
        let mut forest = RandomForest::new(self.config.forest.clone());
        forest.fit(&ds);

        // Step 3: initialize the prediction on the first round.
        if self.predictor.predict().is_none() {
            let c = five_fold_cthld(&ds, &self.config.preference, &self.config.forest);
            self.predictor.initialize(c);
        }
        // Compile once per retrain; every online prediction until the next
        // round is served from the flattened arena.
        self.compiled = Some(forest.compile());
        self.forest = Some(forest);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERVAL: u32 = 3600;

    /// Builds an hourly KPI with a daily pattern and labeled spikes.
    fn labeled_history(days: usize) -> (TimeSeries, Labels) {
        let n = days * 24;
        let mut series = TimeSeries::new(0, INTERVAL);
        let mut labels = Labels::all_normal(0);
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            // A 2-point spike every ~2.6 days.
            let anomalous = i % 63 == 50 || i % 63 == 51;
            series.push(if anomalous { base + 120.0 } else { base });
            labels.push(anomalous);
        }
        (series, labels)
    }

    fn small_config() -> OpprenticeConfig {
        OpprenticeConfig {
            forest: RandomForestParams {
                n_trees: 12,
                seed: 5,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn untrained_pipeline_returns_no_verdicts() {
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(opp.observe(0, Some(100.0)), None);
        assert!(!opp.is_trained());
    }

    #[test]
    fn trains_on_history_and_flags_spikes() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());
        assert!(opp.is_trained());

        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        // A normal point scores low…
        let normal = opp.observe(t0, Some(100.0)).unwrap();
        // …and a huge spike scores high.
        let spike = opp.observe(t0 + i64::from(INTERVAL), Some(400.0)).unwrap();
        assert!(
            spike.probability > normal.probability,
            "{spike:?} vs {normal:?}"
        );
        assert!(spike.is_anomaly);
    }

    #[test]
    fn missing_points_get_no_verdict_but_are_recorded() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        opp.retrain();
        let before = opp.observed_len();
        assert_eq!(opp.observe(0, None), None);
        assert_eq!(opp.observed_len(), before + 1);
    }

    #[test]
    fn weekly_label_and_retrain_cycle() {
        let (series, labels) = labeled_history(21);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());

        // A new week arrives unlabeled.
        let (new_week, new_labels) = labeled_history(28);
        let start = series.len();
        for i in start..new_week.len() {
            let _ = opp.observe(new_week.timestamp_at(i), new_week.get(i));
        }
        assert_eq!(opp.observed_len(), new_week.len());
        assert_eq!(opp.labeled_len(), start);

        // The operator labels it; retraining folds it in.
        opp.ingest_labels(&new_labels.slice(start..new_week.len()))
            .unwrap();
        assert_eq!(opp.labeled_len(), new_week.len());
        assert!(opp.retrain());
        // cThld prediction exists and is in range.
        let c = opp.current_cthld();
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn retrain_without_positive_labels_reports_failure() {
        let mut series = TimeSeries::new(0, INTERVAL);
        for i in 0..200 {
            series.push(100.0 + (i % 24) as f64);
        }
        let labels = Labels::all_normal(200);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(!opp.retrain());
        assert!(!opp.is_trained());
    }

    #[test]
    fn over_labeling_rejected() {
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(
            opp.ingest_labels(&Labels::all_normal(5)),
            Err(PipelineError::LabelsBeyondData {
                observed: 0,
                labeled: 0,
                incoming: 5
            })
        );
        // The rejected batch left no trace.
        assert_eq!(opp.labeled_len(), 0);
    }

    #[test]
    fn interval_mismatch_rejected() {
        let series = TimeSeries::from_values(0, 60, vec![1.0; 10]);
        let labels = Labels::all_normal(10);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(
            opp.ingest_history(&series, &labels),
            Err(PipelineError::IntervalMismatch {
                expected: INTERVAL,
                got: 60
            })
        );
        assert_eq!(opp.observed_len(), 0);
    }

    #[test]
    fn history_after_observations_rejected() {
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(opp.observe(0, Some(1.0)), None);
        let series = TimeSeries::from_values(0, INTERVAL, vec![1.0; 10]);
        assert_eq!(
            opp.ingest_history(&series, &Labels::all_normal(10)),
            Err(PipelineError::HistoryAfterObservations { observed: 1 })
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let series = TimeSeries::from_values(0, INTERVAL, vec![1.0; 10]);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(
            opp.ingest_history(&series, &Labels::all_normal(9)),
            Err(PipelineError::LengthMismatch {
                series: 10,
                labels: 9
            })
        );
    }

    #[test]
    fn observe_batch_matches_streaming_bit_for_bit() {
        let (series, labels) = labeled_history(28);
        let mut batched = Opprentice::new(INTERVAL, small_config());
        let mut streamed = Opprentice::new(INTERVAL, small_config());
        batched.ingest_history(&series, &labels).unwrap();
        streamed.ingest_history(&series, &labels).unwrap();
        assert!(batched.retrain());
        assert!(streamed.retrain());

        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        let vals: Vec<Option<f64>> = (0..50)
            .map(|i| {
                if i % 9 == 4 {
                    None
                } else {
                    let spike = if i == 30 { 250.0 } else { 0.0 };
                    Some(100.0 + (i % 24) as f64 + spike)
                }
            })
            .collect();
        let out = batched.observe_batch(t0, &vals);
        assert_eq!(out.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            let single = streamed.observe(t0 + i as i64 * i64::from(INTERVAL), *v);
            assert_eq!(out[i], single, "point {i}");
        }
        assert_eq!(batched.observed_len(), streamed.observed_len());
        assert!(batched.extract_us() > 0, "extraction timer never advanced");
        assert!(batched.infer_us() > 0, "inference timer never advanced");
    }

    #[test]
    fn restore_trained_state_round_trips_through_accessors() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());
        let prediction = opp.predicted_cthld();
        assert!(prediction.is_some());

        // A fresh pipeline fed the same observations (but never retrained)
        // plus the restored trained state must score identically.
        let mut fresh = Opprentice::new(INTERVAL, small_config());
        fresh.ingest_history(&series, &labels).unwrap();
        let bytes = opp.forest().unwrap().to_bytes();
        let forest = RandomForest::from_bytes(&bytes).unwrap();
        fresh.restore_trained_state(Some(forest), prediction);
        assert!(fresh.is_trained());

        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        for (i, v) in [100.0, 400.0, 130.0].into_iter().enumerate() {
            let ts = t0 + i as i64 * i64::from(INTERVAL);
            assert_eq!(opp.observe(ts, Some(v)), fresh.observe(ts, Some(v)));
        }
    }
}
