//! The deployable Opprentice pipeline (Fig. 3): ingest labeled history,
//! retrain periodically, detect incoming points online.
//!
//! From the operators' view there are exactly two interactions (§4.1):
//! specify an accuracy preference once, and label anomalies periodically.
//! Everything else — feature extraction by the 133 detector configurations,
//! random-forest training, cThld selection and prediction — happens inside
//! this type.

use crate::cthld::{best_cthld, Preference};
use crate::error::PipelineError;
use crate::features::{FeatureMatrix, OnlineExtractor};
use crate::predictor::{five_fold_cthld, EwmaCthldPredictor};
use opprentice_learn::metrics::pr_curve;
use opprentice_learn::{Classifier, CompiledForest, RandomForest, RandomForestParams};
use opprentice_timeseries::{Labels, TimeSeries};
use std::thread::JoinHandle;
use std::time::Instant;

/// Points per chunk when replaying history through the batch extractor.
const HISTORY_CHUNK: usize = 256;

/// Configuration of an [`Opprentice`] instance.
#[derive(Debug, Clone)]
pub struct OpprenticeConfig {
    /// The operators' accuracy preference ("recall ≥ R and precision ≥ P").
    pub preference: Preference,
    /// Random-forest hyperparameters.
    pub forest: RandomForestParams,
    /// Smoothing constant of the EWMA cThld predictor (0.8 in the paper).
    pub cthld_alpha: f64,
    /// cThld used before any prediction exists (the forest default, 0.5).
    pub fallback_cthld: f64,
}

impl Default for OpprenticeConfig {
    fn default() -> Self {
        Self {
            preference: Preference::moderate(),
            forest: RandomForestParams::default(),
            cthld_alpha: 0.8,
            fallback_cthld: 0.5,
        }
    }
}

/// The verdict for one incoming point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Anomaly probability from the random forest (vote fraction).
    pub probability: f64,
    /// The cThld in effect when the point was classified.
    pub cthld: f64,
    /// `probability >= cthld`.
    pub is_anomaly: bool,
}

/// Why [`Opprentice::start_retrain`] refused to start a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainError {
    /// A background retrain is already in flight; poll or wait for it.
    AlreadyTraining,
    /// No labeled anomalous sample exists yet — nothing to learn from.
    NoLabeledAnomaly,
}

impl std::fmt::Display for RetrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrainError::AlreadyTraining => write!(f, "retrain already in progress"),
            RetrainError::NoLabeledAnomaly => write!(f, "need at least one labeled anomaly"),
        }
    }
}

impl std::error::Error for RetrainError {}

/// What a completed retrain installed — returned by
/// [`Opprentice::poll_retrain`] / [`Opprentice::wait_retrain`] when the
/// model swap lands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingReport {
    /// The job id [`Opprentice::start_retrain`] handed out.
    pub job_id: u64,
    /// The model version now serving (increments by one per swap).
    pub model_version: u64,
    /// The cThld in effect after the swap.
    pub cthld: f64,
    /// Wall-clock microseconds the job spent training.
    pub train_us: u64,
}

/// An in-flight background training job.
struct TrainingJob {
    id: u64,
    handle: JoinHandle<TrainOutcome>,
}

/// Everything a training job computes off-thread; installed atomically
/// (from the observer's point of view) by the poll that lands it.
struct TrainOutcome {
    /// Best cThld of the latest labeled week under the *old* model.
    best: Option<f64>,
    /// 5-fold initialization value, computed only when the predictor would
    /// otherwise still be uninitialized after applying `best`.
    init: Option<f64>,
    forest: RandomForest,
    compiled: CompiledForest,
    train_ns: u64,
}

/// The operators' apprentice: the end-to-end anomaly detection pipeline.
pub struct Opprentice {
    config: OpprenticeConfig,
    interval: u32,
    extractor: OnlineExtractor,
    matrix: FeatureMatrix,
    truth: Labels,
    forest: Option<RandomForest>,
    /// The forest flattened for the serving hot path — rebuilt whenever
    /// `forest` changes, bit-identical to it in every prediction.
    compiled: Option<CompiledForest>,
    predictor: EwmaCthldPredictor,
    /// Scratch row for online prediction (severities with `None` → 0.0),
    /// reused across points so the hot path allocates nothing.
    feat_buf: Vec<f64>,
    /// Cumulative wall-clock nanoseconds spent in feature extraction.
    extract_ns: u64,
    /// Cumulative wall-clock nanoseconds spent scoring (matrix append +
    /// forest prediction).
    infer_ns: u64,
    /// Cumulative wall-clock nanoseconds spent training (sync and
    /// background jobs, measured inside the job thread).
    train_ns: u64,
    /// Counts installed models: 0 = untrained, +1 per completed retrain
    /// (or set directly when a snapshot is restored).
    model_version: u64,
    /// Monotonic job-id source for [`Opprentice::start_retrain`].
    next_job_id: u64,
    /// The in-flight background training job, if any. Dropping the
    /// pipeline abandons the job: its thread finishes detached and the
    /// result is discarded, which is exactly the crash semantics the
    /// serving layer wants (a swap only exists once it was polled in).
    job: Option<TrainingJob>,
}

impl Opprentice {
    /// Creates a fresh pipeline for a KPI sampled every `interval` seconds.
    pub fn new(interval: u32, config: OpprenticeConfig) -> Self {
        let extractor = OnlineExtractor::new(interval);
        let matrix = FeatureMatrix::new(extractor.labels());
        let predictor = EwmaCthldPredictor::new(config.cthld_alpha);
        Self {
            config,
            interval,
            extractor,
            matrix,
            truth: Labels::all_normal(0),
            forest: None,
            compiled: None,
            predictor,
            feat_buf: Vec::new(),
            extract_ns: 0,
            infer_ns: 0,
            train_ns: 0,
            model_version: 0,
            next_job_id: 0,
            job: None,
        }
    }

    /// Number of points observed so far.
    pub fn observed_len(&self) -> usize {
        self.matrix.len()
    }

    /// Number of points with operator labels so far.
    pub fn labeled_len(&self) -> usize {
        self.truth.len()
    }

    /// The cThld currently in effect.
    pub fn current_cthld(&self) -> f64 {
        self.predictor
            .predict()
            .unwrap_or(self.config.fallback_cthld)
    }

    /// `true` once a classifier has been trained.
    pub fn is_trained(&self) -> bool {
        self.forest.is_some()
    }

    /// The configuration the pipeline was created with.
    pub fn config(&self) -> &OpprenticeConfig {
        &self.config
    }

    /// The KPI sampling interval in seconds.
    pub fn interval(&self) -> u32 {
        self.interval
    }

    /// Cumulative wall-clock microseconds spent extracting features over
    /// the pipeline's lifetime ([`Opprentice::observe`] and
    /// [`Opprentice::observe_batch`]).
    ///
    /// This is the *caller-experienced* latency of extraction calls: under
    /// the fused batch path the family kernels run concurrently on the
    /// worker pool, so this is less than the summed kernel time. Per-family
    /// CPU attribution lives in [`Opprentice::family_stats`].
    pub fn extract_us(&self) -> u64 {
        self.extract_ns / 1_000
    }

    /// Measured per-family extraction cost (kernel CPU time over the
    /// batched path), aggregated across each family's fused units — see
    /// [`crate::features::FamilyStat`].
    pub fn family_stats(&self) -> Vec<crate::features::FamilyStat> {
        self.extractor.family_stats()
    }

    /// Cumulative wall-clock microseconds spent scoring (matrix append +
    /// forest prediction) over the pipeline's lifetime.
    pub fn infer_us(&self) -> u64 {
        self.infer_ns / 1_000
    }

    /// Cumulative wall-clock microseconds spent training over the
    /// pipeline's lifetime (counted when a job lands, sync or background).
    pub fn train_us(&self) -> u64 {
        self.train_ns / 1_000
    }

    /// The serving model's version: 0 until the first training round, then
    /// incremented by one on every installed retrain. A restored snapshot
    /// carries its version, so a recovered session continues the count.
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// `true` while a background retrain job is in flight (submitted and
    /// not yet polled in — even if its thread has already finished).
    pub fn training_in_flight(&self) -> bool {
        self.job.is_some()
    }

    /// The operator labels accumulated so far.
    pub fn labels(&self) -> &Labels {
        &self.truth
    }

    /// The trained classifier, if any.
    pub fn forest(&self) -> Option<&RandomForest> {
        self.forest.as_ref()
    }

    /// The compiled (serving-path) forest, if trained — predictions from
    /// it are bit-identical to [`Opprentice::forest`]'s tree walk.
    pub fn compiled_forest(&self) -> Option<&CompiledForest> {
        self.compiled.as_ref()
    }

    /// The raw EWMA prediction state (`None` before initialization) —
    /// exposed for snapshotting; [`Opprentice::current_cthld`] is the
    /// operational view.
    pub fn predicted_cthld(&self) -> Option<f64> {
        self.predictor.predict()
    }

    /// Installs externally restored trained state (a decoded snapshot):
    /// the classifier, the EWMA prediction, and the model version the
    /// snapshot was taken at. Observation and label state are *not*
    /// touched — the caller rebuilds those by replaying the write-ahead
    /// log, which is what keeps restored sessions scoring identically to
    /// uninterrupted ones.
    pub fn restore_trained_state(
        &mut self,
        forest: Option<RandomForest>,
        prediction: Option<f64>,
        model_version: u64,
    ) {
        self.compiled = forest.as_ref().map(RandomForest::compile);
        self.forest = forest;
        self.model_version = model_version;
        match prediction {
            Some(c) => self.predictor.initialize(c),
            None => self.predictor = EwmaCthldPredictor::new(self.config.cthld_alpha),
        }
    }

    /// Replays an already-labeled historical series through the detectors —
    /// the initial setup step ("operators … label anomalies in the
    /// historical data at the beginning", §4.1).
    ///
    /// # Errors
    ///
    /// Fails without modifying the pipeline if called after points have
    /// been observed, if the series interval differs, or if labels and
    /// series lengths differ.
    pub fn ingest_history(
        &mut self,
        series: &TimeSeries,
        labels: &Labels,
    ) -> Result<(), PipelineError> {
        if !self.matrix.is_empty() {
            return Err(PipelineError::HistoryAfterObservations {
                observed: self.matrix.len(),
            });
        }
        if series.interval() != self.interval {
            return Err(PipelineError::IntervalMismatch {
                expected: self.interval,
                got: series.interval(),
            });
        }
        if series.len() != labels.len() {
            return Err(PipelineError::LengthMismatch {
                series: series.len(),
                labels: labels.len(),
            });
        }
        let m = self.extractor.n_features();
        let mut ts_buf = Vec::with_capacity(HISTORY_CHUNK);
        let mut val_buf = Vec::with_capacity(HISTORY_CHUNK);
        let mut i = 0;
        while i < series.len() {
            let end = (i + HISTORY_CHUNK).min(series.len());
            ts_buf.clear();
            val_buf.clear();
            for j in i..end {
                ts_buf.push(series.timestamp_at(j));
                val_buf.push(series.get(j));
            }
            let t0 = Instant::now();
            let rows = self.extractor.observe_batch(&ts_buf, &val_buf);
            self.extract_ns += t0.elapsed().as_nanos() as u64;
            for (k, v) in val_buf.iter().enumerate() {
                self.matrix.push_row(&rows[k * m..(k + 1) * m], v.is_some());
            }
            i = end;
        }
        self.truth = labels.clone();
        Ok(())
    }

    /// Feeds one incoming point; returns the verdict (or `None` when no
    /// classifier is trained yet or the point is missing).
    ///
    /// This is the serving hot path: the severity row goes straight into
    /// the matrix and a reused scratch buffer (no per-point allocation),
    /// and the prediction comes from the compiled forest.
    pub fn observe(&mut self, timestamp: i64, value: Option<f64>) -> Option<Detection> {
        let t0 = Instant::now();
        let row = self.extractor.observe(timestamp, value);
        self.extract_ns += t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        self.matrix.push_row(row, value.is_some());
        self.feat_buf.clear();
        self.feat_buf.extend(row.iter().map(|s| s.unwrap_or(0.0)));
        let verdict = (|| {
            value?;
            let compiled = self.compiled.as_ref()?;
            let probability = compiled.predict(&self.feat_buf);
            let cthld = self
                .predictor
                .predict()
                .unwrap_or(self.config.fallback_cthld);
            Some(Detection {
                probability,
                cthld,
                is_anomaly: probability >= cthld,
            })
        })();
        self.infer_ns += t1.elapsed().as_nanos() as u64;
        verdict
    }

    /// Feeds a run of consecutive points starting at `start` (each
    /// subsequent point one interval later); returns one verdict slot per
    /// point. Verdicts are bit-identical to calling [`Opprentice::observe`]
    /// once per point — the batch path only shards the 133 detector
    /// configurations across a worker pool.
    pub fn observe_batch(&mut self, start: i64, values: &[Option<f64>]) -> Vec<Option<Detection>> {
        let m = self.extractor.n_features();
        let step = i64::from(self.interval);
        let timestamps: Vec<i64> = (0..values.len() as i64).map(|i| start + i * step).collect();

        let t0 = Instant::now();
        let rows = self.extractor.observe_batch(&timestamps, values);
        self.extract_ns += t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let cthld = self
            .predictor
            .predict()
            .unwrap_or(self.config.fallback_cthld);
        let compiled = self.compiled.as_ref();
        let mut out = Vec::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            let row = &rows[i * m..(i + 1) * m];
            self.matrix.push_row(row, v.is_some());
            self.feat_buf.clear();
            self.feat_buf.extend(row.iter().map(|s| s.unwrap_or(0.0)));
            out.push(match (v, compiled) {
                (Some(_), Some(c)) => {
                    let probability = c.predict(&self.feat_buf);
                    Some(Detection {
                        probability,
                        cthld,
                        is_anomaly: probability >= cthld,
                    })
                }
                _ => None,
            });
        }
        self.infer_ns += t1.elapsed().as_nanos() as u64;
        out
    }

    /// Appends operator labels for the oldest `labels.len()` unlabeled
    /// points — the periodic (e.g. weekly) labeling session. "All the data
    /// are labeled only once" (§4.1).
    ///
    /// # Errors
    ///
    /// Fails without modifying the pipeline if more labels arrive than
    /// there are unlabeled points.
    pub fn ingest_labels(&mut self, labels: &Labels) -> Result<(), PipelineError> {
        if self.truth.len() + labels.len() > self.matrix.len() {
            return Err(PipelineError::LabelsBeyondData {
                observed: self.matrix.len(),
                labeled: self.truth.len(),
                incoming: labels.len(),
            });
        }
        for i in 0..labels.len() {
            self.truth.push(labels.is_anomaly(i));
        }
        Ok(())
    }

    /// Incrementally retrains the classifier on all labeled data and
    /// refreshes the cThld prediction (§4.5.2):
    ///
    /// 1. the previous classifier (if any) is scored on the latest labeled
    ///    week to find that week's *best* cThld, which updates the EWMA
    ///    prediction;
    /// 2. a new forest is trained on every labeled, usable point;
    /// 3. on the very first training round, the prediction is initialized
    ///    by 5-fold cross-validation.
    ///
    /// This synchronous call is [`Opprentice::start_retrain`] +
    /// [`Opprentice::wait_retrain`] — the exact machinery the background
    /// path uses, so sync and async retraining are bit-identical by
    /// construction. An already in-flight background job is waited for (and
    /// installed) first.
    ///
    /// Returns `false` when there is not yet enough labeled data (no
    /// anomalous sample at all).
    pub fn retrain(&mut self) -> bool {
        self.wait_retrain();
        match self.start_retrain() {
            Ok(_) => self.wait_retrain().is_some(),
            Err(_) => false,
        }
    }

    /// Submits a background training job over a snapshot of the labeled
    /// data taken *now*; [`Opprentice::observe`] / [`Opprentice::observe_batch`]
    /// keep serving the current model (and cThld) until a later
    /// [`Opprentice::poll_retrain`] or [`Opprentice::wait_retrain`] installs
    /// the result. Returns the job id.
    ///
    /// Labels ingested after submission do not affect the job (it trains on
    /// the snapshot), and neither do new observations — which is what makes
    /// the swap well-defined: the trained model depends only on the labeled
    /// prefix at submission time.
    ///
    /// # Errors
    ///
    /// [`RetrainError::AlreadyTraining`] if a job is in flight;
    /// [`RetrainError::NoLabeledAnomaly`] if the labeled data holds no
    /// anomalous sample (the week's best-cThld harvest — step 1 — is still
    /// applied in that case, matching the synchronous semantics).
    pub fn start_retrain(&mut self) -> Result<u64, RetrainError> {
        if self.job.is_some() {
            return Err(RetrainError::AlreadyTraining);
        }
        let labeled = self.truth.len();
        let ppw = (7 * 86_400 / i64::from(self.interval)) as usize;
        let week_start = labeled.saturating_sub(ppw);
        let old = self.compiled.clone();

        let (ds, _) = self.matrix.dataset(&self.truth, 0..labeled);
        if ds.is_empty() || ds.positives() == 0 {
            // Nothing to train on; still harvest the week's best cThld so
            // the EWMA sees exactly what a synchronous round would apply.
            if let Some(best) = self.harvest_week(&old, week_start, labeled) {
                self.predictor.update(best);
            }
            return Err(RetrainError::NoLabeledAnomaly);
        }

        // Snapshot everything the job needs: the latest labeled week's
        // rows (for the step-1 harvest under the old model) and the full
        // labeled dataset. The old model is handed over as its compiled
        // form, whose predictions are bit-identical to the tree walk.
        let week_rows: Vec<Option<Vec<f64>>> = (week_start..labeled)
            .map(|i| self.matrix.usable(i).then(|| self.matrix.row(i).to_vec()))
            .collect();
        let week_flags: Vec<bool> = self.truth.flags()[week_start..labeled].to_vec();
        let preference = self.config.preference;
        let params = self.config.forest.clone();
        let has_prediction = self.predictor.predict().is_some();

        self.next_job_id += 1;
        let id = self.next_job_id;
        let handle = std::thread::Builder::new()
            .name(format!("retrain-{id}"))
            .spawn(move || {
                let t0 = Instant::now();
                let best = old.as_ref().and_then(|old| {
                    let scores: Vec<Option<f64>> = week_rows
                        .iter()
                        .map(|r| r.as_ref().map(|row| old.predict(row)))
                        .collect();
                    best_cthld(&pr_curve(&scores, &week_flags), &preference)
                });
                let mut forest = RandomForest::new(params.clone());
                forest.fit(&ds);
                // 5-fold initialization only when the predictor would still
                // be empty after applying `best` (the first-round case).
                let init = (!has_prediction && best.is_none())
                    .then(|| five_fold_cthld(&ds, &preference, &params));
                let compiled = forest.compile();
                TrainOutcome {
                    best,
                    init,
                    forest,
                    compiled,
                    train_ns: t0.elapsed().as_nanos() as u64,
                }
            })
            .expect("spawn retrain thread");
        self.job = Some(TrainingJob { id, handle });
        Ok(id)
    }

    /// Installs a finished background job if one is ready; non-blocking.
    /// Returns `None` while no job is in flight or the job is still
    /// training. The swap — forest, compiled forest, cThld prediction,
    /// model version — happens entirely inside this call, so observers
    /// before it see the old model and observers after it see the new one;
    /// there is no intermediate state.
    pub fn poll_retrain(&mut self) -> Option<TrainingReport> {
        if !self.job.as_ref()?.handle.is_finished() {
            return None;
        }
        self.land_job()
    }

    /// Blocks until the in-flight background job (if any) finishes, then
    /// installs it. Returns `None` when no job was in flight.
    pub fn wait_retrain(&mut self) -> Option<TrainingReport> {
        self.job.as_ref()?;
        self.land_job()
    }

    /// Joins the job thread and swaps its result in.
    fn land_job(&mut self) -> Option<TrainingReport> {
        let job = self.job.take()?;
        // A panicked trainer (out of memory, poisoned data) must not take
        // the serving model down with it: the old model keeps serving and
        // the job simply evaporates.
        let outcome = job.handle.join().ok()?;
        if let Some(best) = outcome.best {
            self.predictor.update(best);
        }
        if self.predictor.predict().is_none() {
            if let Some(init) = outcome.init {
                self.predictor.initialize(init);
            }
        }
        self.compiled = Some(outcome.compiled);
        self.forest = Some(outcome.forest);
        self.model_version += 1;
        self.train_ns += outcome.train_ns;
        Some(TrainingReport {
            job_id: job.id,
            model_version: self.model_version,
            cthld: self.current_cthld(),
            train_us: outcome.train_ns / 1_000,
        })
    }

    /// Step 1 of a retrain round, done synchronously: the best cThld of the
    /// latest labeled week under the (compiled) old model.
    fn harvest_week(
        &self,
        old: &Option<CompiledForest>,
        week_start: usize,
        labeled: usize,
    ) -> Option<f64> {
        let old = old.as_ref()?;
        let scores: Vec<Option<f64>> = (week_start..labeled)
            .map(|i| {
                self.matrix
                    .usable(i)
                    .then(|| old.predict(self.matrix.row(i)))
            })
            .collect();
        let flags = &self.truth.flags()[week_start..labeled];
        best_cthld(&pr_curve(&scores, flags), &self.config.preference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERVAL: u32 = 3600;

    /// Builds an hourly KPI with a daily pattern and labeled spikes.
    fn labeled_history(days: usize) -> (TimeSeries, Labels) {
        let n = days * 24;
        let mut series = TimeSeries::new(0, INTERVAL);
        let mut labels = Labels::all_normal(0);
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            // A 2-point spike every ~2.6 days.
            let anomalous = i % 63 == 50 || i % 63 == 51;
            series.push(if anomalous { base + 120.0 } else { base });
            labels.push(anomalous);
        }
        (series, labels)
    }

    fn small_config() -> OpprenticeConfig {
        OpprenticeConfig {
            forest: RandomForestParams {
                n_trees: 12,
                seed: 5,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn untrained_pipeline_returns_no_verdicts() {
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(opp.observe(0, Some(100.0)), None);
        assert!(!opp.is_trained());
    }

    #[test]
    fn trains_on_history_and_flags_spikes() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());
        assert!(opp.is_trained());

        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        // A normal point scores low…
        let normal = opp.observe(t0, Some(100.0)).unwrap();
        // …and a huge spike scores high.
        let spike = opp.observe(t0 + i64::from(INTERVAL), Some(400.0)).unwrap();
        assert!(
            spike.probability > normal.probability,
            "{spike:?} vs {normal:?}"
        );
        assert!(spike.is_anomaly);
    }

    #[test]
    fn missing_points_get_no_verdict_but_are_recorded() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        opp.retrain();
        let before = opp.observed_len();
        assert_eq!(opp.observe(0, None), None);
        assert_eq!(opp.observed_len(), before + 1);
    }

    #[test]
    fn weekly_label_and_retrain_cycle() {
        let (series, labels) = labeled_history(21);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());

        // A new week arrives unlabeled.
        let (new_week, new_labels) = labeled_history(28);
        let start = series.len();
        for i in start..new_week.len() {
            let _ = opp.observe(new_week.timestamp_at(i), new_week.get(i));
        }
        assert_eq!(opp.observed_len(), new_week.len());
        assert_eq!(opp.labeled_len(), start);

        // The operator labels it; retraining folds it in.
        opp.ingest_labels(&new_labels.slice(start..new_week.len()))
            .unwrap();
        assert_eq!(opp.labeled_len(), new_week.len());
        assert!(opp.retrain());
        // cThld prediction exists and is in range.
        let c = opp.current_cthld();
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn retrain_without_positive_labels_reports_failure() {
        let mut series = TimeSeries::new(0, INTERVAL);
        for i in 0..200 {
            series.push(100.0 + (i % 24) as f64);
        }
        let labels = Labels::all_normal(200);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(!opp.retrain());
        assert!(!opp.is_trained());
    }

    #[test]
    fn over_labeling_rejected() {
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(
            opp.ingest_labels(&Labels::all_normal(5)),
            Err(PipelineError::LabelsBeyondData {
                observed: 0,
                labeled: 0,
                incoming: 5
            })
        );
        // The rejected batch left no trace.
        assert_eq!(opp.labeled_len(), 0);
    }

    #[test]
    fn interval_mismatch_rejected() {
        let series = TimeSeries::from_values(0, 60, vec![1.0; 10]);
        let labels = Labels::all_normal(10);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(
            opp.ingest_history(&series, &labels),
            Err(PipelineError::IntervalMismatch {
                expected: INTERVAL,
                got: 60
            })
        );
        assert_eq!(opp.observed_len(), 0);
    }

    #[test]
    fn history_after_observations_rejected() {
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(opp.observe(0, Some(1.0)), None);
        let series = TimeSeries::from_values(0, INTERVAL, vec![1.0; 10]);
        assert_eq!(
            opp.ingest_history(&series, &Labels::all_normal(10)),
            Err(PipelineError::HistoryAfterObservations { observed: 1 })
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let series = TimeSeries::from_values(0, INTERVAL, vec![1.0; 10]);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        assert_eq!(
            opp.ingest_history(&series, &Labels::all_normal(9)),
            Err(PipelineError::LengthMismatch {
                series: 10,
                labels: 9
            })
        );
    }

    #[test]
    fn observe_batch_matches_streaming_bit_for_bit() {
        let (series, labels) = labeled_history(28);
        let mut batched = Opprentice::new(INTERVAL, small_config());
        let mut streamed = Opprentice::new(INTERVAL, small_config());
        batched.ingest_history(&series, &labels).unwrap();
        streamed.ingest_history(&series, &labels).unwrap();
        assert!(batched.retrain());
        assert!(streamed.retrain());

        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        let vals: Vec<Option<f64>> = (0..50)
            .map(|i| {
                if i % 9 == 4 {
                    None
                } else {
                    let spike = if i == 30 { 250.0 } else { 0.0 };
                    Some(100.0 + (i % 24) as f64 + spike)
                }
            })
            .collect();
        let out = batched.observe_batch(t0, &vals);
        assert_eq!(out.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            let single = streamed.observe(t0 + i as i64 * i64::from(INTERVAL), *v);
            assert_eq!(out[i], single, "point {i}");
        }
        assert_eq!(batched.observed_len(), streamed.observed_len());
        assert!(batched.extract_us() > 0, "extraction timer never advanced");
        assert!(batched.infer_us() > 0, "inference timer never advanced");
    }

    #[test]
    fn background_retrain_is_bit_identical_to_sync() {
        let (series, labels) = labeled_history(28);
        let mut sync = Opprentice::new(INTERVAL, small_config());
        let mut bg = Opprentice::new(INTERVAL, small_config());
        sync.ingest_history(&series, &labels).unwrap();
        bg.ingest_history(&series, &labels).unwrap();

        assert!(sync.retrain());
        let job = bg.start_retrain().unwrap();
        let report = bg.wait_retrain().unwrap();
        assert_eq!(report.job_id, job);
        assert_eq!(report.model_version, 1);
        assert_eq!(bg.model_version(), sync.model_version());
        assert_eq!(bg.predicted_cthld(), sync.predicted_cthld());
        assert_eq!(
            bg.forest().unwrap().to_bytes(),
            sync.forest().unwrap().to_bytes()
        );
        assert_eq!(bg.compiled_forest(), sync.compiled_forest());

        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        for (i, v) in [100.0, 400.0, 130.0, 85.0].into_iter().enumerate() {
            let ts = t0 + i as i64 * i64::from(INTERVAL);
            assert_eq!(sync.observe(ts, Some(v)), bg.observe(ts, Some(v)));
        }
    }

    #[test]
    fn observe_serves_the_old_model_until_the_swap_is_polled_in() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        let mut control = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        control.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());
        assert!(control.retrain());

        // Submit a second round in the background; until it is polled in,
        // verdicts must match a control that never retrained again — even
        // if the job's thread has long finished.
        opp.start_retrain().unwrap();
        assert!(opp.training_in_flight());
        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        for (i, v) in [100.0, 400.0, 130.0].into_iter().enumerate() {
            let ts = t0 + i as i64 * i64::from(INTERVAL);
            assert_eq!(opp.observe(ts, Some(v)), control.observe(ts, Some(v)));
        }
        assert_eq!(opp.model_version(), 1);

        let report = opp.wait_retrain().unwrap();
        assert_eq!(report.model_version, 2);
        assert_eq!(opp.model_version(), 2);
        assert!(opp.train_us() > 0);
    }

    #[test]
    fn second_submission_while_in_flight_is_rejected() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        opp.start_retrain().unwrap();
        assert_eq!(opp.start_retrain(), Err(RetrainError::AlreadyTraining));
        assert!(opp.training_in_flight());
        opp.wait_retrain().unwrap();
        assert!(!opp.training_in_flight());
    }

    #[test]
    fn start_retrain_without_positive_labels_errors() {
        let mut series = TimeSeries::new(0, INTERVAL);
        for i in 0..200 {
            series.push(100.0 + (i % 24) as f64);
        }
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &Labels::all_normal(200))
            .unwrap();
        assert_eq!(opp.start_retrain(), Err(RetrainError::NoLabeledAnomaly));
        assert!(!opp.training_in_flight());
        assert_eq!(opp.model_version(), 0);
    }

    #[test]
    fn dropping_a_pipeline_abandons_the_job() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        opp.start_retrain().unwrap();
        drop(opp); // must not deadlock or panic; the job thread detaches
    }

    #[test]
    fn restore_trained_state_round_trips_through_accessors() {
        let (series, labels) = labeled_history(28);
        let mut opp = Opprentice::new(INTERVAL, small_config());
        opp.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());
        let prediction = opp.predicted_cthld();
        assert!(prediction.is_some());

        // A fresh pipeline fed the same observations (but never retrained)
        // plus the restored trained state must score identically.
        let mut fresh = Opprentice::new(INTERVAL, small_config());
        fresh.ingest_history(&series, &labels).unwrap();
        let bytes = opp.forest().unwrap().to_bytes();
        let forest = RandomForest::from_bytes(&bytes).unwrap();
        fresh.restore_trained_state(Some(forest), prediction, opp.model_version());
        assert!(fresh.is_trained());
        assert_eq!(fresh.model_version(), opp.model_version());

        let t0 = series.timestamp_at(series.len() - 1) + i64::from(INTERVAL);
        for (i, v) in [100.0, 400.0, 130.0].into_iter().enumerate() {
            let ts = t0 + i as i64 * i64::from(INTERVAL);
            assert_eq!(opp.observe(ts, Some(v)), fresh.observe(ts, Some(v)));
        }
    }
}
