//! Detectors as feature extractors (§4.3).
//!
//! Every detector configuration is run over the KPI in parallel; each emits
//! one severity per point, forming the feature matrix ("the anomaly
//! severities measured by different detectors can naturally serve as the
//! features", §1). Warm-up and missing-value slots hold 0 in the matrix —
//! "no anomaly evidence" — and points whose *value* is missing are flagged
//! unusable so training and evaluation skip them entirely (§4.3.2).

use opprentice_detectors::registry;
use opprentice_detectors::registry::ConfiguredDetector;
use opprentice_learn::Dataset;
use opprentice_timeseries::{Labels, TimeSeries};

/// The per-point severities of every detector configuration.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    n_features: usize,
    /// Row-major severities; 0.0 where a detector had no verdict.
    data: Vec<f64>,
    /// Whether the point's value was present (usable for train/test).
    usable: Vec<bool>,
    /// Configuration labels, by column.
    feature_labels: Vec<String>,
}

impl FeatureMatrix {
    /// Creates an empty matrix for incremental (online) extraction.
    pub fn new(feature_labels: Vec<String>) -> Self {
        assert!(!feature_labels.is_empty(), "need at least one feature");
        Self {
            n_features: feature_labels.len(),
            data: Vec::new(),
            usable: Vec::new(),
            feature_labels,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.usable.len()
    }

    /// `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.usable.is_empty()
    }

    /// Number of feature columns (133 for the full registry).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The severity row of point `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Whether point `i` is usable (its value was present).
    pub fn usable(&self, i: usize) -> bool {
        self.usable[i]
    }

    /// Configuration labels by column.
    pub fn feature_labels(&self) -> &[String] {
        &self.feature_labels
    }

    /// Appends one point's severities (`None` → 0.0).
    pub fn push_row(&mut self, severities: &[Option<f64>], usable: bool) {
        assert_eq!(severities.len(), self.n_features, "feature count mismatch");
        self.data
            .extend(severities.iter().map(|s| s.unwrap_or(0.0)));
        self.usable.push(usable);
    }

    /// Severity column `c` as optional values (`None` where the detector had
    /// no verdict *or* the point is unusable) — the per-configuration score
    /// stream used to evaluate basic detectors and static combiners.
    pub fn column_scores(&self, c: usize) -> Vec<Option<f64>> {
        (0..self.len())
            .map(|i| {
                if !self.usable[i] {
                    return None;
                }
                let v = self.row(i)[c];
                // 0.0 encodes "no verdict"; report it as a zero severity —
                // detectors emit genuine zeros too, and both mean "nothing
                // anomalous here" for scoring purposes.
                Some(v)
            })
            .collect()
    }

    /// Builds a training [`Dataset`] from the usable points of `range`,
    /// returning the dataset and the original point index of each row.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is shorter than `range.end`.
    pub fn dataset(&self, labels: &Labels, range: std::ops::Range<usize>) -> (Dataset, Vec<usize>) {
        assert!(labels.len() >= range.end, "labels do not cover the range");
        let mut ds = Dataset::new(self.n_features);
        let mut origin = Vec::new();
        for i in range {
            if self.usable[i] {
                ds.push(self.row(i), labels.is_anomaly(i));
                origin.push(i);
            }
        }
        (ds, origin)
    }
}

impl FeatureMatrix {
    /// Per-feature scale factors: a high quantile of each configuration's
    /// severities over this matrix's points. Dividing severities by these
    /// makes features comparable across KPIs of different magnitudes — the
    /// normalization §6 prescribes for "detection across the same types of
    /// KPIs" (see the `cross_kpi_transfer` example).
    pub fn feature_scales(&self, quantile: f64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&quantile), "quantile out of range");
        (0..self.n_features)
            .map(|c| {
                let mut xs: Vec<f64> = (0..self.len())
                    .filter(|&i| self.usable[i])
                    .map(|i| self.row(i)[c])
                    .collect();
                if xs.is_empty() {
                    return 1.0;
                }
                // Only the one order statistic is needed, so an O(n)
                // selection beats sorting the whole column.
                let idx = ((xs.len() - 1) as f64 * quantile) as usize;
                let (_, q, _) = xs.select_nth_unstable_by(idx, |a, b| {
                    a.partial_cmp(b).expect("finite severities")
                });
                let q = *q;
                if q > 0.0 {
                    q
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// A copy of this matrix with every column divided by the given scale —
    /// pair with [`FeatureMatrix::feature_scales`] from either the same or
    /// a sibling KPI.
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != n_features` or a scale is not positive.
    pub fn scaled_by(&self, scales: &[f64]) -> FeatureMatrix {
        assert_eq!(scales.len(), self.n_features, "scale count mismatch");
        assert!(scales.iter().all(|s| *s > 0.0), "scales must be positive");
        let mut out = self.clone();
        for (i, v) in out.data.iter_mut().enumerate() {
            *v /= scales[i % self.n_features];
        }
        out
    }
}

/// Runs every given configuration over the whole series, in parallel across
/// configurations, and assembles the feature matrix.
pub fn extract_with(mut configs: Vec<ConfiguredDetector>, series: &TimeSeries) -> FeatureMatrix {
    let labels: Vec<String> = configs.iter().map(ConfiguredDetector::label).collect();
    let n = series.len();
    let m = configs.len();

    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(m.max(1));
    let chunk = m.div_ceil(threads.max(1)).max(1);

    let mut columns: Vec<(usize, Vec<Option<f64>>)> = Vec::with_capacity(m);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest: &mut [ConfiguredDetector] = &mut configs;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (batch, tail) = rest.split_at_mut(take);
            rest = tail;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(batch.len());
                for cfg in batch {
                    let col: Vec<Option<f64>> = series
                        .iter()
                        .map(|(ts, v)| {
                            opprentice_detectors::clamp_severity(cfg.detector.observe(ts, v))
                        })
                        .collect();
                    out.push((cfg.index, col));
                }
                out
            }));
        }
        for h in handles {
            columns.extend(h.join().expect("extraction thread panicked"));
        }
    });
    columns.sort_by_key(|(i, _)| *i);

    let mut matrix = FeatureMatrix::new(labels);
    matrix.data = vec![0.0; n * m];
    matrix.usable = (0..n).map(|i| !series.is_missing(i)).collect();
    for (c, col) in columns {
        for (i, s) in col.into_iter().enumerate() {
            if let Some(s) = s {
                matrix.data[i * m + c] = s;
            }
        }
    }
    matrix
}

/// Runs the full Table 3 registry (133 configurations) over the series.
pub fn extract_features(series: &TimeSeries) -> FeatureMatrix {
    extract_with(registry(series.interval()), series)
}

/// An online, stateful feature extractor: feed one point, get one row.
/// This is the deployment path (the offline [`extract_features`] is the
/// evaluation path; both produce identical severities).
pub struct OnlineExtractor {
    detectors: Vec<ConfiguredDetector>,
    row: Vec<Option<f64>>,
}

impl OnlineExtractor {
    /// Creates the extractor with the full registry for `interval`.
    pub fn new(interval: u32) -> Self {
        let detectors = registry(interval);
        let m = detectors.len();
        Self {
            detectors,
            row: vec![None; m],
        }
    }

    /// Configuration labels, by column.
    pub fn labels(&self) -> Vec<String> {
        self.detectors
            .iter()
            .map(ConfiguredDetector::label)
            .collect()
    }

    /// Feeds the next point to every detector, returning the severity row.
    pub fn observe(&mut self, timestamp: i64, value: Option<f64>) -> &[Option<f64>] {
        for (cfg, slot) in self.detectors.iter_mut().zip(&mut self.row) {
            *slot = opprentice_detectors::clamp_severity(cfg.detector.observe(timestamp, value));
        }
        &self.row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_series(n: usize) -> TimeSeries {
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                if i == 170 {
                    f64::NAN
                } else {
                    100.0 + 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()
                }
            })
            .collect();
        TimeSeries::from_values(0, 3600, vals)
    }

    #[test]
    fn matrix_shape_matches_series_and_registry() {
        let s = toy_series(24 * 9);
        let m = extract_features(&s);
        assert_eq!(m.len(), s.len());
        assert_eq!(m.n_features(), 133);
        assert_eq!(m.feature_labels().len(), 133);
    }

    #[test]
    fn missing_points_are_unusable() {
        let s = toy_series(200);
        let m = extract_features(&s);
        assert!(!m.usable(170));
        assert!(m.usable(0));
    }

    #[test]
    fn severities_are_finite_and_nonnegative() {
        let s = toy_series(24 * 9);
        let m = extract_features(&s);
        for i in 0..m.len() {
            for &v in m.row(i) {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    #[test]
    fn dataset_skips_unusable_points() {
        let s = toy_series(200);
        let m = extract_features(&s);
        let labels = Labels::all_normal(s.len());
        let (ds, origin) = m.dataset(&labels, 150..200);
        assert_eq!(ds.len(), 49); // 50 minus the missing point at 170
        assert!(!origin.contains(&170));
        assert_eq!(origin.len(), ds.len());
    }

    #[test]
    fn online_extractor_matches_offline_extraction() {
        let s = toy_series(24 * 8);
        let offline = extract_features(&s);
        let mut online = OnlineExtractor::new(s.interval());
        for (i, (ts, v)) in s.iter().enumerate() {
            let row = online.observe(ts, v);
            let expected = offline.row(i);
            for (c, r) in row.iter().enumerate() {
                assert_eq!(r.unwrap_or(0.0), expected[c], "point {i} feature {c}");
            }
        }
    }

    #[test]
    fn feature_scales_and_scaling() {
        let s = toy_series(200);
        let m = extract_features(&s);
        let scales = m.feature_scales(0.99);
        assert_eq!(scales.len(), 133);
        assert!(scales.iter().all(|&x| x > 0.0));
        let scaled = m.scaled_by(&scales);
        // After scaling by the q99, almost all severities sit in [0, ~1].
        let mut over = 0usize;
        let mut total = 0usize;
        for i in 0..scaled.len() {
            for &v in scaled.row(i) {
                total += 1;
                if v > 1.0 + 1e-9 {
                    over += 1;
                }
            }
        }
        assert!(
            (over as f64) < 0.03 * total as f64,
            "{over}/{total} above 1"
        );
    }

    #[test]
    #[should_panic(expected = "scale count mismatch")]
    fn scaled_by_checks_length() {
        let s = toy_series(50);
        let m = extract_features(&s);
        let _ = m.scaled_by(&[1.0]);
    }

    #[test]
    fn column_scores_align_with_rows() {
        let s = toy_series(100);
        let m = extract_features(&s);
        let col = m.column_scores(0); // simple threshold: severity = value
        assert_eq!(col.len(), 100);
        for (i, c) in col.iter().enumerate() {
            if m.usable(i) {
                assert_eq!(c.unwrap(), m.row(i)[0]);
            } else {
                assert!(c.is_none());
            }
        }
    }
}
