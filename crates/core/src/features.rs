//! Detectors as feature extractors (§4.3).
//!
//! Every detector configuration is run over the KPI in parallel; each emits
//! one severity per point, forming the feature matrix ("the anomaly
//! severities measured by different detectors can naturally serve as the
//! features", §1). Warm-up and missing-value slots hold 0 in the matrix —
//! "no anomaly evidence" — and points whose *value* is missing are flagged
//! unusable so training and evaluation skip them entirely (§4.3.2).
//!
//! # Execution model
//!
//! The configurations are grouped into *fused units*
//! ([`opprentice_detectors::fused::plan`]): one structure-of-arrays kernel
//! per detector family that advances all of the family's parameter
//! configurations per point (bit-identical to the per-config scalar path).
//! Units are assigned to worker shards by a **cost model** — longest-
//! processing-time greedy over each unit's estimated ns/point, seeded from
//! offline measurements and replaced by live per-unit timings as batches
//! flow — so one slow family (ARIMA, SVD) does not serialize the batch
//! behind a shard full of cheap lanes. Placement is pure scheduling:
//! every unit's state advances sequentially wherever it runs, so shard
//! count, shard assignment and rebalancing never change a single output
//! bit. The worker-pool width honours the process-wide
//! `OPPRENTICE_THREADS` knob
//! ([`opprentice_numeric::parallel::configured_threads`]).

use opprentice_detectors::fused::{plan, FusedUnit};
use opprentice_detectors::registry;
use opprentice_detectors::registry::ConfiguredDetector;
use opprentice_learn::Dataset;
use opprentice_numeric::parallel::configured_threads;
use opprentice_timeseries::{Labels, TimeSeries};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// The per-point severities of every detector configuration.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    n_features: usize,
    /// Row-major severities; 0.0 where a detector had no verdict.
    data: Vec<f64>,
    /// Whether the point's value was present (usable for train/test).
    usable: Vec<bool>,
    /// Configuration labels, by column.
    feature_labels: Vec<String>,
}

impl FeatureMatrix {
    /// Creates an empty matrix for incremental (online) extraction.
    pub fn new(feature_labels: Vec<String>) -> Self {
        assert!(!feature_labels.is_empty(), "need at least one feature");
        Self {
            n_features: feature_labels.len(),
            data: Vec::new(),
            usable: Vec::new(),
            feature_labels,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.usable.len()
    }

    /// `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.usable.is_empty()
    }

    /// Number of feature columns (133 for the full registry).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The severity row of point `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Whether point `i` is usable (its value was present).
    pub fn usable(&self, i: usize) -> bool {
        self.usable[i]
    }

    /// Configuration labels by column.
    pub fn feature_labels(&self) -> &[String] {
        &self.feature_labels
    }

    /// Appends one point's severities (`None` → 0.0).
    pub fn push_row(&mut self, severities: &[Option<f64>], usable: bool) {
        assert_eq!(severities.len(), self.n_features, "feature count mismatch");
        self.data
            .extend(severities.iter().map(|s| s.unwrap_or(0.0)));
        self.usable.push(usable);
    }

    /// Severity column `c` as optional values (`None` where the detector had
    /// no verdict *or* the point is unusable) — the per-configuration score
    /// stream used to evaluate basic detectors and static combiners.
    pub fn column_scores(&self, c: usize) -> Vec<Option<f64>> {
        (0..self.len())
            .map(|i| {
                if !self.usable[i] {
                    return None;
                }
                let v = self.row(i)[c];
                // 0.0 encodes "no verdict"; report it as a zero severity —
                // detectors emit genuine zeros too, and both mean "nothing
                // anomalous here" for scoring purposes.
                Some(v)
            })
            .collect()
    }

    /// Builds a training [`Dataset`] from the usable points of `range`,
    /// returning the dataset and the original point index of each row.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is shorter than `range.end`.
    pub fn dataset(&self, labels: &Labels, range: std::ops::Range<usize>) -> (Dataset, Vec<usize>) {
        assert!(labels.len() >= range.end, "labels do not cover the range");
        let mut ds = Dataset::new(self.n_features);
        let mut origin = Vec::new();
        for i in range {
            if self.usable[i] {
                ds.push(self.row(i), labels.is_anomaly(i));
                origin.push(i);
            }
        }
        (ds, origin)
    }
}

impl FeatureMatrix {
    /// Per-feature scale factors: a high quantile of each configuration's
    /// severities over this matrix's points. Dividing severities by these
    /// makes features comparable across KPIs of different magnitudes — the
    /// normalization §6 prescribes for "detection across the same types of
    /// KPIs" (see the `cross_kpi_transfer` example).
    pub fn feature_scales(&self, quantile: f64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&quantile), "quantile out of range");
        (0..self.n_features)
            .map(|c| {
                let mut xs: Vec<f64> = (0..self.len())
                    .filter(|&i| self.usable[i])
                    .map(|i| self.row(i)[c])
                    .collect();
                if xs.is_empty() {
                    return 1.0;
                }
                // Only the one order statistic is needed, so an O(n)
                // selection beats sorting the whole column.
                let idx = ((xs.len() - 1) as f64 * quantile) as usize;
                let (_, q, _) = xs.select_nth_unstable_by(idx, |a, b| {
                    a.partial_cmp(b).expect("finite severities")
                });
                let q = *q;
                if q > 0.0 {
                    q
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// A copy of this matrix with every column divided by the given scale —
    /// pair with [`FeatureMatrix::feature_scales`] from either the same or
    /// a sibling KPI.
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != n_features` or a scale is not positive.
    pub fn scaled_by(&self, scales: &[f64]) -> FeatureMatrix {
        assert_eq!(scales.len(), self.n_features, "scale count mismatch");
        assert!(scales.iter().all(|s| *s > 0.0), "scales must be positive");
        let mut out = self.clone();
        for (i, v) in out.data.iter_mut().enumerate() {
            *v /= scales[i % self.n_features];
        }
        out
    }
}

/// Runs every given configuration over the whole series and assembles the
/// feature matrix, using the fused kernels and the cost-balanced worker
/// pool (the offline face of [`OnlineExtractor`]; outputs are
/// bit-identical to streaming extraction).
///
/// Columns are written at each configuration's `index`, so `configs` must
/// carry dense indices `0..configs.len()` (the registry's natural shape)
/// and must be freshly built (unobserved).
pub fn extract_with(configs: Vec<ConfiguredDetector>, series: &TimeSeries) -> FeatureMatrix {
    let mut extractor = OnlineExtractor::with_configs(configs);
    let mut matrix = FeatureMatrix::new(extractor.labels());
    let timestamps: Vec<i64> = series.iter().map(|(ts, _)| ts).collect();
    let values: Vec<Option<f64>> = series.iter().map(|(_, v)| v).collect();
    let m = extractor.n_features();
    let mut start = 0;
    while start < timestamps.len() {
        let end = (start + OFFLINE_CHUNK).min(timestamps.len());
        let rows = extractor.observe_batch(&timestamps[start..end], &values[start..end]);
        for (i, point) in (start..end).enumerate() {
            matrix.push_row(&rows[i * m..(i + 1) * m], !series.is_missing(point));
        }
        start = end;
    }
    matrix
}

/// Chunk size for offline extraction — large enough to amortize worker
/// hand-off, small enough to keep every shard's block in cache.
const OFFLINE_CHUNK: usize = 512;

/// Runs the full Table 3 registry (133 configurations) over the series.
pub fn extract_features(series: &TimeSeries) -> FeatureMatrix {
    extract_with(registry(series.interval()), series)
}

/// Batches below this size are extracted inline — worker hand-off costs
/// more than it buys on a handful of points.
const MIN_PARALLEL_BATCH: usize = 4;

/// Live measurements below this many points fall back to the seed cost —
/// a couple of cold batches are dominated by cache warm-up.
const MIN_MEASURED_POINTS: u64 = 1024;

/// Shards are re-packed from live unit timings every this many points.
const REBALANCE_POINTS: u64 = 4096;

/// One fused kernel plus its output columns and cost accounting.
struct Unit {
    inner: FusedUnit,
    /// Live timing: total kernel nanoseconds over `measured_pts` points.
    measured_ns: u64,
    measured_pts: u64,
}

impl Unit {
    /// Estimated ns/point: live measurement once warm, seed cost before.
    fn cost_estimate(&self) -> f64 {
        if self.measured_pts >= MIN_MEASURED_POINTS {
            self.measured_ns as f64 / self.measured_pts as f64
        } else {
            self.inner.seed_cost_ns
        }
    }
}

/// One worker's set of fused units plus its per-batch output.
///
/// Owned — a shard travels *through* the job channel to whichever worker
/// picks it up and comes back with the batch output, so no lock is ever
/// held on detector state.
struct Shard {
    units: Vec<Unit>,
    /// Per-unit output blocks for the current batch, concatenated: unit
    /// `u` with `k` lanes occupies `k × batch_len` slots, row-major
    /// (`block[i * k + j]`).
    out: Vec<Option<f64>>,
}

impl Shard {
    /// Runs every unit over one batch, timing each kernel for the cost
    /// model. Per-unit state advances sequentially, so results are
    /// bit-identical to streaming regardless of which shard a unit is on.
    fn run(&mut self, timestamps: &[i64], values: &[Option<f64>]) {
        let n = timestamps.len();
        let total: usize = self.units.iter().map(|u| u.inner.columns.len()).sum();
        self.out.clear();
        self.out.resize(total * n, None);
        let mut offset = 0;
        for unit in &mut self.units {
            let k = unit.inner.columns.len();
            let block = &mut self.out[offset * n..(offset + k) * n];
            let t0 = Instant::now();
            unit.inner.kernel.observe_batch(timestamps, values, block);
            unit.measured_ns += t0.elapsed().as_nanos() as u64;
            unit.measured_pts += n as u64;
            offset += k;
        }
    }
}

/// A batch handed to the worker pool (shared read-only by all shards).
struct BatchInput {
    timestamps: Vec<i64>,
    values: Vec<Option<f64>>,
}

/// A unit of pool work: the shard itself rides along (ownership transfer,
/// no locking) together with the shared input.
struct Job {
    shard: Shard,
    input: Arc<BatchInput>,
}

/// What comes back from a worker.
enum Done {
    Ok(Shard),
    /// The worker caught a panic; the shard is lost.
    Panicked,
}

/// A persistent pool of extraction workers. Threads live as long as the
/// pool; dropping the pool closes the job channel and the workers exit.
struct WorkerPool {
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Done>,
    _workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(n_workers: usize) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let job_rx = Arc::new(std::sync::Mutex::new(job_rx));
        let workers = (0..n_workers)
            .map(|i| {
                let job_rx = Arc::clone(&job_rx);
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("extract-{i}"))
                    .spawn(move || loop {
                        let job = match job_rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        };
                        let Job { mut shard, input } = job;
                        let done = std::panic::catch_unwind(AssertUnwindSafe(move || {
                            shard.run(&input.timestamps, &input.values);
                            shard
                        }))
                        .map_or(Done::Panicked, Done::Ok);
                        if done_tx.send(done).is_err() {
                            return;
                        }
                    })
                    .expect("failed to spawn extraction worker")
            })
            .collect();
        Self {
            job_tx,
            done_rx,
            _workers: workers,
        }
    }
}

/// Longest-processing-time greedy: units in descending cost order, each to
/// the currently lightest shard. Deterministic — ties break on the first
/// output column, and the lightest shard on the lowest index — though
/// placement can never affect extraction output, only wall-clock.
fn lpt_assign(mut units: Vec<Unit>, n_shards: usize) -> Vec<Vec<Unit>> {
    units.sort_by(|a, b| {
        b.cost_estimate()
            .partial_cmp(&a.cost_estimate())
            .expect("finite costs")
            .then(a.inner.columns[0].cmp(&b.inner.columns[0]))
    });
    let mut shards: Vec<Vec<Unit>> = (0..n_shards).map(|_| Vec::new()).collect();
    let mut loads = vec![0.0f64; n_shards];
    for unit in units {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| a.partial_cmp(b).expect("finite").then(ia.cmp(ib)))
            .map(|(i, _)| i)
            .expect("at least one shard");
        loads[lightest] += unit.cost_estimate();
        shards[lightest].push(unit);
    }
    shards
}

/// Measured extraction cost of one detector family, aggregated over all of
/// its fused units (see [`OnlineExtractor::family_stats`]).
#[derive(Debug, Clone)]
pub struct FamilyStat {
    /// Family display name (e.g. `"Holt-Winters"`, `"TSD/TSD MAD"`).
    pub family: &'static str,
    /// Configurations the family contributes.
    pub configs: usize,
    /// Points extracted through the batched path.
    pub points: u64,
    /// Total kernel nanoseconds across the family's units.
    pub nanos: u64,
}

/// An online, stateful feature extractor: feed one point (or one batch of
/// consecutive points), get severity rows. This is the deployment path
/// (the offline [`extract_features`] is the evaluation path; all paths
/// produce bit-identical severities).
///
/// Internally the configurations run as fused family kernels
/// ([`opprentice_detectors::fused`]), cost-balanced across a persistent
/// worker pool for [`OnlineExtractor::observe_batch`]; per-unit state
/// always advances sequentially, so batched, streaming and offline
/// extraction cannot diverge.
pub struct OnlineExtractor {
    shards: Vec<Shard>,
    labels: Vec<String>,
    n_features: usize,
    /// Single-point output row, by feature index.
    row: Vec<Option<f64>>,
    /// Widest unit's lane count — single-point scatter scratch.
    scratch: Vec<Option<f64>>,
    /// Batched output, row-major (`batch_len × n_features`).
    batch: Vec<Option<f64>>,
    /// Lazily spawned on the first parallel batch.
    pool: Option<WorkerPool>,
    points_since_rebalance: u64,
}

impl OnlineExtractor {
    /// Creates the extractor with the full registry for `interval`.
    pub fn new(interval: u32) -> Self {
        Self::with_configs(registry(interval))
    }

    /// Creates the extractor over an explicit configuration set — e.g. a
    /// pruned feature set from `opprentice_learn::feature_select`, or a
    /// sibling KPI's registry for cross-KPI transfer.
    ///
    /// Column `c` of the output is `configs[c]`; each configuration's
    /// `index` is rewritten to its column so rows and labels always line
    /// up, whatever subset or order the caller picked. The configurations
    /// must be freshly built (unobserved): fused kernels reconstruct each
    /// family's state from its [`opprentice_detectors::registry::DetectorSpec`],
    /// so pre-advanced detector state would be discarded.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, or if members of a scheduling group
    /// are not adjacent (state-sharing detectors must stay in lockstep;
    /// keep registry order when pruning).
    pub fn with_configs(mut configs: Vec<ConfiguredDetector>) -> Self {
        assert!(!configs.is_empty(), "need at least one configuration");
        // Group members must be adjacent: a group id may not reappear
        // after a different one intervened.
        {
            let mut seen_after_switch: Vec<usize> = Vec::new();
            let mut current = None;
            for c in &configs {
                if current != Some(c.group) {
                    assert!(
                        !seen_after_switch.contains(&c.group),
                        "scheduling group {} split by reordering",
                        c.group
                    );
                    if let Some(prev) = current {
                        seen_after_switch.push(prev);
                    }
                    current = Some(c.group);
                }
            }
        }
        let labels: Vec<String> = configs.iter().map(ConfiguredDetector::label).collect();
        let m = configs.len();
        for (column, cfg) in configs.iter_mut().enumerate() {
            cfg.index = column;
        }

        let units: Vec<Unit> = plan(configs)
            .into_iter()
            .map(|inner| Unit {
                inner,
                measured_ns: 0,
                measured_pts: 0,
            })
            .collect();
        let scratch_width = units
            .iter()
            .map(|u| u.inner.columns.len())
            .max()
            .expect("non-empty plan");
        let n_shards = configured_threads().min(units.len()).max(1);
        let shards = lpt_assign(units, n_shards)
            .into_iter()
            .map(|units| Shard {
                units,
                out: Vec::new(),
            })
            .collect();

        Self {
            shards,
            labels,
            n_features: m,
            row: vec![None; m],
            scratch: vec![None; scratch_width],
            batch: Vec::new(),
            pool: None,
            points_since_rebalance: 0,
        }
    }

    /// Configuration labels, by column.
    pub fn labels(&self) -> Vec<String> {
        self.labels.clone()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of worker shards the units are balanced across.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Measured per-family extraction cost (batched path only), aggregated
    /// across each family's fused units and sorted by family name. Powers
    /// the serving benchmark's attribution and the STATUS breakdown.
    pub fn family_stats(&self) -> Vec<FamilyStat> {
        let mut stats: Vec<FamilyStat> = Vec::new();
        for shard in &self.shards {
            for unit in &shard.units {
                let family = unit.inner.kernel.family();
                match stats.iter_mut().find(|s| s.family == family) {
                    Some(s) => {
                        s.configs += unit.inner.columns.len();
                        s.nanos += unit.measured_ns;
                        // Units of one family can sit on different shards;
                        // they all see every point, so the family's point
                        // count is the max, not the sum.
                        s.points = s.points.max(unit.measured_pts);
                    }
                    None => stats.push(FamilyStat {
                        family,
                        configs: unit.inner.columns.len(),
                        points: unit.measured_pts,
                        nanos: unit.measured_ns,
                    }),
                }
            }
        }
        stats.sort_by_key(|s| s.family);
        stats
    }

    /// Re-packs units onto shards from the live cost estimates. Called
    /// automatically every [`REBALANCE_POINTS`] batched points; public so
    /// benchmarks and tests can force it. Never changes extraction output
    /// — placement is pure scheduling.
    pub fn rebalance_now(&mut self) {
        let n_shards = self.shards.len();
        if n_shards < 2 {
            return;
        }
        let mut units: Vec<Unit> = Vec::new();
        for shard in &mut self.shards {
            units.append(&mut shard.units);
        }
        // Deterministic input order for the (stable) LPT sort.
        units.sort_by_key(|u| u.inner.columns[0]);
        self.shards = lpt_assign(units, n_shards)
            .into_iter()
            .map(|units| Shard {
                units,
                out: Vec::new(),
            })
            .collect();
        self.points_since_rebalance = 0;
    }

    /// Feeds the next point to every detector, returning the severity row.
    pub fn observe(&mut self, timestamp: i64, value: Option<f64>) -> &[Option<f64>] {
        for shard in &mut self.shards {
            for unit in &mut shard.units {
                let k = unit.inner.columns.len();
                unit.inner
                    .kernel
                    .observe(timestamp, value, &mut self.scratch[..k]);
                for (j, &c) in unit.inner.columns.iter().enumerate() {
                    self.row[c] = self.scratch[j];
                }
            }
        }
        &self.row
    }

    /// Feeds a run of consecutive points to every detector, returning the
    /// severity rows row-major (`values.len() × n_features`). Severities
    /// are bit-identical to calling [`OnlineExtractor::observe`] per point;
    /// the shards just advance concurrently on the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `timestamps` and `values` lengths differ or a worker dies.
    pub fn observe_batch(&mut self, timestamps: &[i64], values: &[Option<f64>]) -> &[Option<f64>] {
        assert_eq!(timestamps.len(), values.len(), "batch length mismatch");
        let n = timestamps.len();
        let m = self.n_features;
        self.batch.clear();
        self.batch.resize(n * m, None);
        if n == 0 {
            return &self.batch;
        }

        if n < MIN_PARALLEL_BATCH || self.shards.len() < 2 {
            for shard in &mut self.shards {
                shard.run(timestamps, values);
            }
        } else {
            let pool = {
                let n_workers = self.shards.len();
                self.pool
                    .get_or_insert_with(|| WorkerPool::spawn(n_workers))
            };
            let input = Arc::new(BatchInput {
                timestamps: timestamps.to_vec(),
                values: values.to_vec(),
            });
            let n_jobs = self.shards.len();
            for shard in self.shards.drain(..) {
                pool.job_tx
                    .send(Job {
                        shard,
                        input: Arc::clone(&input),
                    })
                    .expect("extraction pool is gone");
            }
            // Shards come back in completion order; output assembly goes
            // through each unit's columns, so order cannot matter.
            for _ in 0..n_jobs {
                match pool.done_rx.recv().expect("extraction worker died") {
                    Done::Ok(shard) => self.shards.push(shard),
                    Done::Panicked => panic!("extraction worker panicked"),
                }
            }
        }

        let batch = &mut self.batch;
        for shard in &self.shards {
            let mut offset = 0;
            for unit in &shard.units {
                let k = unit.inner.columns.len();
                let block = &shard.out[offset * n..(offset + k) * n];
                for i in 0..n {
                    for (j, &c) in unit.inner.columns.iter().enumerate() {
                        batch[i * m + c] = block[i * k + j];
                    }
                }
                offset += k;
            }
        }

        self.points_since_rebalance += n as u64;
        if self.points_since_rebalance >= REBALANCE_POINTS {
            self.rebalance_now();
        }
        &self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_series(n: usize) -> TimeSeries {
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                if i == 170 {
                    f64::NAN
                } else {
                    100.0 + 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()
                }
            })
            .collect();
        TimeSeries::from_values(0, 3600, vals)
    }

    #[test]
    fn matrix_shape_matches_series_and_registry() {
        let s = toy_series(24 * 9);
        let m = extract_features(&s);
        assert_eq!(m.len(), s.len());
        assert_eq!(m.n_features(), 133);
        assert_eq!(m.feature_labels().len(), 133);
    }

    #[test]
    fn missing_points_are_unusable() {
        let s = toy_series(200);
        let m = extract_features(&s);
        assert!(!m.usable(170));
        assert!(m.usable(0));
    }

    #[test]
    fn severities_are_finite_and_nonnegative() {
        let s = toy_series(24 * 9);
        let m = extract_features(&s);
        for i in 0..m.len() {
            for &v in m.row(i) {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    #[test]
    fn dataset_skips_unusable_points() {
        let s = toy_series(200);
        let m = extract_features(&s);
        let labels = Labels::all_normal(s.len());
        let (ds, origin) = m.dataset(&labels, 150..200);
        assert_eq!(ds.len(), 49); // 50 minus the missing point at 170
        assert!(!origin.contains(&170));
        assert_eq!(origin.len(), ds.len());
    }

    #[test]
    fn online_extractor_matches_offline_extraction() {
        let s = toy_series(24 * 8);
        let offline = extract_features(&s);
        let mut online = OnlineExtractor::new(s.interval());
        for (i, (ts, v)) in s.iter().enumerate() {
            let row = online.observe(ts, v);
            let expected = offline.row(i);
            for (c, r) in row.iter().enumerate() {
                assert_eq!(r.unwrap_or(0.0), expected[c], "point {i} feature {c}");
            }
        }
    }

    #[test]
    fn batched_extraction_matches_streaming_across_rebalances() {
        let s = toy_series(24 * 8);
        let timestamps: Vec<i64> = s.iter().map(|(ts, _)| ts).collect();
        let values: Vec<Option<f64>> = s.iter().map(|(_, v)| v).collect();
        let mut streaming = OnlineExtractor::new(s.interval());
        let mut batched = OnlineExtractor::new(s.interval());
        let m = batched.n_features();
        // Uneven chunks with a forced rebalance in the middle.
        let mut start = 0;
        let mut chunk = 1;
        while start < timestamps.len() {
            let end = (start + chunk).min(timestamps.len());
            if start > timestamps.len() / 2 {
                batched.rebalance_now();
            }
            let rows = batched
                .observe_batch(&timestamps[start..end], &values[start..end])
                .to_vec();
            for (i, point) in (start..end).enumerate() {
                let row = streaming.observe(timestamps[point], values[point]);
                for c in 0..m {
                    assert_eq!(
                        row[c].map(f64::to_bits),
                        rows[i * m + c].map(f64::to_bits),
                        "point {point} feature {c}"
                    );
                }
            }
            start = end;
            chunk = chunk % 37 + 5;
        }
    }

    #[test]
    fn family_stats_cover_all_configs() {
        let s = toy_series(24 * 4);
        let timestamps: Vec<i64> = s.iter().map(|(ts, _)| ts).collect();
        let values: Vec<Option<f64>> = s.iter().map(|(_, v)| v).collect();
        let mut ex = OnlineExtractor::new(s.interval());
        ex.observe_batch(&timestamps, &values);
        let stats = ex.family_stats();
        let configs: usize = stats.iter().map(|f| f.configs).sum();
        assert_eq!(configs, 133);
        assert!(stats.iter().all(|f| f.points == timestamps.len() as u64));
        // Families are aggregated: far fewer entries than units.
        assert!(stats.len() <= 14, "{stats:?}");
    }

    #[test]
    fn feature_scales_and_scaling() {
        let s = toy_series(200);
        let m = extract_features(&s);
        let scales = m.feature_scales(0.99);
        assert_eq!(scales.len(), 133);
        assert!(scales.iter().all(|&x| x > 0.0));
        let scaled = m.scaled_by(&scales);
        // After scaling by the q99, almost all severities sit in [0, ~1].
        let mut over = 0usize;
        let mut total = 0usize;
        for i in 0..scaled.len() {
            for &v in scaled.row(i) {
                total += 1;
                if v > 1.0 + 1e-9 {
                    over += 1;
                }
            }
        }
        assert!(
            (over as f64) < 0.03 * total as f64,
            "{over}/{total} above 1"
        );
    }

    #[test]
    #[should_panic(expected = "scale count mismatch")]
    fn scaled_by_checks_length() {
        let s = toy_series(50);
        let m = extract_features(&s);
        let _ = m.scaled_by(&[1.0]);
    }

    #[test]
    fn column_scores_align_with_rows() {
        let s = toy_series(100);
        let m = extract_features(&s);
        let col = m.column_scores(0); // simple threshold: severity = value
        assert_eq!(col.len(), 100);
        for (i, c) in col.iter().enumerate() {
            if m.usable(i) {
                assert_eq!(c.unwrap(), m.row(i)[0]);
            } else {
                assert!(c.is_none());
            }
        }
    }
}
