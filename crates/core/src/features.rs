//! Detectors as feature extractors (§4.3).
//!
//! Every detector configuration is run over the KPI in parallel; each emits
//! one severity per point, forming the feature matrix ("the anomaly
//! severities measured by different detectors can naturally serve as the
//! features", §1). Warm-up and missing-value slots hold 0 in the matrix —
//! "no anomaly evidence" — and points whose *value* is missing are flagged
//! unusable so training and evaluation skip them entirely (§4.3.2).

use opprentice_detectors::registry;
use opprentice_detectors::registry::ConfiguredDetector;
use opprentice_learn::Dataset;
use opprentice_timeseries::{Labels, TimeSeries};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// The per-point severities of every detector configuration.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    n_features: usize,
    /// Row-major severities; 0.0 where a detector had no verdict.
    data: Vec<f64>,
    /// Whether the point's value was present (usable for train/test).
    usable: Vec<bool>,
    /// Configuration labels, by column.
    feature_labels: Vec<String>,
}

impl FeatureMatrix {
    /// Creates an empty matrix for incremental (online) extraction.
    pub fn new(feature_labels: Vec<String>) -> Self {
        assert!(!feature_labels.is_empty(), "need at least one feature");
        Self {
            n_features: feature_labels.len(),
            data: Vec::new(),
            usable: Vec::new(),
            feature_labels,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.usable.len()
    }

    /// `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.usable.is_empty()
    }

    /// Number of feature columns (133 for the full registry).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The severity row of point `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Whether point `i` is usable (its value was present).
    pub fn usable(&self, i: usize) -> bool {
        self.usable[i]
    }

    /// Configuration labels by column.
    pub fn feature_labels(&self) -> &[String] {
        &self.feature_labels
    }

    /// Appends one point's severities (`None` → 0.0).
    pub fn push_row(&mut self, severities: &[Option<f64>], usable: bool) {
        assert_eq!(severities.len(), self.n_features, "feature count mismatch");
        self.data
            .extend(severities.iter().map(|s| s.unwrap_or(0.0)));
        self.usable.push(usable);
    }

    /// Severity column `c` as optional values (`None` where the detector had
    /// no verdict *or* the point is unusable) — the per-configuration score
    /// stream used to evaluate basic detectors and static combiners.
    pub fn column_scores(&self, c: usize) -> Vec<Option<f64>> {
        (0..self.len())
            .map(|i| {
                if !self.usable[i] {
                    return None;
                }
                let v = self.row(i)[c];
                // 0.0 encodes "no verdict"; report it as a zero severity —
                // detectors emit genuine zeros too, and both mean "nothing
                // anomalous here" for scoring purposes.
                Some(v)
            })
            .collect()
    }

    /// Builds a training [`Dataset`] from the usable points of `range`,
    /// returning the dataset and the original point index of each row.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is shorter than `range.end`.
    pub fn dataset(&self, labels: &Labels, range: std::ops::Range<usize>) -> (Dataset, Vec<usize>) {
        assert!(labels.len() >= range.end, "labels do not cover the range");
        let mut ds = Dataset::new(self.n_features);
        let mut origin = Vec::new();
        for i in range {
            if self.usable[i] {
                ds.push(self.row(i), labels.is_anomaly(i));
                origin.push(i);
            }
        }
        (ds, origin)
    }
}

impl FeatureMatrix {
    /// Per-feature scale factors: a high quantile of each configuration's
    /// severities over this matrix's points. Dividing severities by these
    /// makes features comparable across KPIs of different magnitudes — the
    /// normalization §6 prescribes for "detection across the same types of
    /// KPIs" (see the `cross_kpi_transfer` example).
    pub fn feature_scales(&self, quantile: f64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&quantile), "quantile out of range");
        (0..self.n_features)
            .map(|c| {
                let mut xs: Vec<f64> = (0..self.len())
                    .filter(|&i| self.usable[i])
                    .map(|i| self.row(i)[c])
                    .collect();
                if xs.is_empty() {
                    return 1.0;
                }
                // Only the one order statistic is needed, so an O(n)
                // selection beats sorting the whole column.
                let idx = ((xs.len() - 1) as f64 * quantile) as usize;
                let (_, q, _) = xs.select_nth_unstable_by(idx, |a, b| {
                    a.partial_cmp(b).expect("finite severities")
                });
                let q = *q;
                if q > 0.0 {
                    q
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// A copy of this matrix with every column divided by the given scale —
    /// pair with [`FeatureMatrix::feature_scales`] from either the same or
    /// a sibling KPI.
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != n_features` or a scale is not positive.
    pub fn scaled_by(&self, scales: &[f64]) -> FeatureMatrix {
        assert_eq!(scales.len(), self.n_features, "scale count mismatch");
        assert!(scales.iter().all(|s| *s > 0.0), "scales must be positive");
        let mut out = self.clone();
        for (i, v) in out.data.iter_mut().enumerate() {
            *v /= scales[i % self.n_features];
        }
        out
    }
}

/// Splits configurations into contiguous chunks of roughly `chunk` entries
/// without ever separating a scheduling group (configurations sharing
/// mutable state — e.g. wavelet band views of one filter bank — must stay
/// on one thread, in lockstep).
fn split_respecting_groups(
    mut rest: &mut [ConfiguredDetector],
    chunk: usize,
) -> Vec<&mut [ConfiguredDetector]> {
    let mut out = Vec::new();
    while !rest.is_empty() {
        let mut take = chunk.min(rest.len());
        while take < rest.len() && rest[take].group == rest[take - 1].group {
            take += 1;
        }
        let (batch, tail) = rest.split_at_mut(take);
        out.push(batch);
        rest = tail;
    }
    out
}

/// Runs every given configuration over the whole series, in parallel across
/// configurations, and assembles the feature matrix.
///
/// Columns are written at each configuration's `index`, so `configs` must
/// carry dense indices `0..configs.len()` (the registry's natural shape).
pub fn extract_with(mut configs: Vec<ConfiguredDetector>, series: &TimeSeries) -> FeatureMatrix {
    let labels: Vec<String> = configs.iter().map(ConfiguredDetector::label).collect();
    let n = series.len();
    let m = configs.len();

    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(m.max(1));
    let chunk = m.div_ceil(threads.max(1)).max(1);

    let mut columns: Vec<(usize, Vec<Option<f64>>)> = Vec::with_capacity(m);
    std::thread::scope(|scope| {
        let handles: Vec<_> = split_respecting_groups(&mut configs, chunk)
            .into_iter()
            .map(|batch| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(batch.len());
                    let mut k = 0;
                    while k < batch.len() {
                        let mut end = k + 1;
                        while end < batch.len() && batch[end].group == batch[k].group {
                            end += 1;
                        }
                        // A multi-member group (wavelet band views of one
                        // filter bank) must advance point-by-point in
                        // lockstep; independent detectors take the plain
                        // column-at-a-time path.
                        let run = &mut batch[k..end];
                        let mut cols: Vec<Vec<Option<f64>>> = run
                            .iter()
                            .map(|_| Vec::with_capacity(series.len()))
                            .collect();
                        if run.len() == 1 {
                            cols[0]
                                .extend(series.iter().map(|(ts, v)| run[0].observe_clamped(ts, v)));
                        } else {
                            for (ts, v) in series.iter() {
                                for (cfg, col) in run.iter_mut().zip(cols.iter_mut()) {
                                    col.push(cfg.observe_clamped(ts, v));
                                }
                            }
                        }
                        for (cfg, col) in run.iter().zip(cols) {
                            out.push((cfg.index, col));
                        }
                        k = end;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            columns.extend(h.join().expect("extraction thread panicked"));
        }
    });
    columns.sort_by_key(|(i, _)| *i);

    let mut matrix = FeatureMatrix::new(labels);
    matrix.data = vec![0.0; n * m];
    matrix.usable = (0..n).map(|i| !series.is_missing(i)).collect();
    for (c, col) in columns {
        for (i, s) in col.into_iter().enumerate() {
            if let Some(s) = s {
                matrix.data[i * m + c] = s;
            }
        }
    }
    matrix
}

/// Runs the full Table 3 registry (133 configurations) over the series.
pub fn extract_features(series: &TimeSeries) -> FeatureMatrix {
    extract_with(registry(series.interval()), series)
}

/// Batches below this size are extracted inline — worker hand-off costs
/// more than it buys on a handful of points.
const MIN_PARALLEL_BATCH: usize = 4;

/// One worker's slice of the detector set plus its per-batch output.
struct Shard {
    dets: Vec<ConfiguredDetector>,
    /// Column-major severities for the current batch:
    /// `dets.len() × batch_len`, detector-major.
    out: Vec<Option<f64>>,
}

impl Shard {
    /// Runs the shard's detectors over one batch. Per-detector state
    /// advances sequentially, and multi-member groups (wavelet band views
    /// of one filter bank) advance point-by-point in lockstep, so results
    /// are bit-identical to streaming.
    fn run(&mut self, timestamps: &[i64], values: &[Option<f64>]) {
        let n = timestamps.len();
        self.out.clear();
        self.out.resize(self.dets.len() * n, None);
        let mut k = 0;
        while k < self.dets.len() {
            let mut end = k + 1;
            while end < self.dets.len() && self.dets[end].group == self.dets[k].group {
                end += 1;
            }
            if end - k == 1 {
                self.dets[k].observe_batch_clamped(
                    timestamps,
                    values,
                    &mut self.out[k * n..(k + 1) * n],
                );
            } else {
                for i in 0..n {
                    for (j, cfg) in self.dets[k..end].iter_mut().enumerate() {
                        self.out[(k + j) * n + i] = cfg.observe_clamped(timestamps[i], values[i]);
                    }
                }
            }
            k = end;
        }
    }
}

/// A batch handed to the worker pool (shared read-only by all shards).
struct BatchInput {
    timestamps: Vec<i64>,
    values: Vec<Option<f64>>,
}

struct Job {
    shard: Arc<Mutex<Shard>>,
    input: Arc<BatchInput>,
}

/// A persistent pool of extraction workers. Threads live as long as the
/// pool; dropping the pool closes the job channel and the workers exit.
struct WorkerPool {
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<bool>,
    _workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(n_workers: usize) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<bool>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..n_workers)
            .map(|i| {
                let job_rx = Arc::clone(&job_rx);
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("extract-{i}"))
                    .spawn(move || loop {
                        let job = match job_rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        };
                        let ok = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            let mut shard = job.shard.lock().expect("shard poisoned");
                            shard.run(&job.input.timestamps, &job.input.values);
                        }))
                        .is_ok();
                        drop(job);
                        if done_tx.send(ok).is_err() {
                            return;
                        }
                    })
                    .expect("failed to spawn extraction worker")
            })
            .collect();
        Self {
            job_tx,
            done_rx,
            _workers: workers,
        }
    }
}

/// Runs `f` on the shard, skipping the lock when no worker holds a
/// reference (the common case between batches).
fn with_shard<R>(shard: &mut Arc<Mutex<Shard>>, f: impl FnOnce(&mut Shard) -> R) -> R {
    match Arc::get_mut(shard) {
        Some(m) => f(m.get_mut().expect("shard poisoned")),
        None => f(&mut shard.lock().expect("shard poisoned")),
    }
}

/// An online, stateful feature extractor: feed one point (or one batch of
/// consecutive points), get severity rows. This is the deployment path
/// (the offline [`extract_features`] is the evaluation path; all paths
/// produce bit-identical severities).
///
/// Internally the configurations are sharded across a persistent worker
/// pool for [`OnlineExtractor::observe_batch`]; per-detector state always
/// advances sequentially, so batched, streaming and offline extraction
/// cannot diverge.
pub struct OnlineExtractor {
    shards: Vec<Arc<Mutex<Shard>>>,
    labels: Vec<String>,
    n_features: usize,
    /// Single-point output row, by feature index.
    row: Vec<Option<f64>>,
    /// Batched output, row-major (`batch_len × n_features`).
    batch: Vec<Option<f64>>,
    /// Lazily spawned on the first parallel batch.
    pool: Option<WorkerPool>,
}

impl OnlineExtractor {
    /// Creates the extractor with the full registry for `interval`.
    pub fn new(interval: u32) -> Self {
        Self::with_configs(registry(interval))
    }

    /// Creates the extractor over an explicit configuration set — e.g. a
    /// pruned feature set from `opprentice_learn::feature_select`, or a
    /// sibling KPI's registry for cross-KPI transfer.
    ///
    /// Column `c` of the output is `configs[c]`; each configuration's
    /// `index` is rewritten to its column so rows and labels always line
    /// up, whatever subset or order the caller picked.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, or if members of a scheduling group
    /// are not adjacent (state-sharing detectors must stay in lockstep;
    /// keep registry order when pruning).
    pub fn with_configs(mut configs: Vec<ConfiguredDetector>) -> Self {
        assert!(!configs.is_empty(), "need at least one configuration");
        // Group members must be adjacent: a group id may not reappear
        // after a different one intervened.
        {
            let mut seen_after_switch: Vec<usize> = Vec::new();
            let mut current = None;
            for c in &configs {
                if current != Some(c.group) {
                    assert!(
                        !seen_after_switch.contains(&c.group),
                        "scheduling group {} split by reordering",
                        c.group
                    );
                    if let Some(prev) = current {
                        seen_after_switch.push(prev);
                    }
                    current = Some(c.group);
                }
            }
        }
        let labels: Vec<String> = configs.iter().map(ConfiguredDetector::label).collect();
        let m = configs.len();
        for (column, cfg) in configs.iter_mut().enumerate() {
            cfg.index = column;
        }

        // Partition into runs of one scheduling group, then deal the runs
        // round-robin across shards so heavy families spread out.
        let mut runs: Vec<Vec<ConfiguredDetector>> = Vec::new();
        for cfg in configs {
            match runs.last_mut() {
                Some(run) if run[0].group == cfg.group => run.push(cfg),
                _ => runs.push(vec![cfg]),
            }
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8);
        let n_shards = threads.min(runs.len()).max(1);
        let mut shards: Vec<Vec<ConfiguredDetector>> = (0..n_shards).map(|_| Vec::new()).collect();
        for (i, run) in runs.into_iter().enumerate() {
            shards[i % n_shards].extend(run);
        }

        Self {
            shards: shards
                .into_iter()
                .map(|dets| {
                    Arc::new(Mutex::new(Shard {
                        dets,
                        out: Vec::new(),
                    }))
                })
                .collect(),
            labels,
            n_features: m,
            row: vec![None; m],
            batch: Vec::new(),
            pool: None,
        }
    }

    /// Configuration labels, by column.
    pub fn labels(&self) -> Vec<String> {
        self.labels.clone()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feeds the next point to every detector, returning the severity row.
    pub fn observe(&mut self, timestamp: i64, value: Option<f64>) -> &[Option<f64>] {
        let row = &mut self.row;
        for shard in &mut self.shards {
            with_shard(shard, |s| {
                for cfg in &mut s.dets {
                    row[cfg.index] = cfg.observe_clamped(timestamp, value);
                }
            });
        }
        &self.row
    }

    /// Feeds a run of consecutive points to every detector, returning the
    /// severity rows row-major (`values.len() × n_features`). Severities
    /// are bit-identical to calling [`OnlineExtractor::observe`] per point;
    /// the shards just advance concurrently on the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `timestamps` and `values` lengths differ or a worker dies.
    pub fn observe_batch(&mut self, timestamps: &[i64], values: &[Option<f64>]) -> &[Option<f64>] {
        assert_eq!(timestamps.len(), values.len(), "batch length mismatch");
        let n = timestamps.len();
        let m = self.n_features;
        self.batch.clear();
        self.batch.resize(n * m, None);
        if n == 0 {
            return &self.batch;
        }

        if n < MIN_PARALLEL_BATCH || self.shards.len() < 2 {
            for shard in &mut self.shards {
                with_shard(shard, |s| s.run(timestamps, values));
            }
        } else {
            let pool = {
                let n_workers = self.shards.len();
                self.pool
                    .get_or_insert_with(|| WorkerPool::spawn(n_workers))
            };
            let input = Arc::new(BatchInput {
                timestamps: timestamps.to_vec(),
                values: values.to_vec(),
            });
            for shard in &self.shards {
                pool.job_tx
                    .send(Job {
                        shard: Arc::clone(shard),
                        input: Arc::clone(&input),
                    })
                    .expect("extraction pool is gone");
            }
            for _ in 0..self.shards.len() {
                let ok = pool.done_rx.recv().expect("extraction worker died");
                assert!(ok, "extraction worker panicked");
            }
        }

        let batch = &mut self.batch;
        for shard in &mut self.shards {
            with_shard(shard, |s| {
                for (k, cfg) in s.dets.iter().enumerate() {
                    let col = &s.out[k * n..(k + 1) * n];
                    for (i, &sev) in col.iter().enumerate() {
                        batch[i * m + cfg.index] = sev;
                    }
                }
            });
        }
        &self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_series(n: usize) -> TimeSeries {
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                if i == 170 {
                    f64::NAN
                } else {
                    100.0 + 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()
                }
            })
            .collect();
        TimeSeries::from_values(0, 3600, vals)
    }

    #[test]
    fn matrix_shape_matches_series_and_registry() {
        let s = toy_series(24 * 9);
        let m = extract_features(&s);
        assert_eq!(m.len(), s.len());
        assert_eq!(m.n_features(), 133);
        assert_eq!(m.feature_labels().len(), 133);
    }

    #[test]
    fn missing_points_are_unusable() {
        let s = toy_series(200);
        let m = extract_features(&s);
        assert!(!m.usable(170));
        assert!(m.usable(0));
    }

    #[test]
    fn severities_are_finite_and_nonnegative() {
        let s = toy_series(24 * 9);
        let m = extract_features(&s);
        for i in 0..m.len() {
            for &v in m.row(i) {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    #[test]
    fn dataset_skips_unusable_points() {
        let s = toy_series(200);
        let m = extract_features(&s);
        let labels = Labels::all_normal(s.len());
        let (ds, origin) = m.dataset(&labels, 150..200);
        assert_eq!(ds.len(), 49); // 50 minus the missing point at 170
        assert!(!origin.contains(&170));
        assert_eq!(origin.len(), ds.len());
    }

    #[test]
    fn online_extractor_matches_offline_extraction() {
        let s = toy_series(24 * 8);
        let offline = extract_features(&s);
        let mut online = OnlineExtractor::new(s.interval());
        for (i, (ts, v)) in s.iter().enumerate() {
            let row = online.observe(ts, v);
            let expected = offline.row(i);
            for (c, r) in row.iter().enumerate() {
                assert_eq!(r.unwrap_or(0.0), expected[c], "point {i} feature {c}");
            }
        }
    }

    #[test]
    fn feature_scales_and_scaling() {
        let s = toy_series(200);
        let m = extract_features(&s);
        let scales = m.feature_scales(0.99);
        assert_eq!(scales.len(), 133);
        assert!(scales.iter().all(|&x| x > 0.0));
        let scaled = m.scaled_by(&scales);
        // After scaling by the q99, almost all severities sit in [0, ~1].
        let mut over = 0usize;
        let mut total = 0usize;
        for i in 0..scaled.len() {
            for &v in scaled.row(i) {
                total += 1;
                if v > 1.0 + 1e-9 {
                    over += 1;
                }
            }
        }
        assert!(
            (over as f64) < 0.03 * total as f64,
            "{over}/{total} above 1"
        );
    }

    #[test]
    #[should_panic(expected = "scale count mismatch")]
    fn scaled_by_checks_length() {
        let s = toy_series(50);
        let m = extract_features(&s);
        let _ = m.scaled_by(&[1.0]);
    }

    #[test]
    fn column_scores_align_with_rows() {
        let s = toy_series(100);
        let m = extract_features(&s);
        let col = m.column_scores(0); // simple threshold: severity = value
        assert_eq!(col.len(), 100);
        for (i, c) in col.iter().enumerate() {
            if m.usable(i) {
                assert_eq!(c.unwrap(), m.row(i)[0]);
            } else {
                assert!(c.is_none());
            }
        }
    }
}
