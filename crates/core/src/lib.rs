//! # Opprentice — Operators' apprentice
//!
//! A from-scratch Rust reproduction of *"Opprentice: Towards Practical and
//! Automatic Anomaly Detection Through Machine Learning"* (IMC 2015).
//!
//! Opprentice removes the classic deployment bottleneck of KPI anomaly
//! detection — manually selecting detectors and tuning their parameters and
//! thresholds. Instead:
//!
//! 1. **Operators only label anomalies** (in windows, with a convenient
//!    tool — here, [`opprentice_datagen::SimulatedOperator`] plays that
//!    role for synthetic data).
//! 2. **Existing detectors become feature extractors** (§4.3): the 133
//!    configurations of 14 detectors each emit a severity per point
//!    ([`features::extract_features`]).
//! 3. **A random forest learns the anomaly concept** from features plus
//!    labels (§4.4), retrained incrementally as new labels arrive.
//! 4. **The classification threshold (cThld) is auto-configured** to the
//!    operators' accuracy preference "recall ≥ R and precision ≥ P" using
//!    the PC-Score metric (§4.5.1) and predicted for future data with EWMA
//!    (§4.5.2).
//!
//! The crate exposes both the deployable pipeline ([`Opprentice`]) and the
//! paper's full evaluation machinery ([`evaluate`], [`combiners`],
//! [`strategy`]) used by `opprentice-bench` to regenerate every table and
//! figure.
//!
//! ## Quick start
//!
//! ```
//! use opprentice::{Opprentice, OpprenticeConfig, Preference};
//! use opprentice_timeseries::{Labels, TimeSeries};
//!
//! // A toy hourly KPI: two flat weeks, then live traffic.
//! let interval = 3600;
//! let mut history = TimeSeries::new(0, interval);
//! let mut labels = Labels::all_normal(0);
//! for i in 0..(24 * 21) {
//!     let v = 100.0 + 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
//!     let anomalous = i == 400 || i == 401; // a labeled spike
//!     history.push(if anomalous { v + 80.0 } else { v });
//!     labels.push(anomalous);
//! }
//!
//! let mut opp = Opprentice::new(interval, OpprenticeConfig {
//!     preference: Preference { recall: 0.66, precision: 0.66 },
//!     ..OpprenticeConfig::default()
//! });
//! opp.ingest_history(&history, &labels).expect("fresh pipeline accepts history");
//! opp.retrain();
//!
//! // Online detection: push points as they arrive.
//! let verdict = opp.observe(history.timestamp_at(history.len() - 1) + i64::from(interval), Some(500.0));
//! assert!(verdict.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combiners;
pub mod cthld;
mod error;
pub mod evaluate;
pub mod features;
mod pipeline;
pub mod postprocess;
pub mod predictor;
pub mod snapshot;
pub mod strategy;

pub use cthld::{CthldMetric, Preference};
pub use error::PipelineError;
pub use features::{extract_features, FamilyStat, FeatureMatrix};
pub use pipeline::{Detection, Opprentice, OpprenticeConfig, RetrainError, TrainingReport};
pub use snapshot::{RecoveryError, SessionSnapshot, SnapshotError};
pub use strategy::TrainingStrategy;
