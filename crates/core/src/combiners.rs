//! The static detector-combination baselines of §5.3.1: the normalization
//! schema [21] and the majority vote [8].
//!
//! "These two methods are designed to combine different detectors, but they
//! treat them equally no matter their accuracy" — which is exactly why they
//! lose to the random forest when most of the 133 configurations are
//! inaccurate (Fig. 9, Table 4).
//!
//! Both papers leave the per-detector scaling open, so this module makes
//! the standard choice explicit: each configuration is normalized by a high
//! quantile of its own severity history (normalization schema), or votes
//! when its severity exceeds a high quantile of that history (majority
//! vote). Sweeping the combined score's threshold then draws their PR
//! curves, exactly as for any other score stream.

use crate::features::FeatureMatrix;
use opprentice_numeric::stats::quantile;

/// The quantile of each configuration's severity history used as its scale
/// (normalization) or voting sThld (majority vote).
const SCALE_QUANTILE: f64 = 0.99;

/// Per-configuration severity scales over the given point range.
fn config_scales(matrix: &FeatureMatrix, fit_range: std::ops::Range<usize>) -> Vec<f64> {
    let m = matrix.n_features();
    let mut scales = Vec::with_capacity(m);
    for c in 0..m {
        let xs: Vec<f64> = fit_range
            .clone()
            .filter(|&i| matrix.usable(i))
            .map(|i| matrix.row(i)[c])
            .collect();
        let q = quantile(&xs, SCALE_QUANTILE).unwrap_or(1.0);
        scales.push(if q > 0.0 { q } else { 1.0 });
    }
    scales
}

/// The normalization schema [21]: each severity is rescaled to `[0, 1]` by
/// its configuration's own scale (clamped), and the combined score is the
/// equal-weight mean. Scales are fit on `fit_range` (the training data) and
/// scores are emitted for `score_range`.
pub fn normalization_schema(
    matrix: &FeatureMatrix,
    fit_range: std::ops::Range<usize>,
    score_range: std::ops::Range<usize>,
) -> Vec<Option<f64>> {
    let scales = config_scales(matrix, fit_range);
    let m = matrix.n_features();
    score_range
        .map(|i| {
            if !matrix.usable(i) {
                return None;
            }
            let row = matrix.row(i);
            let sum: f64 = (0..m).map(|c| (row[c] / scales[c]).min(1.0)).sum();
            Some(sum / m as f64)
        })
        .collect()
}

/// The majority vote [8]: each configuration votes "anomaly" when its
/// severity exceeds its own sThld (a high quantile of its history); the
/// combined score is the fraction of voting configurations. "Equally
/// weighted vote" — every configuration counts the same.
pub fn majority_vote(
    matrix: &FeatureMatrix,
    fit_range: std::ops::Range<usize>,
    score_range: std::ops::Range<usize>,
) -> Vec<Option<f64>> {
    let sthlds = config_scales(matrix, fit_range);
    let m = matrix.n_features();
    score_range
        .map(|i| {
            if !matrix.usable(i) {
                return None;
            }
            let row = matrix.row(i);
            let votes = (0..m)
                .filter(|&c| row[c] >= sthlds[c] && row[c] > 0.0)
                .count();
            Some(votes as f64 / m as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small matrix: 3 features, 100 points. Feature 0 is informative
    /// (high on the last 5 points), features 1-2 are noise.
    fn toy_matrix() -> FeatureMatrix {
        let mut m = FeatureMatrix::new(vec!["good".into(), "noise1".into(), "noise2".into()]);
        for i in 0..100 {
            let good = if i >= 95 { 50.0 } else { (i % 7) as f64 * 0.1 };
            let n1 = ((i * 13) % 10) as f64;
            let n2 = ((i * 29) % 10) as f64;
            m.push_row(&[Some(good), Some(n1), Some(n2)], true);
        }
        m
    }

    #[test]
    fn normalization_scores_in_unit_range() {
        let m = toy_matrix();
        let scores = normalization_schema(&m, 0..90, 0..100);
        for s in scores.iter().flatten() {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn informative_feature_raises_combined_score() {
        let m = toy_matrix();
        let scores = normalization_schema(&m, 0..90, 0..100);
        let anomalous = scores[97].unwrap();
        let normal = scores[10].unwrap();
        assert!(anomalous > normal, "{anomalous} vs {normal}");
    }

    #[test]
    fn majority_vote_fraction_counts_exceeding_configs() {
        let m = toy_matrix();
        let scores = majority_vote(&m, 0..90, 0..100);
        // At point 97, only the informative feature exceeds its q99 —
        // fraction should be about 1/3.
        let v = scores[97].unwrap();
        assert!(v > 0.0 && v <= 1.0);
    }

    #[test]
    fn unusable_points_get_no_score() {
        let mut m = FeatureMatrix::new(vec!["a".into()]);
        m.push_row(&[Some(1.0)], true);
        m.push_row(&[None], false);
        m.push_row(&[Some(2.0)], true);
        let norm = normalization_schema(&m, 0..3, 0..3);
        assert!(norm[1].is_none());
        let vote = majority_vote(&m, 0..3, 0..3);
        assert!(vote[1].is_none());
    }

    #[test]
    fn scales_fit_on_training_range_only() {
        // A feature that explodes in the test range must be normalized by
        // its *training* scale, producing clamped scores of 1.
        let mut m = FeatureMatrix::new(vec!["a".into()]);
        for i in 0..50 {
            m.push_row(&[Some((i % 5) as f64)], true);
        }
        m.push_row(&[Some(1000.0)], true);
        let scores = normalization_schema(&m, 0..50, 50..51);
        assert_eq!(scores[0], Some(1.0));
    }
}
