//! Online cThld prediction (§4.5.2).
//!
//! The best cThld of a week is only knowable in hindsight, so online
//! detection needs a prediction. The paper's method is EWMA over the
//! historical best cThlds —
//!
//! `cThld_p(i) = α · cThld_b(i−1) + (1−α) · cThld_p(i−1)`, α = 0.8 —
//!
//! initialized by 5-fold cross-validation on the first training set, and
//! compared against using 5-fold cross-validation every week (the baseline
//! Fig. 13 shows losing).

use crate::cthld::{pc_score, Preference};
use opprentice_learn::cv::k_fold;
use opprentice_learn::{Classifier, Dataset, RandomForest, RandomForestParams};

/// The EWMA cThld predictor (α = 0.8 in the paper: "to quickly catch up
/// with the cThld variation").
#[derive(Debug, Clone)]
pub struct EwmaCthldPredictor {
    alpha: f64,
    prediction: Option<f64>,
}

impl EwmaCthldPredictor {
    /// Creates a predictor with smoothing constant `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self {
            alpha,
            prediction: None,
        }
    }

    /// The paper's configuration (α = 0.8).
    pub fn paper() -> Self {
        Self::new(0.8)
    }

    /// Seeds the first prediction (the paper uses 5-fold cross-validation
    /// on the first training set). A non-finite seed carries no information
    /// and is ignored — the prediction state is left untouched, so the
    /// predictor can never hold a NaN.
    pub fn initialize(&mut self, cthld: f64) {
        if !cthld.is_finite() {
            return;
        }
        self.prediction = Some(cthld.clamp(0.0, 1.0));
    }

    /// The cThld to use for the upcoming week (`None` before
    /// initialization).
    pub fn predict(&self) -> Option<f64> {
        self.prediction
    }

    /// Folds in the best cThld of the week that just ended, producing the
    /// next week's prediction. A non-finite input is ignored (NaN would
    /// otherwise survive the clamp and poison every later prediction);
    /// the current prediction — or the forest default 0.5 before
    /// initialization — is returned unchanged in that case.
    pub fn update(&mut self, best_cthld: f64) -> f64 {
        if !best_cthld.is_finite() {
            return self.prediction.unwrap_or(0.5);
        }
        let next = match self.prediction {
            None => best_cthld,
            Some(prev) => self.alpha * best_cthld + (1.0 - self.alpha) * prev,
        };
        let next = next.clamp(0.0, 1.0);
        self.prediction = Some(next);
        next
    }
}

/// The candidate grid of §4.5.2: "we evaluate 1000 cThld candidates in a
/// range of [0, 1]" with 0.001 granularity.
pub fn cthld_candidates() -> impl Iterator<Item = f64> {
    (0..=1000).map(|i| i as f64 / 1000.0)
}

/// Average PC-Score of each cThld candidate over scored samples: the core
/// of the 5-fold method. `scores`/`truth` are one fold's test data.
fn fold_pc_scores(scores: &[f64], truth: &[bool], pref: &Preference) -> Vec<f64> {
    // Sort descending; prefix true-positive counts.
    let mut pairs: Vec<(f64, bool)> = scores.iter().copied().zip(truth.iter().copied()).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    let total_pos = pairs.iter().filter(|(_, t)| *t).count() as f64;
    let mut prefix_tp = Vec::with_capacity(pairs.len() + 1);
    prefix_tp.push(0.0);
    for (_, t) in &pairs {
        prefix_tp.push(prefix_tp.last().unwrap() + f64::from(u8::from(*t)));
    }

    cthld_candidates()
        .map(|c| {
            // Number of samples with score >= c (pairs sorted descending).
            let count = pairs.partition_point(|(s, _)| *s >= c);
            let tp = prefix_tp[count];
            let recall = if total_pos == 0.0 {
                1.0
            } else {
                tp / total_pos
            };
            let precision = if count == 0 { 1.0 } else { tp / count as f64 };
            pc_score(recall, precision, pref)
        })
        .collect()
}

/// 5-fold cross-validated cThld selection (§4.5.2): for each fold, train on
/// the other folds and score the held-out block; pick the candidate with
/// the best average PC-Score. Returns 0.5 (the default) when the training
/// set is unusable (e.g. no positives at all).
pub fn five_fold_cthld(train: &Dataset, pref: &Preference, params: &RandomForestParams) -> f64 {
    let k = 5usize;
    if train.len() < k * 2 || train.positives() == 0 || train.positives() == train.len() {
        return 0.5;
    }
    let mut sums = vec![0.0; 1001];
    let mut used_folds = 0usize;
    for fold in k_fold(train.len(), k) {
        let fit = train.subset(&fold.train);
        if fit.positives() == 0 {
            continue;
        }
        let mut forest = RandomForest::new(params.clone());
        forest.fit(&fit);
        let test = train.slice(fold.test.clone());
        let scores: Vec<f64> = (0..test.len()).map(|i| forest.score(test.row(i))).collect();
        let pc = fold_pc_scores(&scores, test.labels(), pref);
        for (s, p) in sums.iter_mut().zip(pc) {
            *s += p;
        }
        used_folds += 1;
    }
    if used_folds == 0 {
        return 0.5;
    }
    // Many candidates often tie at the maximum (e.g. on cleanly separable
    // folds every threshold in the margin is equally good); take the median
    // of the tied range for a robust, centered choice.
    let max = sums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let tied: Vec<usize> = sums
        .iter()
        .enumerate()
        .filter(|(_, &s)| s >= max - 1e-9)
        .map(|(i, _)| i)
        .collect();
    tied[tied.len() / 2] as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_initialization_and_update() {
        let mut p = EwmaCthldPredictor::paper();
        assert_eq!(p.predict(), None);
        p.initialize(0.5);
        assert_eq!(p.predict(), Some(0.5));
        // 0.8 * 0.9 + 0.2 * 0.5 = 0.82.
        let next = p.update(0.9);
        assert!((next - 0.82).abs() < 1e-12);
        assert_eq!(p.predict(), Some(next));
    }

    #[test]
    fn ewma_without_init_adopts_first_best() {
        let mut p = EwmaCthldPredictor::paper();
        assert_eq!(p.update(0.7), 0.7);
    }

    #[test]
    fn ewma_tracks_drifting_best_cthlds() {
        let mut p = EwmaCthldPredictor::paper();
        p.initialize(0.1);
        for _ in 0..10 {
            p.update(0.9);
        }
        assert!(p.predict().unwrap() > 0.85);
    }

    #[test]
    fn predictions_stay_in_unit_interval() {
        let mut p = EwmaCthldPredictor::new(1.0);
        p.update(5.0);
        assert_eq!(p.predict(), Some(1.0));
    }

    #[test]
    fn non_finite_inputs_are_ignored() {
        let mut p = EwmaCthldPredictor::paper();
        for junk in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(p.update(junk), 0.5, "uninitialized fallback");
            assert_eq!(p.predict(), None);
            p.initialize(junk);
            assert_eq!(p.predict(), None);
        }
        p.initialize(0.4);
        for junk in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(p.update(junk), 0.4);
            assert_eq!(p.predict(), Some(0.4));
            p.initialize(junk);
            assert_eq!(p.predict(), Some(0.4));
        }
    }

    #[test]
    fn candidates_cover_unit_interval_finely() {
        let c: Vec<f64> = cthld_candidates().collect();
        assert_eq!(c.len(), 1001);
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1000], 1.0);
        assert!((c[1] - 0.001).abs() < 1e-12);
    }

    #[test]
    fn fold_pc_scores_peak_at_separating_threshold() {
        let pref = Preference::moderate();
        // Scores separate perfectly at 0.55.
        let scores = [0.9, 0.8, 0.7, 0.6, 0.4, 0.3, 0.2, 0.1];
        let truth = [true, true, true, true, false, false, false, false];
        let pc = fold_pc_scores(&scores, &truth, &pref);
        let best = pc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as f64
            / 1000.0;
        assert!(best > 0.4 && best <= 0.6, "best {best}");
    }

    #[test]
    fn five_fold_finds_a_sane_cthld_on_separable_data() {
        let mut d = Dataset::new(1);
        // Label depends on the feature with a clean margin around 5.
        for block in 0..5 {
            for i in 0..40 {
                let v = (i % 10) as f64 + (block % 2) as f64 * 0.1;
                d.push(&[v], v >= 5.0);
            }
        }
        let params = RandomForestParams {
            n_trees: 10,
            ..Default::default()
        };
        let c = five_fold_cthld(&d, &Preference::moderate(), &params);
        assert!(c > 0.05 && c < 0.95, "cthld {c}");
    }

    #[test]
    fn degenerate_training_sets_return_default() {
        let mut all_normal = Dataset::new(1);
        for i in 0..100 {
            all_normal.push(&[i as f64], false);
        }
        let params = RandomForestParams {
            n_trees: 4,
            ..Default::default()
        };
        assert_eq!(
            five_fold_cthld(&all_normal, &Preference::moderate(), &params),
            0.5
        );
    }
}
