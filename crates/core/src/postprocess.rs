//! Post-processing of point-level verdicts (§6 "Anomaly duration").
//!
//! The paper deliberately detects at point granularity and notes: "it is
//! relatively easy to implement a duration filter based upon the point-level
//! anomalies we detected. For example, if operators are only interested in
//! continuous anomalies that last for more than 5 minutes, one can solve it
//! through a simple threshold filter." This module provides that filter,
//! plus the aggregation of point verdicts into operator-facing alerts.

use opprentice_timeseries::AnomalyWindow;

/// Suppresses anomaly runs shorter than a minimum duration.
///
/// Feed point verdicts in time order; the filter delays its output by up to
/// `min_points − 1` points (it cannot know a run's length until the run
/// either reaches the minimum or ends). [`DurationFilter::observe`] returns
/// the verdicts that became final with this point, oldest first.
#[derive(Debug, Clone)]
pub struct DurationFilter {
    min_points: usize,
    /// Length of the currently pending anomaly run.
    pending: usize,
}

impl DurationFilter {
    /// Creates a filter passing only runs of at least `min_points`
    /// consecutive anomalous points.
    ///
    /// # Panics
    ///
    /// Panics if `min_points == 0`.
    pub fn new(min_points: usize) -> Self {
        assert!(min_points > 0, "min_points must be positive");
        Self {
            min_points,
            pending: 0,
        }
    }

    /// Feeds one point verdict; returns the finalized verdicts released by
    /// this point (possibly empty while a short run is still pending).
    pub fn observe(&mut self, anomalous: bool) -> Vec<bool> {
        if anomalous {
            self.pending += 1;
            if self.pending == self.min_points {
                // The run just qualified: release it all.
                return vec![true; self.min_points];
            }
            if self.pending > self.min_points {
                return vec![true];
            }
            Vec::new() // still pending
        } else {
            let mut out = Vec::new();
            if self.pending > 0 && self.pending < self.min_points {
                // The run ended too short: suppress it.
                out.extend(std::iter::repeat_n(false, self.pending));
            }
            self.pending = 0;
            out.push(false);
            out
        }
    }

    /// Flushes any pending (short, therefore suppressed) run at end of
    /// stream.
    pub fn finish(&mut self) -> Vec<bool> {
        let out = if self.pending > 0 && self.pending < self.min_points {
            vec![false; self.pending]
        } else {
            Vec::new()
        };
        self.pending = 0;
        out
    }

    /// Applies the filter to a whole verdict sequence at once.
    pub fn apply(min_points: usize, verdicts: &[bool]) -> Vec<bool> {
        let mut f = DurationFilter::new(min_points);
        let mut out = Vec::with_capacity(verdicts.len());
        for &v in verdicts {
            out.extend(f.observe(v));
        }
        out.extend(f.finish());
        out
    }
}

/// One operator-facing alert: a maximal run of anomalous points with its
/// peak anomaly probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The anomalous window, in point indices.
    pub window: AnomalyWindow,
    /// Highest anomaly probability inside the window.
    pub peak_probability: f64,
}

/// Groups point verdicts (with their probabilities) into alerts — what a
/// paging system would actually send. Points without a verdict
/// (`None`, e.g. warm-up) break runs.
pub fn group_alerts(probabilities: &[Option<f64>], cthld: f64) -> Vec<Alert> {
    let mut alerts = Vec::new();
    let mut run_start: Option<usize> = None;
    let mut peak = 0.0f64;
    for (i, p) in probabilities.iter().enumerate() {
        let anomalous = p.is_some_and(|p| p >= cthld);
        match (anomalous, run_start) {
            (true, None) => {
                run_start = Some(i);
                peak = p.expect("anomalous implies Some");
            }
            (true, Some(_)) => peak = peak.max(p.expect("anomalous implies Some")),
            (false, Some(s)) => {
                alerts.push(Alert {
                    window: AnomalyWindow::new(s, i),
                    peak_probability: peak,
                });
                run_start = None;
            }
            (false, None) => {}
        }
    }
    if let Some(s) = run_start {
        alerts.push(Alert {
            window: AnomalyWindow::new(s, probabilities.len()),
            peak_probability: peak,
        });
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_runs_are_suppressed() {
        let input = [false, true, true, false, false];
        let out = DurationFilter::apply(3, &input);
        assert_eq!(out, vec![false; 5]);
    }

    #[test]
    fn long_runs_pass_through() {
        let input = [false, true, true, true, false];
        let out = DurationFilter::apply(3, &input);
        assert_eq!(out, vec![false, true, true, true, false]);
    }

    #[test]
    fn exact_minimum_passes() {
        let out = DurationFilter::apply(2, &[true, true]);
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn trailing_short_run_is_suppressed_at_finish() {
        let out = DurationFilter::apply(3, &[false, true, true]);
        assert_eq!(out, vec![false, false, false]);
    }

    #[test]
    fn min_one_is_identity() {
        let input = [true, false, true, true, false];
        assert_eq!(DurationFilter::apply(1, &input), input.to_vec());
    }

    #[test]
    fn output_length_always_matches_input_length() {
        for pattern in 0u32..64 {
            let input: Vec<bool> = (0..6).map(|b| pattern & (1 << b) != 0).collect();
            for min in 1..=4 {
                assert_eq!(
                    DurationFilter::apply(min, &input).len(),
                    6,
                    "pattern {pattern} min {min}"
                );
            }
        }
    }

    #[test]
    fn streaming_matches_batch() {
        let input = [true, true, false, true, true, true, false, true];
        let batch = DurationFilter::apply(2, &input);
        let mut f = DurationFilter::new(2);
        let mut streamed = Vec::new();
        for &v in &input {
            streamed.extend(f.observe(v));
        }
        streamed.extend(f.finish());
        assert_eq!(streamed, batch);
    }

    #[test]
    fn group_alerts_builds_windows_with_peaks() {
        let probs = vec![Some(0.1), Some(0.8), Some(0.9), Some(0.2), None, Some(0.7)];
        let alerts = group_alerts(&probs, 0.6);
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].window, AnomalyWindow::new(1, 3));
        assert_eq!(alerts[0].peak_probability, 0.9);
        assert_eq!(alerts[1].window, AnomalyWindow::new(5, 6));
        assert_eq!(alerts[1].peak_probability, 0.7);
    }

    #[test]
    fn group_alerts_handles_trailing_run_and_empty_input() {
        assert!(group_alerts(&[], 0.5).is_empty());
        let alerts = group_alerts(&[Some(0.9), Some(0.95)], 0.5);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window, AnomalyWindow::new(0, 2));
    }

    #[test]
    fn warm_up_points_break_runs() {
        let probs = vec![Some(0.9), None, Some(0.9)];
        let alerts = group_alerts(&probs, 0.5);
        assert_eq!(alerts.len(), 2);
    }
}
