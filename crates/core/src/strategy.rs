//! Training-set strategies (Table 2).
//!
//! | ID | Training set | Test set |
//! |----|--------------|----------|
//! | I1 | all historical data | 1-week moving window |
//! | I4 | all historical data | 4-week moving window |
//! | R4 | recent 8-week data | 4-week moving window |
//! | F4 | first 8-week data | 4-week moving window |
//!
//! "The test sets all start from the 9th week and move 1 week for each
//! step." I1/I4 are *incremental retraining* — the fashion of Opprentice —
//! which §5.4 shows outperforming the fixed (F) and sliding (R) variants.

use std::ops::Range;

/// How the training window is chosen relative to a test window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingStrategy {
    /// All data before the test window (incremental retraining, I*).
    AllHistory,
    /// The most recent `n` weeks before the test window (R*).
    RecentWeeks(usize),
    /// The first `n` weeks of the data, fixed forever (F*).
    FirstWeeks(usize),
}

impl TrainingStrategy {
    /// Table 2's row labels for the 4-week test variants.
    pub fn table2_id(&self, test_weeks: usize) -> String {
        let letter = match self {
            TrainingStrategy::AllHistory => "I",
            TrainingStrategy::RecentWeeks(_) => "R",
            TrainingStrategy::FirstWeeks(_) => "F",
        };
        format!("{letter}{test_weeks}")
    }

    /// The training week range for a test window starting at
    /// `test_start_week` (0-based).
    pub fn train_weeks(&self, test_start_week: usize) -> Range<usize> {
        match *self {
            TrainingStrategy::AllHistory => 0..test_start_week,
            TrainingStrategy::RecentWeeks(n) => test_start_week.saturating_sub(n)..test_start_week,
            TrainingStrategy::FirstWeeks(n) => 0..n.min(test_start_week),
        }
    }
}

/// The evaluation plan: the paper fixes 8 initial training weeks, test sets
/// starting at week 9 (0-based week 8), moving one week per step.
#[derive(Debug, Clone, Copy)]
pub struct EvalPlan {
    /// Weeks reserved as initial training data (8 in the paper).
    pub initial_train_weeks: usize,
    /// Test window length in weeks (1 for I1, 4 for I4/R4/F4).
    pub test_weeks: usize,
}

impl EvalPlan {
    /// The paper's I1 plan: 8 initial weeks, 1-week test windows.
    pub fn weekly() -> Self {
        Self {
            initial_train_weeks: 8,
            test_weeks: 1,
        }
    }

    /// The paper's 4-week-window plan (I4/R4/F4).
    pub fn four_week() -> Self {
        Self {
            initial_train_weeks: 8,
            test_weeks: 4,
        }
    }

    /// All test windows (week ranges) available in `total_weeks` of data.
    pub fn test_windows(&self, total_weeks: usize) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut start = self.initial_train_weeks;
        while start + self.test_weeks <= total_weeks {
            out.push(start..start + self.test_weeks);
            start += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_windows_start_at_week_9_and_slide_weekly() {
        let plan = EvalPlan::weekly();
        let ws = plan.test_windows(12);
        assert_eq!(ws, vec![8..9, 9..10, 10..11, 11..12]);
    }

    #[test]
    fn four_week_windows_fit_within_data() {
        let plan = EvalPlan::four_week();
        let ws = plan.test_windows(16);
        assert_eq!(ws.first(), Some(&(8..12)));
        assert_eq!(ws.last(), Some(&(12..16)));
        assert_eq!(ws.len(), 5);
    }

    #[test]
    fn too_short_data_has_no_windows() {
        assert!(EvalPlan::four_week().test_windows(10).is_empty());
        assert_eq!(EvalPlan::weekly().test_windows(9).len(), 1);
    }

    #[test]
    fn all_history_grows_with_time() {
        let s = TrainingStrategy::AllHistory;
        assert_eq!(s.train_weeks(8), 0..8);
        assert_eq!(s.train_weeks(12), 0..12);
    }

    #[test]
    fn recent_weeks_slides() {
        let s = TrainingStrategy::RecentWeeks(8);
        assert_eq!(s.train_weeks(8), 0..8);
        assert_eq!(s.train_weeks(12), 4..12);
    }

    #[test]
    fn first_weeks_is_fixed() {
        let s = TrainingStrategy::FirstWeeks(8);
        assert_eq!(s.train_weeks(8), 0..8);
        assert_eq!(s.train_weeks(12), 0..8);
        // Degenerate early case: cannot train on future data.
        assert_eq!(s.train_weeks(5), 0..5);
    }

    #[test]
    fn table2_ids() {
        assert_eq!(TrainingStrategy::AllHistory.table2_id(1), "I1");
        assert_eq!(TrainingStrategy::AllHistory.table2_id(4), "I4");
        assert_eq!(TrainingStrategy::RecentWeeks(8).table2_id(4), "R4");
        assert_eq!(TrainingStrategy::FirstWeeks(8).table2_id(4), "F4");
    }
}
