//! Errors surfaced by the pipeline's ingestion API.
//!
//! The serving layer feeds [`crate::Opprentice`] from untrusted socket
//! input, so misuse must surface as values, not panics: every condition a
//! remote client can trigger maps to a [`PipelineError`] that the protocol
//! layer renders as an `ERR` line while the process keeps running.

/// A rejected pipeline operation. Each variant carries the numbers needed
/// to render an actionable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineError {
    /// `ingest_history` was called after points had been observed.
    HistoryAfterObservations {
        /// How many points had already been observed.
        observed: usize,
    },
    /// The history series was sampled at a different interval than the
    /// pipeline was configured for.
    IntervalMismatch {
        /// The pipeline's configured interval (seconds).
        expected: u32,
        /// The series' interval (seconds).
        got: u32,
    },
    /// History series and labels disagree in length.
    LengthMismatch {
        /// Points in the series.
        series: usize,
        /// Flags in the labels.
        labels: usize,
    },
    /// More labels arrived than there are unlabeled observed points.
    LabelsBeyondData {
        /// Points observed so far.
        observed: usize,
        /// Points already labeled.
        labeled: usize,
        /// Flags in the rejected batch.
        incoming: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::HistoryAfterObservations { observed } => {
                write!(
                    f,
                    "history must be ingested first ({observed} points already observed)"
                )
            }
            PipelineError::IntervalMismatch { expected, got } => {
                write!(
                    f,
                    "interval mismatch: pipeline uses {expected}s, series uses {got}s"
                )
            }
            PipelineError::LengthMismatch { series, labels } => {
                write!(
                    f,
                    "labels/series length mismatch: {series} points vs {labels} flags"
                )
            }
            PipelineError::LabelsBeyondData {
                observed,
                labeled,
                incoming,
            } => {
                write!(
                    f,
                    "labels beyond observed data: {incoming} flags but only {} unlabeled points",
                    observed.saturating_sub(*labeled)
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_numbers() {
        let e = PipelineError::LabelsBeyondData {
            observed: 10,
            labeled: 4,
            incoming: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('6'), "{msg}");
        let e = PipelineError::IntervalMismatch {
            expected: 60,
            got: 300,
        };
        assert!(e.to_string().contains("60") && e.to_string().contains("300"));
    }
}
