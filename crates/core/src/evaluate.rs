//! The walk-forward evaluation engine behind §5's experiments.
//!
//! Given a feature matrix and ground truth, the evaluator replays the
//! paper's protocol: test windows start at the 9th week and slide one week
//! per step (Table 2); for each window a random forest is trained on the
//! strategy-selected history and scores the window's points. On top of the
//! per-window scores it derives PR curves, AUCPR, oracle best cThlds, and
//! the 4-week moving-window accuracy series of Fig. 13.

use crate::cthld::{best_cthld, Preference};
use crate::features::FeatureMatrix;
use crate::strategy::{EvalPlan, TrainingStrategy};
use opprentice_learn::metrics::{pr_curve, precision_recall, PrPoint};
use opprentice_learn::{auc_pr, Classifier, RandomForest, RandomForestParams};
use opprentice_timeseries::Labels;
use std::ops::Range;

/// One test window's results.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// The test window, in weeks (0-based).
    pub test_weeks: Range<usize>,
    /// The test window, in point indices.
    pub points: Range<usize>,
    /// Per-point anomaly scores (`None` = unusable point), aligned with
    /// `points`.
    pub scores: Vec<Option<f64>>,
    /// The window's PR curve.
    pub curve: Vec<PrPoint>,
    /// Area under the window's PR curve.
    pub auc_pr: f64,
}

impl WindowOutcome {
    /// The oracle ("best case") cThld of this window under a preference.
    pub fn best_cthld(&self, pref: &Preference) -> Option<f64> {
        best_cthld(&self.curve, pref)
    }
}

/// Walk-forward evaluator over a precomputed feature matrix.
pub struct Evaluator<'a> {
    matrix: &'a FeatureMatrix,
    truth: &'a Labels,
    points_per_week: usize,
    /// Forest hyperparameters used for every retraining round.
    pub forest_params: RandomForestParams,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if matrix and truth lengths differ or `points_per_week == 0`.
    pub fn new(matrix: &'a FeatureMatrix, truth: &'a Labels, points_per_week: usize) -> Self {
        assert_eq!(matrix.len(), truth.len(), "matrix/labels length mismatch");
        assert!(points_per_week > 0, "points_per_week must be positive");
        Self {
            matrix,
            truth,
            points_per_week,
            forest_params: RandomForestParams::default(),
        }
    }

    /// Whole weeks available.
    pub fn total_weeks(&self) -> usize {
        self.matrix.len() / self.points_per_week
    }

    /// Points per week.
    pub fn points_per_week(&self) -> usize {
        self.points_per_week
    }

    /// The ground truth (aligned with the matrix).
    pub fn truth(&self) -> &Labels {
        self.truth
    }

    /// Trains a forest on the usable points of the given week range.
    /// Returns `None` when the range yields no usable training data.
    pub fn train_forest(&self, train_weeks: Range<usize>) -> Option<RandomForest> {
        let points =
            train_weeks.start * self.points_per_week..train_weeks.end * self.points_per_week;
        let (ds, _) = self.matrix.dataset(self.truth, points);
        if ds.is_empty() || ds.positives() == 0 {
            return None;
        }
        let mut forest = RandomForest::new(self.forest_params.clone());
        forest.fit(&ds);
        Some(forest)
    }

    /// Scores every point of `points` with a trained forest (`None` for
    /// unusable points).
    pub fn score_points(&self, forest: &RandomForest, points: Range<usize>) -> Vec<Option<f64>> {
        points
            .map(|i| {
                self.matrix
                    .usable(i)
                    .then(|| forest.score(self.matrix.row(i)))
            })
            .collect()
    }

    /// Runs the full walk-forward protocol for a strategy and plan.
    pub fn run(&self, strategy: TrainingStrategy, plan: EvalPlan) -> Vec<WindowOutcome> {
        let mut out = Vec::new();
        for test_weeks in plan.test_windows(self.total_weeks()) {
            let train_weeks = strategy.train_weeks(test_weeks.start);
            let points =
                test_weeks.start * self.points_per_week..test_weeks.end * self.points_per_week;
            let scores = match self.train_forest(train_weeks) {
                Some(forest) => self.score_points(&forest, points.clone()),
                None => vec![None; points.len()],
            };
            let flags = &self.truth.flags()[points.clone()];
            let curve = pr_curve(&scores, flags);
            let auc = auc_pr(&curve);
            out.push(WindowOutcome {
                test_weeks,
                points,
                scores,
                curve,
                auc_pr: auc,
            });
        }
        out
    }

    /// The PR curve of any score stream over the test span (week
    /// `from_week` to the end) — used for basic detectors and static
    /// combiners, which need no training but must be compared on the same
    /// test data as the forest (§5.3.1: "all the above approaches detect
    /// the data starting from the 9th week").
    pub fn curve_of_scores(&self, scores: &[Option<f64>], from_week: usize) -> Vec<PrPoint> {
        let start = from_week * self.points_per_week;
        assert!(
            scores.len() >= self.matrix.len(),
            "scores shorter than data"
        );
        pr_curve(
            &scores[start..self.matrix.len()],
            &self.truth.flags()[start..self.matrix.len()],
        )
    }
}

/// A recall/precision measurement of one moving window (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingWindowPoint {
    /// Window start, as a point index into the evaluated span.
    pub start: usize,
    /// Recall over the window.
    pub recall: f64,
    /// Precision over the window.
    pub precision: f64,
}

/// Slides a window of `window_points` by `step_points` over an evaluated
/// span, computing recall/precision of thresholded detections. `scores`,
/// `cthlds` and `truth` are per-point and equally long; unusable points
/// (score `None`) are skipped. Windows without any true anomaly are
/// dropped, matching the paper's averaging over windows where accuracy is
/// defined.
pub fn moving_window_metrics(
    scores: &[Option<f64>],
    cthlds: &[f64],
    truth: &[bool],
    window_points: usize,
    step_points: usize,
) -> Vec<MovingWindowPoint> {
    assert_eq!(scores.len(), truth.len(), "scores/truth mismatch");
    assert_eq!(scores.len(), cthlds.len(), "scores/cthlds mismatch");
    assert!(
        window_points > 0 && step_points > 0,
        "window and step must be positive"
    );

    let mut out = Vec::new();
    let mut start = 0usize;
    while start + window_points <= scores.len() {
        let range = start..start + window_points;
        let mut predicted = Vec::with_capacity(window_points);
        let mut actual = Vec::with_capacity(window_points);
        for i in range {
            if let Some(s) = scores[i] {
                predicted.push(s >= cthlds[i]);
                actual.push(truth[i]);
            }
        }
        if actual.iter().any(|&t| t) {
            let (recall, precision) = precision_recall(&predicted, &actual);
            out.push(MovingWindowPoint {
                start,
                recall,
                precision,
            });
        }
        start += step_points;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic feature matrix where feature 0 is a clean anomaly signal
    /// and features 1..4 are noise; 12 "weeks" of 100 points each.
    fn synthetic() -> (FeatureMatrix, Labels) {
        let ppw = 100;
        let weeks = 12;
        let n = ppw * weeks;
        let mut matrix = FeatureMatrix::new((0..5).map(|i| format!("f{i}")).collect());
        let mut labels = Labels::all_normal(n);
        for i in 0..n {
            let anomalous = i % 37 == 5 || i % 37 == 6;
            if anomalous {
                labels.mark(i);
            }
            let signal = if anomalous {
                8.0 + ((i % 5) as f64)
            } else {
                (i % 4) as f64
            };
            let row = [
                Some(signal),
                Some(((i * 13) % 11) as f64),
                Some(((i * 7) % 5) as f64),
                Some(((i * 3) % 9) as f64),
                Some(((i * 31) % 13) as f64),
            ];
            matrix.push_row(&row, true);
        }
        (matrix, labels)
    }

    fn small_params() -> RandomForestParams {
        RandomForestParams {
            n_trees: 12,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn walk_forward_produces_one_outcome_per_window() {
        let (m, l) = synthetic();
        let mut ev = Evaluator::new(&m, &l, 100);
        ev.forest_params = small_params();
        let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
        assert_eq!(outcomes.len(), 4); // weeks 8..12
        assert_eq!(outcomes[0].test_weeks, 8..9);
        assert_eq!(outcomes[0].points, 800..900);
        assert_eq!(outcomes[0].scores.len(), 100);
    }

    #[test]
    fn learnable_signal_gives_high_auc() {
        let (m, l) = synthetic();
        let mut ev = Evaluator::new(&m, &l, 100);
        ev.forest_params = small_params();
        let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
        for o in &outcomes {
            assert!(o.auc_pr > 0.9, "week {:?}: auc {}", o.test_weeks, o.auc_pr);
        }
    }

    #[test]
    fn best_cthld_is_within_unit_interval() {
        let (m, l) = synthetic();
        let mut ev = Evaluator::new(&m, &l, 100);
        ev.forest_params = small_params();
        let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
        let pref = Preference::moderate();
        for o in &outcomes {
            let c = o.best_cthld(&pref).unwrap();
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn strategies_select_different_training_data() {
        let (m, l) = synthetic();
        let mut ev = Evaluator::new(&m, &l, 100);
        ev.forest_params = small_params();
        // All three run to completion and produce comparable outcomes.
        for strat in [
            TrainingStrategy::AllHistory,
            TrainingStrategy::RecentWeeks(8),
            TrainingStrategy::FirstWeeks(8),
        ] {
            let outcomes = ev.run(strat, EvalPlan::four_week());
            assert_eq!(outcomes.len(), 1); // weeks 8..12 only
            assert!(outcomes[0].auc_pr > 0.5);
        }
    }

    #[test]
    fn moving_window_metrics_computes_per_window_pr() {
        let scores = vec![
            Some(0.9),
            Some(0.1),
            Some(0.8),
            Some(0.2),
            Some(0.7),
            Some(0.3),
        ];
        let cthlds = vec![0.5; 6];
        let truth = vec![true, false, true, false, false, true];
        let points = moving_window_metrics(&scores, &cthlds, &truth, 3, 3);
        assert_eq!(points.len(), 2);
        // First window: predictions T,F,T vs truth T,F,T => perfect.
        assert_eq!(points[0].recall, 1.0);
        assert_eq!(points[0].precision, 1.0);
        // Second window: predictions F,T,F vs truth F,F,T => r=0, p=0.
        assert_eq!(points[1].recall, 0.0);
        assert_eq!(points[1].precision, 0.0);
    }

    #[test]
    fn moving_window_skips_anomaly_free_windows() {
        let scores = vec![Some(0.9); 6];
        let cthlds = vec![0.5; 6];
        let truth = vec![false; 6];
        assert!(moving_window_metrics(&scores, &cthlds, &truth, 3, 3).is_empty());
    }

    #[test]
    fn unusable_points_are_excluded_from_window_metrics() {
        let scores = vec![Some(0.9), None, Some(0.9)];
        let cthlds = vec![0.5; 3];
        let truth = vec![true, true, false];
        let points = moving_window_metrics(&scores, &cthlds, &truth, 3, 3);
        assert_eq!(points.len(), 1);
        // The None point's (missed) anomaly is not counted.
        assert_eq!(points[0].recall, 1.0);
        assert_eq!(points[0].precision, 0.5);
    }
}
