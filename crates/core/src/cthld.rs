//! cThld configuration (§4.5.1): turning an accuracy preference into a
//! classification threshold.
//!
//! "Configuring cThlds is a general method to trade off between precision
//! and recall … we develop a simple but effective accuracy metric based on
//! F-Score, namely PC-Score (preference-centric score), to explicitly take
//! operators' preference into account when deciding cThlds."

use opprentice_learn::metrics::{f_score, PrPoint};

/// The operators' accuracy preference: "recall ≥ recall and
/// precision ≥ precision" (§2.2). The operators in the paper specified
/// 0.66 / 0.66.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Preference {
    /// Minimum acceptable recall.
    pub recall: f64,
    /// Minimum acceptable precision.
    pub precision: f64,
}

impl Preference {
    /// The paper's studied preference: recall ≥ 0.66 and precision ≥ 0.66.
    pub fn moderate() -> Self {
        Self {
            recall: 0.66,
            precision: 0.66,
        }
    }

    /// §5.5's "sensitive-to-precision": recall ≥ 0.6 and precision ≥ 0.8.
    pub fn sensitive_to_precision() -> Self {
        Self {
            recall: 0.6,
            precision: 0.8,
        }
    }

    /// §5.5's "sensitive-to-recall": recall ≥ 0.8 and precision ≥ 0.6.
    pub fn sensitive_to_recall() -> Self {
        Self {
            recall: 0.8,
            precision: 0.6,
        }
    }

    /// Whether an operating point satisfies the preference.
    pub fn satisfied_by(&self, recall: f64, precision: f64) -> bool {
        recall >= self.recall && precision >= self.precision
    }

    /// The preference box scaled down by `ratio ≥ 1` (Fig. 12's line
    /// charts "lower" the preference by scaling the box up; requiring
    /// `r ≥ R/ratio` is the same box growth).
    pub fn scaled(&self, ratio: f64) -> Preference {
        Preference {
            recall: self.recall / ratio,
            precision: self.precision / ratio,
        }
    }
}

/// The PC-Score of an operating point (§4.5.1): its F-Score, plus an
/// incentive constant of 1 when the point satisfies the preference — which
/// guarantees satisfying points always outrank non-satisfying ones.
pub fn pc_score(recall: f64, precision: f64, pref: &Preference) -> f64 {
    let f = f_score(recall, precision);
    if pref.satisfied_by(recall, precision) {
        f + 1.0
    } else {
        f
    }
}

/// The cThld-selection metrics compared in §5.5 / Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CthldMetric {
    /// The random forest's default threshold, 0.5.
    Default,
    /// Maximize the F-Score.
    FScore,
    /// SD(1,1) [46]: minimize the Euclidean distance to (recall, precision)
    /// = (1, 1).
    Sd11,
    /// Maximize the PC-Score for a preference — Opprentice's choice.
    PcScore(Preference),
}

/// Selects the operating point of `curve` under `metric`. Returns `None`
/// for an empty curve.
pub fn select_operating_point(curve: &[PrPoint], metric: CthldMetric) -> Option<PrPoint> {
    if curve.is_empty() {
        return None;
    }
    match metric {
        CthldMetric::Default => {
            // Operating at cThld 0.5 admits every point scored >= 0.5: the
            // lowest-threshold curve point still at or above 0.5, or "no
            // detections" when the whole curve sits below.
            curve
                .iter()
                .rev()
                .find(|p| p.threshold >= 0.5)
                .copied()
                .or(Some(PrPoint {
                    threshold: 0.5,
                    recall: 0.0,
                    precision: 1.0,
                }))
        }
        CthldMetric::FScore => curve
            .iter()
            .max_by(|a, b| {
                f_score(a.recall, a.precision)
                    .partial_cmp(&f_score(b.recall, b.precision))
                    .expect("finite f-score")
            })
            .copied(),
        CthldMetric::Sd11 => curve
            .iter()
            .min_by(|a, b| {
                let d = |p: &PrPoint| (1.0 - p.recall).powi(2) + (1.0 - p.precision).powi(2);
                d(a).partial_cmp(&d(b)).expect("finite distance")
            })
            .copied(),
        CthldMetric::PcScore(pref) => curve
            .iter()
            .max_by(|a, b| {
                pc_score(a.recall, a.precision, &pref)
                    .partial_cmp(&pc_score(b.recall, b.precision, &pref))
                    .expect("finite pc-score")
            })
            .copied(),
    }
}

/// The best cThld of a curve under the PC-Score (§4.5.2's "best cThld"):
/// the threshold of the PC-Score-optimal point.
pub fn best_cthld(curve: &[PrPoint], pref: &Preference) -> Option<f64> {
    select_operating_point(curve, CthldMetric::PcScore(*pref)).map(|p| p.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t: f64, r: f64, p: f64) -> PrPoint {
        PrPoint {
            threshold: t,
            recall: r,
            precision: p,
        }
    }

    /// A curve shaped like Fig. 6: high precision at low recall, decaying.
    fn fig6_like_curve() -> Vec<PrPoint> {
        vec![
            point(0.95, 0.2, 0.98),
            point(0.80, 0.45, 0.95),
            point(0.60, 0.55, 0.92),
            point(0.45, 0.70, 0.80),
            point(0.30, 0.80, 0.65),
            point(0.15, 0.90, 0.40),
            point(0.05, 1.00, 0.15),
        ]
    }

    #[test]
    fn pc_score_adds_incentive_inside_preference() {
        let pref = Preference::moderate();
        let inside = pc_score(0.7, 0.7, &pref);
        let outside = pc_score(0.99, 0.65, &pref);
        assert!(inside > 1.0);
        assert!(outside < 1.0);
        assert!(inside > outside);
    }

    #[test]
    fn satisfying_points_always_outrank_non_satisfying() {
        let pref = Preference {
            recall: 0.5,
            precision: 0.9,
        };
        // A barely-satisfying point vs a high-F non-satisfying point.
        assert!(pc_score(0.5, 0.9, &pref) > pc_score(0.95, 0.89, &pref));
    }

    #[test]
    fn pc_score_selection_adapts_to_preference() {
        let curve = fig6_like_curve();
        // Preference (1): recall >= 0.75, precision >= 0.6.
        let p1 = select_operating_point(
            &curve,
            CthldMetric::PcScore(Preference {
                recall: 0.75,
                precision: 0.6,
            }),
        )
        .unwrap();
        assert!(p1.recall >= 0.75 && p1.precision >= 0.6, "{p1:?}");
        // Preference (2): recall >= 0.5, precision >= 0.9.
        let p2 = select_operating_point(
            &curve,
            CthldMetric::PcScore(Preference {
                recall: 0.5,
                precision: 0.9,
            }),
        )
        .unwrap();
        assert!(p2.recall >= 0.5 && p2.precision >= 0.9, "{p2:?}");
        assert_ne!(p1.threshold, p2.threshold);
    }

    #[test]
    fn fscore_and_sd11_ignore_the_preference() {
        let curve = fig6_like_curve();
        let f1 = select_operating_point(&curve, CthldMetric::FScore).unwrap();
        let s1 = select_operating_point(&curve, CthldMetric::Sd11).unwrap();
        // Same answer regardless of any preference — they take none.
        assert_eq!(
            f1,
            select_operating_point(&curve, CthldMetric::FScore).unwrap()
        );
        assert_eq!(
            s1,
            select_operating_point(&curve, CthldMetric::Sd11).unwrap()
        );
    }

    #[test]
    fn default_metric_operates_at_half() {
        let curve = fig6_like_curve();
        let d = select_operating_point(&curve, CthldMetric::Default).unwrap();
        assert_eq!(d.threshold, 0.60); // lowest curve threshold >= 0.5
                                       // All-below-0.5 curve: no detections.
        let low = vec![point(0.3, 0.9, 0.9)];
        let d2 = select_operating_point(&low, CthldMetric::Default).unwrap();
        assert_eq!(d2.recall, 0.0);
        assert_eq!(d2.precision, 1.0);
    }

    #[test]
    fn unsatisfiable_preference_still_picks_best_fscore() {
        // §4.5.1: "in the case when a PR curve has no points inside the
        // preference region … it can still choose approximate recall and
        // precision."
        let curve = vec![
            point(0.9, 0.2, 0.3),
            point(0.5, 0.4, 0.25),
            point(0.1, 0.6, 0.2),
        ];
        let pref = Preference {
            recall: 0.95,
            precision: 0.95,
        };
        let chosen = select_operating_point(&curve, CthldMetric::PcScore(pref)).unwrap();
        let f_best = curve
            .iter()
            .map(|p| f_score(p.recall, p.precision))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(f_score(chosen.recall, chosen.precision), f_best);
    }

    #[test]
    fn scaled_preference_grows_the_box() {
        let pref = Preference::moderate();
        let scaled = pref.scaled(2.0);
        assert!(scaled.recall < pref.recall);
        assert!(scaled.satisfied_by(0.4, 0.4));
        assert!(!pref.satisfied_by(0.4, 0.4));
    }

    #[test]
    fn empty_curve_yields_none() {
        assert_eq!(select_operating_point(&[], CthldMetric::FScore), None);
        assert_eq!(best_cthld(&[], &Preference::moderate()), None);
    }
}
