//! Durable snapshots of a full [`Opprentice`] session (OPRF v4).
//!
//! The learn crate's OPRF format persists only the trained trees; a
//! crash-safe serving layer needs the *whole* trained state: the forest,
//! the EWMA cThld prediction, the accumulated operator labels, the model
//! version, and the configuration the session was created with. This
//! module defines version 4 of the `OPRF` container capturing exactly
//! that, plus the write-ahead log sequence number the snapshot corresponds
//! to:
//!
//! ```text
//! magic "OPRF" | version u16 = 4
//! interval u32
//! recall f64 | precision f64 | cthld_alpha f64 | fallback_cthld f64
//! n_trees u32 | sample_fraction f64 | seed u64
//! opt u8 (bit0 max_features, bit1 max_depth, bit2 n_bins) | [u32 each]
//! prediction u8 | [f64]
//! n_observed u64 | wal_seq u64 | model_version u64
//! n_labels u64 | ceil(n_labels/8) bytes, LSB-first
//! forest u8 | [len u32 | OPRF forest bytes]
//! ```
//!
//! (Session containers were v2 before `model_version` existed; v3 is
//! skipped because the learn crate's forest container already uses it, and
//! distinct numbers keep the two formats mutually rejecting.)
//!
//! All integers little-endian. Decoding validates the magic, version, every
//! length against the bytes actually present (so hostile counts cannot
//! drive huge allocations), and rejects trailing bytes. The forest decoder
//! in `opprentice-learn` (currently OPRF v3) naturally rejects v4
//! containers via its version check, and vice versa.
//!
//! Deliberately *not* captured: the detectors' sliding-window state and the
//! feature matrix. Those are rebuilt by replaying the session's write-ahead
//! log (cheap, deterministic), which is what guarantees a restored session
//! scores incoming points identically to one that never crashed.

use crate::cthld::Preference;
use crate::error::PipelineError;
use crate::{Opprentice, OpprenticeConfig};
use bytes::{Buf, BufMut};
use opprentice_learn::persist::PersistError;
use opprentice_learn::{RandomForest, RandomForestParams};
use opprentice_timeseries::Labels;

const MAGIC: &[u8; 4] = b"OPRF";
const VERSION: u16 = 4;

/// Errors produced when decoding or installing a session snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The magic bytes did not match.
    BadMagic,
    /// The container version is not 4.
    UnsupportedVersion(u16),
    /// Bytes remained after the last field.
    TrailingBytes(usize),
    /// A field held a value outside its legal domain.
    BadField(&'static str),
    /// The nested OPRF forest failed to decode.
    Forest(PersistError),
    /// The snapshot disagrees with the session state it was installed into
    /// (the replayed WAL prefix diverged from what was snapshotted).
    StateMismatch(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
            SnapshotError::BadField(name) => write!(f, "snapshot field `{name}` out of domain"),
            SnapshotError::Forest(e) => write!(f, "nested forest: {e}"),
            SnapshotError::StateMismatch(what) => {
                write!(f, "snapshot does not match replayed session state: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<PersistError> for SnapshotError {
    fn from(e: PersistError) -> Self {
        SnapshotError::Forest(e)
    }
}

/// A decoded (or captured) full-session snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// KPI sampling interval in seconds.
    pub interval: u32,
    /// The session's accuracy preference.
    pub preference: Preference,
    /// EWMA smoothing constant.
    pub cthld_alpha: f64,
    /// cThld used before any prediction exists.
    pub fallback_cthld: f64,
    /// Forest hyperparameters (needed to reproduce retraining exactly).
    pub forest_params: RandomForestParams,
    /// The EWMA prediction at snapshot time.
    pub prediction: Option<f64>,
    /// Points observed at snapshot time.
    pub n_observed: u64,
    /// Number of successfully applied WAL commands this snapshot covers.
    pub wal_seq: u64,
    /// The serving model's version at snapshot time (0 = untrained).
    pub model_version: u64,
    /// Operator labels at snapshot time.
    pub labels: Labels,
    /// The trained forest, as OPRF forest bytes (`None` if untrained).
    pub forest: Option<Vec<u8>>,
}

impl SessionSnapshot {
    /// Captures the full trained state of a live pipeline.
    pub fn capture(opp: &Opprentice, wal_seq: u64) -> SessionSnapshot {
        let config = opp.config();
        SessionSnapshot {
            interval: opp.interval(),
            preference: config.preference,
            cthld_alpha: config.cthld_alpha,
            fallback_cthld: config.fallback_cthld,
            forest_params: config.forest.clone(),
            prediction: opp.predicted_cthld(),
            n_observed: opp.observed_len() as u64,
            wal_seq,
            model_version: opp.model_version(),
            labels: opp.labels().clone(),
            forest: opp.forest().map(RandomForest::to_bytes),
        }
    }

    /// The configuration to recreate the pipeline with.
    pub fn config(&self) -> OpprenticeConfig {
        OpprenticeConfig {
            preference: self.preference,
            forest: self.forest_params.clone(),
            cthld_alpha: self.cthld_alpha,
            fallback_cthld: self.fallback_cthld,
        }
    }

    /// Serializes to the OPRF v4 container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u32_le(self.interval);
        out.put_f64_le(self.preference.recall);
        out.put_f64_le(self.preference.precision);
        out.put_f64_le(self.cthld_alpha);
        out.put_f64_le(self.fallback_cthld);
        let p = &self.forest_params;
        out.put_u32_le(p.n_trees as u32);
        out.put_f64_le(p.sample_fraction);
        out.put_u64_le(p.seed);
        let opt = u8::from(p.max_features.is_some())
            | u8::from(p.max_depth.is_some()) << 1
            | u8::from(p.n_bins.is_some()) << 2;
        out.put_u8(opt);
        for field in [p.max_features, p.max_depth, p.n_bins]
            .into_iter()
            .flatten()
        {
            out.put_u32_le(field as u32);
        }
        match self.prediction {
            Some(c) => {
                out.put_u8(1);
                out.put_f64_le(c);
            }
            None => out.put_u8(0),
        }
        out.put_u64_le(self.n_observed);
        out.put_u64_le(self.wal_seq);
        out.put_u64_le(self.model_version);
        let flags = self.labels.flags();
        out.put_u64_le(flags.len() as u64);
        for chunk in flags.chunks(8) {
            let mut byte = 0u8;
            for (i, &f) in chunk.iter().enumerate() {
                byte |= u8::from(f) << i;
            }
            out.put_u8(byte);
        }
        match &self.forest {
            Some(bytes) => {
                out.put_u8(1);
                out.put_u32_le(bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            None => out.put_u8(0),
        }
        out
    }

    /// Decodes an OPRF v4 container. Never panics on hostile input: every
    /// count is validated against the bytes actually present before any
    /// allocation, and trailing bytes are rejected.
    pub fn from_bytes(mut buf: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
        if buf.remaining() < 4 + 2 {
            return Err(SnapshotError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        // Fixed-width prefix: interval + 4 f64 + n_trees + sample_fraction
        // + seed + opt byte.
        if buf.remaining() < 4 + 8 * 4 + 4 + 8 + 8 + 1 {
            return Err(SnapshotError::Truncated);
        }
        let interval = buf.get_u32_le();
        if interval == 0 {
            return Err(SnapshotError::BadField("interval"));
        }
        let recall = buf.get_f64_le();
        let precision = buf.get_f64_le();
        let cthld_alpha = buf.get_f64_le();
        let fallback_cthld = buf.get_f64_le();
        for (value, name) in [
            (recall, "recall"),
            (precision, "precision"),
            (cthld_alpha, "cthld_alpha"),
            (fallback_cthld, "fallback_cthld"),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(SnapshotError::BadField(name));
            }
        }
        let n_trees = buf.get_u32_le() as usize;
        let sample_fraction = buf.get_f64_le();
        if !(sample_fraction.is_finite() && sample_fraction > 0.0) {
            return Err(SnapshotError::BadField("sample_fraction"));
        }
        let seed = buf.get_u64_le();
        let opt = buf.get_u8();
        if opt > 0b111 {
            return Err(SnapshotError::BadField("optional-params bitmap"));
        }
        let mut opt_field = |bit: u8| -> Result<Option<usize>, SnapshotError> {
            if opt & (1 << bit) == 0 {
                return Ok(None);
            }
            if buf.remaining() < 4 {
                return Err(SnapshotError::Truncated);
            }
            Ok(Some(buf.get_u32_le() as usize))
        };
        let max_features = opt_field(0)?;
        let max_depth = opt_field(1)?;
        let n_bins = opt_field(2)?;
        let forest_params = RandomForestParams {
            n_trees,
            max_features,
            sample_fraction,
            max_depth,
            n_bins,
            seed,
        };

        if buf.remaining() < 1 {
            return Err(SnapshotError::Truncated);
        }
        let prediction = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 8 {
                    return Err(SnapshotError::Truncated);
                }
                let c = buf.get_f64_le();
                if !(0.0..=1.0).contains(&c) {
                    return Err(SnapshotError::BadField("prediction"));
                }
                Some(c)
            }
            _ => return Err(SnapshotError::BadField("prediction flag")),
        };

        if buf.remaining() < 8 + 8 + 8 + 8 {
            return Err(SnapshotError::Truncated);
        }
        let n_observed = buf.get_u64_le();
        let wal_seq = buf.get_u64_le();
        let model_version = buf.get_u64_le();
        let n_labels = buf.get_u64_le();
        // A u64 count can claim 2^61 packed bytes; bound it by what is
        // actually in the buffer before allocating anything.
        let packed_len = n_labels.div_ceil(8);
        if packed_len > buf.remaining() as u64 {
            return Err(SnapshotError::Truncated);
        }
        if n_labels > n_observed {
            return Err(SnapshotError::BadField("n_labels"));
        }
        let n_labels = n_labels as usize;
        let mut flags = Vec::with_capacity(n_labels);
        for i in 0..n_labels {
            flags.push(buf[i / 8] >> (i % 8) & 1 == 1);
        }
        buf.advance(packed_len as usize);
        let labels = Labels::from_flags(flags);

        if buf.remaining() < 1 {
            return Err(SnapshotError::Truncated);
        }
        let forest = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 4 {
                    return Err(SnapshotError::Truncated);
                }
                let len = buf.get_u32_le() as usize;
                if len > buf.remaining() {
                    return Err(SnapshotError::Truncated);
                }
                let bytes = buf[..len].to_vec();
                buf.advance(len);
                // Validate eagerly so a corrupt nested forest is caught at
                // load time, not first use.
                RandomForest::from_bytes(&bytes)?;
                Some(bytes)
            }
            _ => return Err(SnapshotError::BadField("forest flag")),
        };

        if buf.has_remaining() {
            return Err(SnapshotError::TrailingBytes(buf.remaining()));
        }
        Ok(SessionSnapshot {
            interval,
            preference: Preference { recall, precision },
            cthld_alpha,
            fallback_cthld,
            forest_params,
            prediction,
            n_observed,
            wal_seq,
            model_version,
            labels,
            forest,
        })
    }

    /// Installs the trained state into a pipeline that has already replayed
    /// the WAL prefix this snapshot covers. Verifies that the replayed
    /// observation/label state agrees with what was snapshotted — a
    /// mismatch means the WAL and snapshot are from different histories.
    pub fn install_into(&self, opp: &mut Opprentice) -> Result<(), SnapshotError> {
        if opp.interval() != self.interval {
            return Err(SnapshotError::StateMismatch("interval"));
        }
        if opp.observed_len() as u64 != self.n_observed {
            return Err(SnapshotError::StateMismatch("observed point count"));
        }
        if opp.labels() != &self.labels {
            return Err(SnapshotError::StateMismatch("operator labels"));
        }
        let forest = match &self.forest {
            Some(bytes) => Some(RandomForest::from_bytes(bytes)?),
            None => None,
        };
        opp.restore_trained_state(forest, self.prediction, self.model_version);
        Ok(())
    }
}

/// Pipeline-level recovery errors: everything that can go wrong rebuilding
/// a session from its WAL + snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// A WAL line failed to re-apply.
    Pipeline(PipelineError),
    /// The snapshot failed to decode or install.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Pipeline(e) => write!(f, "replaying WAL: {e}"),
            RecoveryError::Snapshot(e) => write!(f, "loading snapshot: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<PipelineError> for RecoveryError {
    fn from(e: PipelineError) -> Self {
        RecoveryError::Pipeline(e)
    }
}

impl From<SnapshotError> for RecoveryError {
    fn from(e: SnapshotError) -> Self {
        RecoveryError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprentice_timeseries::TimeSeries;

    const INTERVAL: u32 = 3600;

    fn trained_pipeline() -> Opprentice {
        let n = 28 * 24;
        let mut series = TimeSeries::new(0, INTERVAL);
        let mut labels = Labels::all_normal(0);
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            let anomalous = i % 63 == 50 || i % 63 == 51;
            series.push(if anomalous { base + 120.0 } else { base });
            labels.push(anomalous);
        }
        let config = OpprenticeConfig {
            forest: RandomForestParams {
                n_trees: 10,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut opp = Opprentice::new(INTERVAL, config);
        opp.ingest_history(&series, &labels).unwrap();
        assert!(opp.retrain());
        opp
    }

    #[test]
    fn round_trip_preserves_everything() {
        let opp = trained_pipeline();
        let snap = SessionSnapshot::capture(&opp, 673);
        let bytes = snap.to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.wal_seq, 673);
        assert_eq!(back.n_observed, opp.observed_len() as u64);
        assert_eq!(back.model_version, 1);
    }

    #[test]
    fn untrained_pipeline_round_trips_too() {
        let opp = Opprentice::new(INTERVAL, OpprenticeConfig::default());
        let snap = SessionSnapshot::capture(&opp, 0);
        assert!(snap.forest.is_none());
        assert!(snap.prediction.is_none());
        let back = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn install_restores_identical_scoring() {
        let mut original = trained_pipeline();
        let snap = SessionSnapshot::capture(&original, 0);

        // Rebuild: same config, same observations (as WAL replay would),
        // then install.
        let mut restored = Opprentice::new(INTERVAL, snap.config());
        let n = original.observed_len();
        let mut series = TimeSeries::new(0, INTERVAL);
        let mut labels = Labels::all_normal(0);
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            let anomalous = i % 63 == 50 || i % 63 == 51;
            series.push(if anomalous { base + 120.0 } else { base });
            labels.push(anomalous);
        }
        restored.ingest_history(&series, &labels).unwrap();
        snap.install_into(&mut restored).unwrap();

        let t0 = (n as i64) * i64::from(INTERVAL);
        for (i, v) in [100.0, 400.0, 80.0, 250.0].into_iter().enumerate() {
            let ts = t0 + i as i64 * i64::from(INTERVAL);
            assert_eq!(original.observe(ts, Some(v)), restored.observe(ts, Some(v)));
        }
    }

    #[test]
    fn install_rejects_divergent_state() {
        let opp = trained_pipeline();
        let snap = SessionSnapshot::capture(&opp, 0);
        let mut other = Opprentice::new(INTERVAL, snap.config());
        assert_eq!(
            snap.install_into(&mut other),
            Err(SnapshotError::StateMismatch("observed point count"))
        );
        let mut wrong_interval = Opprentice::new(60, snap.config());
        assert_eq!(
            snap.install_into(&mut wrong_interval),
            Err(SnapshotError::StateMismatch("interval"))
        );
    }

    #[test]
    fn forest_bytes_are_rejected_as_session_snapshots() {
        // Forest files (OPRF v3) and session containers (OPRF v4) share
        // the magic; the version field keeps them mutually rejecting.
        let opp = trained_pipeline();
        let forest_bytes = opp.forest().unwrap().to_bytes();
        assert_eq!(
            SessionSnapshot::from_bytes(&forest_bytes),
            Err(SnapshotError::UnsupportedVersion(3))
        );
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let opp = trained_pipeline();
        let bytes = SessionSnapshot::capture(&opp, 42).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SessionSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let opp = trained_pipeline();
        let mut bytes = SessionSnapshot::capture(&opp, 42).to_bytes();
        bytes.push(0);
        assert_eq!(
            SessionSnapshot::from_bytes(&bytes),
            Err(SnapshotError::TrailingBytes(1))
        );
    }

    #[test]
    fn hostile_label_count_cannot_allocate() {
        let opp = Opprentice::new(INTERVAL, OpprenticeConfig::default());
        let mut bytes = SessionSnapshot::capture(&opp, 0).to_bytes();
        // n_labels sits right before the forest flag at the end: layout ends
        // … wal_seq u64 | model_version u64 | n_labels u64 | forest u8.
        let n = bytes.len();
        bytes[n - 9..n - 1].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(SessionSnapshot::from_bytes(&bytes).is_err());
    }
}
