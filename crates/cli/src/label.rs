//! `opprentice label` — a terminal rendition of the paper's labeling tool
//! (§4.2, Fig. 4).
//!
//! The original is a GUI: "it loads KPI data, and displays them with a line
//! graph in the top panel … operators can use the arrow keys to navigate
//! (forward, backward, zoom in and zoom out) through the data … left click
//! and drag the mouse to label the window of anomalies, or right click and
//! drag to (partially) cancel previously labeled window." This command maps
//! those interactions onto a line-oriented terminal session:
//!
//! ```text
//! n / p          move forward / backward one page
//! + / -          zoom in / out (halve / double the page)
//! m <from> <to>  mark an anomalous window  (point indices, end exclusive)
//! u <from> <to>  unmark (right-click-drag cancel)
//! g <index>      jump to the page containing a point
//! w              write labels and quit
//! q              quit without writing
//! ```
//!
//! Labels are windows, exactly as in the paper — which is why labeling is
//! fast (§5.7). The session also reports the §5.7-style labeling time
//! estimate when it ends. Reads commands from stdin, so it is scriptable
//! and testable.

use crate::csvio::{self, LabeledCsv};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One page of the viewer.
const DEFAULT_PAGE: usize = 288;
const PLOT_WIDTH: usize = 96;

/// Renders one page: sparkline, label markers and an index ruler.
fn render(data: &LabeledCsv, start: usize, page: usize) -> String {
    let end = (start + page).min(data.series.len());
    let window = &data.series.values()[start..end];
    let spark = sparkline(window, PLOT_WIDTH.min(window.len()));
    let cols = spark.chars().count().max(1);
    let mut marks = vec![' '; cols];
    for (i, m) in marks.iter_mut().enumerate() {
        let lo = start + i * window.len() / cols;
        let hi = start + ((i + 1) * window.len() / cols).max(i * window.len() / cols + 1);
        if (lo..hi.min(end)).any(|j| data.labels.is_anomaly(j)) {
            *m = '^';
        }
    }
    format!(
        "points {start}..{end} of {}  ({} labeled anomalous here)\n  {spark}\n  {}\n",
        data.series.len(),
        (start..end).filter(|&i| data.labels.is_anomaly(i)).count(),
        marks.iter().collect::<String>()
    )
}

/// Unit-scaled sparkline (duplicated from the bench crate to keep the CLI
/// dependency-light; missing points render as `·`).
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let step = values.len() as f64 / width as f64;
    (0..width)
        .map(|w| {
            let v = values[((w as f64 * step) as usize).min(values.len() - 1)];
            if v.is_finite() {
                BARS[(((v - lo) / span) * 7.0).round() as usize]
            } else {
                '·'
            }
        })
        .collect()
}

/// The outcome of a labeling session (for reporting and tests).
#[derive(Debug)]
#[allow(dead_code)] // `actions`/`seconds` are read by tests and future callers
pub struct SessionReport {
    /// Number of label/unlabel actions taken.
    pub actions: usize,
    /// Whether the labels were written back.
    pub written: bool,
    /// Wall-clock session length in seconds.
    pub seconds: f64,
}

/// Runs the labeling loop over `input`, writing output lines to `out`.
pub fn run_session(
    data: &mut LabeledCsv,
    path: &Path,
    input: &mut dyn BufRead,
    out: &mut dyn std::io::Write,
) -> Result<SessionReport, String> {
    let started = Instant::now();
    let mut start = 0usize;
    let mut page = DEFAULT_PAGE.min(data.series.len());
    let mut actions = 0usize;
    let mut written = false;

    let w = |out: &mut dyn std::io::Write, s: &str| {
        out.write_all(s.as_bytes()).map_err(|e| e.to_string())
    };
    w(out, &render(data, start, page))?;

    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break; // EOF: quit without writing
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let arg1: Option<usize> = parts.next().and_then(|s| s.parse().ok());
        let arg2: Option<usize> = parts.next().and_then(|s| s.parse().ok());
        match cmd {
            "" => continue,
            "n" => start = (start + page).min(data.series.len().saturating_sub(1)),
            "p" => start = start.saturating_sub(page),
            "+" => page = (page / 2).max(8),
            "-" => page = (page * 2).min(data.series.len()),
            "g" => {
                let Some(i) = arg1 else {
                    w(out, "usage: g <index>\n")?;
                    continue;
                };
                start = i.min(data.series.len().saturating_sub(1)) / page * page;
            }
            "m" | "u" => {
                let (Some(from), Some(to)) = (arg1, arg2) else {
                    w(out, &format!("usage: {cmd} <from> <to>\n"))?;
                    continue;
                };
                if from >= to || to > data.series.len() {
                    w(out, "bad window\n")?;
                    continue;
                }
                for i in from..to {
                    if cmd == "m" {
                        data.labels.mark(i);
                    } else {
                        data.labels.clear(i);
                    }
                }
                actions += 1;
            }
            "w" => {
                csvio::write(path, &data.series, &data.labels)?;
                written = true;
                w(out, &format!("wrote {}\n", path.display()))?;
                break;
            }
            "q" => break,
            other => w(
                out,
                &format!("unknown command `{other}` (n p + - g m u w q)\n"),
            )?,
        }
        w(out, &render(data, start, page))?;
    }

    let seconds = started.elapsed().as_secs_f64();
    let windows = data.labels.to_windows().len();
    w(
        out,
        &format!(
            "session: {actions} label action(s), {windows} anomalous window(s), {seconds:.1}s\n"
        ),
    )?;
    Ok(SessionReport {
        actions,
        written,
        seconds,
    })
}

/// Entry point for `opprentice label --data <file>`.
pub fn label(opts: &crate::commands::Options) -> Result<(), String> {
    let path = PathBuf::from(opts.required_opt("data")?);
    let mut data = csvio::read(&path)?;
    let stdin = std::io::stdin();
    let mut locked = stdin.lock();
    let mut stdout = std::io::stdout();
    let report = run_session(&mut data, &path, &mut locked, &mut stdout)?;
    if !report.written {
        eprintln!("(labels not written — use `w` to save)");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprentice_timeseries::Labels;
    use std::io::Cursor;

    fn sample(n: usize) -> (LabeledCsv, PathBuf) {
        let path =
            std::env::temp_dir().join(format!("opprentice_label_{}_{n}.csv", std::process::id()));
        let series = opprentice_timeseries::TimeSeries::from_values(
            0,
            60,
            (0..n).map(|i| (i % 24) as f64).collect(),
        );
        let labels = Labels::all_normal(n);
        csvio::write(&path, &series, &labels).unwrap();
        (csvio::read(&path).unwrap(), path)
    }

    fn run(commands: &str, n: usize) -> (LabeledCsv, SessionReport, String, PathBuf) {
        let (mut data, path) = sample(n);
        let mut input = Cursor::new(commands.as_bytes().to_vec());
        let mut out = Vec::new();
        let report = run_session(&mut data, &path, &mut input, &mut out).unwrap();
        (data, report, String::from_utf8(out).unwrap(), path)
    }

    #[test]
    fn mark_and_write_round_trips() {
        let (data, report, _, path) = run("m 10 20\nw\n", 500);
        assert!(report.written);
        assert_eq!(report.actions, 1);
        assert_eq!(data.labels.anomaly_count(), 10);
        let reloaded = csvio::read(&path).unwrap();
        assert_eq!(reloaded.labels.anomaly_count(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unmark_cancels_part_of_a_window() {
        let (data, _, _, path) = run("m 10 20\nu 14 16\nq\n", 500);
        assert_eq!(data.labels.anomaly_count(), 8);
        assert_eq!(data.labels.to_windows().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quit_without_write_leaves_file_untouched() {
        let (_, report, _, path) = run("m 0 5\nq\n", 100);
        assert!(!report.written);
        let reloaded = csvio::read(&path).unwrap();
        assert_eq!(reloaded.labels.anomaly_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn navigation_and_zoom_render_pages() {
        let (_, _, output, path) = run("n\np\n+\n-\ng 450\nq\n", 1000);
        assert!(output.contains("points 0..288"), "{output}");
        assert!(output.contains("points 288.."), "{output}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_input_is_reported_not_fatal() {
        let (_, report, output, path) = run("m 20 10\nx\nm 5\nq\n", 100);
        assert_eq!(report.actions, 0);
        assert!(output.contains("bad window"));
        assert!(output.contains("unknown command"));
        assert!(output.contains("usage: m"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eof_acts_as_quit() {
        let (_, report, _, path) = run("m 0 3\n", 50);
        assert!(!report.written);
        assert_eq!(report.actions, 1);
        std::fs::remove_file(&path).ok();
    }
}
