//! `opprentice replay` — stream a labeled CSV through a running
//! `opprentice-serve` instance, simulating deployment: points flow in
//! real-time order, the operator labels in weekly batches, and the server
//! retrains after each batch (§4.1's loop, but over the wire).
//!
//! ```text
//! opprentice replay --data kpi.csv --addr 127.0.0.1:4755 [--train-weeks 8]
//! ```

use crate::commands::Options;
use crate::csvio;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// A tiny line-protocol client for the server.
pub struct ProtocolClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The most recent asynchronous `EVENT` line (without the prefix),
    /// e.g. a background-retrain completion notice.
    last_event: Option<String>,
}

impl ProtocolClient {
    /// Connects to an `opprentice-serve` endpoint.
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            last_event: None,
        })
    }

    /// Sends one request line, returns the response line. Asynchronous
    /// `EVENT` lines (a background retrain completing) may precede the
    /// response; they are recorded, not returned.
    pub fn send(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| e.to_string())?;
        self.writer.write_all(b"\n").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        loop {
            let mut out = String::new();
            if self.reader.read_line(&mut out).map_err(|e| e.to_string())? == 0 {
                return Err("server closed the connection".to_string());
            }
            let reply = out.trim_end();
            if let Some(event) = reply.strip_prefix("EVENT ") {
                self.last_event = Some(event.to_string());
                continue;
            }
            return Ok(reply.to_string());
        }
    }

    /// Takes the most recent `EVENT` notice, if one has arrived.
    pub fn take_event(&mut self) -> Option<String> {
        self.last_event.take()
    }

    /// Blocks until no retrain job is in flight. `RETRAIN` is
    /// asynchronous — the reply only acknowledges submission — so the
    /// replay polls `STATUS` before sending the next week's labels (which
    /// the server rejects while a job is training).
    pub fn wait_trained(&mut self) -> Result<String, String> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(600);
        loop {
            let status = self.expect_ok("STATUS")?;
            if status.contains(" training=0") {
                return Ok(status);
            }
            if std::time::Instant::now() > deadline {
                return Err(format!("retrain never completed: {status}"));
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    /// Sends and fails unless the reply starts with `OK`.
    pub fn expect_ok(&mut self, line: &str) -> Result<String, String> {
        let reply = self.send(line)?;
        if reply.starts_with("OK") {
            Ok(reply)
        } else {
            Err(format!("`{line}` -> {reply}"))
        }
    }
}

/// Runs the replay.
pub fn replay(opts: &Options) -> Result<(), String> {
    let data = csvio::read(&PathBuf::from(opts.required_opt("data")?))?;
    let addr = opts.required_opt("addr")?;
    let train_weeks: usize = opts.num_opt("train-weeks", 8)?;

    let ppw = data.series.points_per_week();
    let n = data.series.len();
    let bootstrap = (train_weeks * ppw).min(n);

    let mut client = ProtocolClient::connect(addr)?;
    client.expect_ok(&format!("HELLO {}", data.series.interval()))?;

    let fmt_value = |i: usize| match data.series.get(i) {
        Some(v) => format!("{v}"),
        None => "nan".to_string(),
    };
    let flags_of = |range: std::ops::Range<usize>| -> String {
        range
            .map(|i| if data.labels.is_anomaly(i) { '1' } else { '0' })
            .collect()
    };

    // Bootstrap: stream the labeled history, label it, train.
    for i in 0..bootstrap {
        client.expect_ok(&format!(
            "OBS {} {}",
            data.series.timestamp_at(i),
            fmt_value(i)
        ))?;
    }
    client.expect_ok(&format!("LABEL {}", flags_of(0..bootstrap)))?;
    let submitted = client.expect_ok("RETRAIN")?;
    client.wait_trained()?;
    let trained = client.take_event().unwrap_or(submitted);
    println!("bootstrapped on {train_weeks} weeks: {trained}");

    // Live weeks: detect, then label + retrain at each week boundary.
    let mut alerts = 0usize;
    let mut hits = 0usize;
    let mut week_start = bootstrap;
    for i in bootstrap..n {
        let reply = client.expect_ok(&format!(
            "OBS {} {}",
            data.series.timestamp_at(i),
            fmt_value(i)
        ))?;
        if reply.contains("anomaly=1") {
            alerts += 1;
            if data.labels.is_anomaly(i) {
                hits += 1;
            }
        }
        let week_done = (i + 1 - bootstrap) % ppw == 0 || i + 1 == n;
        if week_done && i + 1 > week_start {
            client.expect_ok(&format!("LABEL {}", flags_of(week_start..i + 1)))?;
            let reply = client.send("RETRAIN")?;
            let outcome = if reply.starts_with("OK") {
                client.wait_trained()?;
                client.take_event().unwrap_or(reply)
            } else {
                reply
            };
            println!(
                "week boundary at point {}: {} ({} alerts so far, {} correct)",
                i + 1,
                outcome,
                alerts,
                hits
            );
            week_start = i + 1;
        }
    }
    let _ = client.send("QUIT");
    let precision = if alerts == 0 {
        1.0
    } else {
        hits as f64 / alerts as f64
    };
    println!("replay finished: {alerts} alerts, live precision {precision:.2}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprentice_server::{Server, ServerConfig};

    #[test]
    fn replay_against_in_process_server() {
        // Build a small labeled KPI file.
        let dir = std::env::temp_dir().join(format!("opprentice_replay_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("kpi.csv");
        let n = 24 * 7 * 5; // 5 hourly weeks
        let mut body = String::from("timestamp,value,label\n");
        for i in 0..n {
            let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
            let anomalous = i % 63 == 50 || i % 63 == 51;
            let v = if anomalous { base + 150.0 } else { base };
            body.push_str(&format!("{},{v},{}\n", i * 3600, u8::from(anomalous)));
        }
        std::fs::write(&csv, body).unwrap();

        // In-process server on an ephemeral port.
        let config = ServerConfig {
            n_trees: 8,
            ..Default::default()
        };
        let server = Server::bind_with("127.0.0.1:0", config).unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve().unwrap());

        let opts = Options::parse(&[
            "--data".into(),
            csv.to_str().unwrap().into(),
            "--addr".into(),
            handle.addr().to_string(),
            "--train-weeks".into(),
            "3".into(),
        ])
        .unwrap();
        replay(&opts).unwrap();

        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_refuses_unreachable_server() {
        let opts = Options::parse(&[
            "--data".into(),
            "/nonexistent.csv".into(),
            "--addr".into(),
            "127.0.0.1:1".into(),
        ])
        .unwrap();
        assert!(replay(&opts).is_err());
    }
}
