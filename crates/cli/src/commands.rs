//! The CLI subcommands, on top of the library's public API.

use crate::csvio;
use opprentice::cthld::{best_cthld, Preference};
use opprentice::evaluate::Evaluator;
use opprentice::extract_features;
use opprentice::postprocess::{group_alerts, DurationFilter};
use opprentice::strategy::{EvalPlan, TrainingStrategy};
use opprentice_datagen::presets;
use opprentice_learn::metrics::{pr_curve, precision_recall};
use opprentice_learn::{auc_pr, Classifier, RandomForest, RandomForestParams};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Parsed `--key value` options.
#[derive(Debug, Default)]
pub struct Options {
    map: BTreeMap<String, String>,
}

impl Options {
    /// Parses `--key value` pairs; rejects dangling keys.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut map = BTreeMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected `--option`, got `{key}`"));
            };
            let Some(value) = it.next() else {
                return Err(format!("`--{name}` needs a value"));
            };
            map.insert(name.to_string(), value.clone());
        }
        Ok(Options { map })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("`--{key}` is required"))
    }

    /// Public variant of [`Options::required`] for sibling modules.
    pub fn required_opt(&self, key: &str) -> Result<&str, String> {
        self.required(key)
    }

    /// Public variant of [`Options::num`] for sibling modules.
    pub fn num_opt<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.num(key, default)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("bad `--{key}` value `{v}`: {e}")),
        }
    }

    fn forest_params(&self) -> Result<RandomForestParams, String> {
        Ok(RandomForestParams {
            n_trees: self.num("trees", 50usize)?,
            ..Default::default()
        })
    }

    fn preference(&self) -> Result<Preference, String> {
        Ok(Preference {
            recall: self.num("recall", 0.66f64)?,
            precision: self.num("precision", 0.66f64)?,
        })
    }

    fn data(&self) -> Result<csvio::LabeledCsv, String> {
        csvio::read(&PathBuf::from(self.required("data")?))
    }
}

/// `opprentice generate` — synthesize a labeled KPI CSV.
pub fn generate(opts: &Options) -> Result<(), String> {
    let kpi_name = opts.get("kpi").unwrap_or("pv").to_lowercase();
    let mut spec = match kpi_name.as_str() {
        "pv" => presets::pv(),
        "sr" | "#sr" => presets::sr(),
        "srt" => presets::srt(),
        other => return Err(format!("unknown preset `{other}` (use pv, sr or srt)")),
    };
    if let Some(weeks) = opts.get("weeks") {
        spec.weeks = weeks.parse().map_err(|e| format!("bad --weeks: {e}"))?;
    }
    if let Some(interval) = opts.get("interval") {
        let interval: u32 = interval
            .parse()
            .map_err(|e| format!("bad --interval: {e}"))?;
        spec = presets::fast(&spec, interval);
    }
    if let Some(seed) = opts.get("seed") {
        spec.seed = seed.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    let out = PathBuf::from(opts.required("out")?);
    let kpi = spec.generate();
    csvio::write(&out, &kpi.series, &kpi.truth)?;
    println!(
        "wrote {}: {} points at {}s interval, {} anomalous ({:.1}%)",
        out.display(),
        kpi.series.len(),
        kpi.series.interval(),
        kpi.truth.anomaly_count(),
        100.0 * kpi.truth.anomaly_ratio()
    );
    Ok(())
}

/// `opprentice detect` — train on a prefix, alert on the rest.
pub fn detect(opts: &Options) -> Result<(), String> {
    let data = opts.data()?;
    let train_weeks: usize = opts.num("train-weeks", 8)?;
    let min_duration: usize = opts.num("min-duration", 1)?;
    let pref = opts.preference()?;

    let matrix = extract_features(&data.series);
    let ppw = data.series.points_per_week();
    let split = (train_weeks * ppw).min(matrix.len());
    if split == 0 || split == matrix.len() {
        return Err(format!(
            "--train-weeks {train_weeks} leaves no training or no test data"
        ));
    }

    let (train, _) = matrix.dataset(&data.labels, 0..split);
    if train.positives() == 0 {
        return Err("the training prefix has no labeled anomalies".to_string());
    }
    let mut forest = RandomForest::new(opts.forest_params()?);
    forest.fit(&train);

    // Pick the cThld on the training prefix under the preference.
    let train_scores: Vec<Option<f64>> = (0..split)
        .map(|i| matrix.usable(i).then(|| forest.score(matrix.row(i))))
        .collect();
    let train_curve = pr_curve(&train_scores, &data.labels.flags()[..split]);
    let cthld = best_cthld(&train_curve, &pref).unwrap_or(0.5);

    // Detect the rest.
    let probs: Vec<Option<f64>> = (split..matrix.len())
        .map(|i| matrix.usable(i).then(|| forest.score(matrix.row(i))))
        .collect();
    let raw: Vec<bool> = probs
        .iter()
        .map(|p| p.is_some_and(|p| p >= cthld))
        .collect();
    let filtered = DurationFilter::apply(min_duration, &raw);
    let truth = &data.labels.flags()[split..];
    let (recall, precision) = precision_recall(&filtered, truth);

    println!(
        "trained on {train_weeks} weeks ({} samples, {} anomalous)",
        train.len(),
        train.positives()
    );
    println!(
        "cThld {cthld:.3} for preference recall>={} precision>={}",
        pref.recall, pref.precision
    );
    let masked: Vec<Option<f64>> = probs
        .iter()
        .zip(&filtered)
        .map(|(p, &keep)| if keep { *p } else { None })
        .collect();
    let alerts = group_alerts(&masked, cthld);
    println!("\n{} alert(s) on the detection span:", alerts.len());
    for a in alerts.iter().take(20) {
        let from = data.series.timestamp_at(split + a.window.start);
        let to = data.series.timestamp_at(split + a.window.end - 1);
        println!(
            "  t={from}..{to}  {} point(s)  peak p={:.2}",
            a.window.len(),
            a.peak_probability
        );
    }
    if alerts.len() > 20 {
        println!("  … and {} more", alerts.len() - 20);
    }
    println!("\nagainst the provided labels: recall {recall:.2}, precision {precision:.2}");
    Ok(())
}

/// `opprentice evaluate` — walk-forward weekly retraining, per-week AUCPR.
pub fn evaluate(opts: &Options) -> Result<(), String> {
    let data = opts.data()?;
    let train_weeks: usize = opts.num("train-weeks", 8)?;
    let pref = opts.preference()?;

    let matrix = extract_features(&data.series);
    let ppw = data.series.points_per_week();
    let mut ev = Evaluator::new(&matrix, &data.labels, ppw);
    ev.forest_params = opts.forest_params()?;
    let plan = EvalPlan {
        initial_train_weeks: train_weeks,
        test_weeks: 1,
    };
    let outcomes = ev.run(TrainingStrategy::AllHistory, plan);
    if outcomes.is_empty() {
        return Err("not enough data beyond the training prefix".to_string());
    }

    println!(
        "{:<8} {:>8} {:>12} {:>9} {:>11}",
        "week", "AUCPR", "best cThld", "recall", "precision"
    );
    for o in &outcomes {
        match best_cthld(&o.curve, &pref) {
            Some(c) => {
                let p = o
                    .curve
                    .iter()
                    .find(|p| p.threshold == c)
                    .expect("point on curve");
                println!(
                    "{:<8} {:>8.3} {:>12.3} {:>9.2} {:>11.2}",
                    o.test_weeks.start + 1,
                    o.auc_pr,
                    c,
                    p.recall,
                    p.precision
                );
            }
            None => println!(
                "{:<8} {:>8} (no labeled anomalies)",
                o.test_weeks.start + 1,
                "-"
            ),
        }
    }
    let mean: f64 = outcomes.iter().map(|o| o.auc_pr).sum::<f64>() / outcomes.len() as f64;
    println!("\nmean weekly AUCPR: {mean:.3}");
    Ok(())
}

/// `opprentice rank` — rank the 14 basic detectors on this data.
pub fn rank(opts: &Options) -> Result<(), String> {
    let data = opts.data()?;
    let matrix = extract_features(&data.series);

    let mut best: BTreeMap<String, (String, f64)> = BTreeMap::new();
    for c in 0..matrix.n_features() {
        let scores = matrix.column_scores(c);
        let auc = auc_pr(&pr_curve(&scores, data.labels.flags()));
        let label = &matrix.feature_labels()[c];
        let (family, config) = label.split_once(" (").unwrap_or((label.as_str(), ""));
        let entry = best
            .entry(family.to_string())
            .or_insert_with(|| (String::new(), f64::MIN));
        if auc > entry.1 {
            *entry = (config.trim_end_matches(')').to_string(), auc);
        }
    }
    let mut ranked: Vec<(String, (String, f64))> = best.into_iter().collect();
    ranked.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).expect("finite AUCPR"));

    println!(
        "{:<22} {:<30} {:>7}",
        "detector family", "best configuration", "AUCPR"
    );
    for (family, (config, auc)) in &ranked {
        println!("{family:<22} {config:<30} {auc:>7.3}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> Options {
        let args: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Options::parse(&args).unwrap()
    }

    #[test]
    fn options_parse_pairs() {
        let o = opts(&[("kpi", "srt"), ("weeks", "4")]);
        assert_eq!(o.get("kpi"), Some("srt"));
        assert_eq!(o.num::<usize>("weeks", 0).unwrap(), 4);
        assert_eq!(o.num::<usize>("absent", 7).unwrap(), 7);
    }

    #[test]
    fn options_reject_danglers() {
        assert!(Options::parse(&["--weeks".to_string()]).is_err());
        assert!(Options::parse(&["weeks".to_string(), "4".to_string()]).is_err());
    }

    #[test]
    fn generate_then_detect_round_trip() {
        let dir = std::env::temp_dir().join(format!("opprentice_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("kpi.csv");
        // Small SRT so the whole test runs in seconds.
        generate(&opts(&[
            ("kpi", "srt"),
            ("weeks", "10"),
            ("out", csv.to_str().unwrap()),
        ]))
        .unwrap();
        detect(&opts(&[
            ("data", csv.to_str().unwrap()),
            ("train-weeks", "8"),
            ("trees", "10"),
        ]))
        .unwrap();
        rank(&opts(&[("data", csv.to_str().unwrap())])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_requires_training_anomalies() {
        let dir = std::env::temp_dir().join(format!("opprentice_cli2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("flat.csv");
        // A flat, anomaly-free KPI.
        let mut body = String::from("timestamp,value,label\n");
        for i in 0..(24 * 7 * 9) {
            body.push_str(&format!("{},{},0\n", i * 3600, 100));
        }
        std::fs::write(&csv, body).unwrap();
        let err = detect(&opts(&[("data", csv.to_str().unwrap()), ("trees", "5")])).unwrap_err();
        assert!(err.contains("no labeled anomalies"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
