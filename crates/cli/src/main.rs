//! `opprentice` — command-line interface to the Opprentice framework.
//!
//! ```text
//! opprentice generate --kpi pv --weeks 12 --interval 300 --out kpi.csv
//! opprentice detect   --data kpi.csv --train-weeks 8 [--recall 0.66 --precision 0.66]
//! opprentice evaluate --data kpi.csv [--trees 50]
//! opprentice rank     --data kpi.csv
//! ```
//!
//! CSV format: `timestamp,value,label` — epoch seconds, a float (empty for a
//! missing point), and 0/1 (the operator's anomaly label). `generate` writes
//! this format; the other commands read it.

mod commands;
mod csvio;
mod label;
mod replay;

use std::process::ExitCode;

fn usage() -> &'static str {
    "opprentice — operators' apprentice for KPI anomaly detection

USAGE:
    opprentice <COMMAND> [OPTIONS]

COMMANDS:
    generate   synthesize a labeled KPI calibrated to the paper's presets
    detect     train on the first weeks, report alerts on the rest
    evaluate   walk-forward evaluation (weekly retraining, AUCPR per week)
    rank       rank the 14 basic detectors on the data (AUCPR)
    label      interactive window labeling in the terminal (the §4.2 tool)
    replay     stream a CSV through a running opprentice-serve instance

OPTIONS (generate):
    --kpi <pv|sr|srt>     preset to synthesize           [default: pv]
    --weeks <N>           length in weeks                [default: preset]
    --interval <SECONDS>  sampling interval              [default: preset]
    --seed <N>            generator seed                 [default: preset]
    --out <FILE>          output CSV path                [required]

OPTIONS (detect / evaluate / rank):
    --data <FILE>         input CSV (timestamp,value,label)  [required]
    --train-weeks <N>     training prefix in weeks           [default: 8]
    --trees <N>           random-forest size                 [default: 50]
    --recall <R>          accuracy preference: recall floor  [default: 0.66]
    --precision <P>       accuracy preference: precision flr [default: 0.66]
    --min-duration <N>    alert duration filter, in points   [default: 1]
"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match commands::Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => commands::generate(&opts),
        "detect" => commands::detect(&opts),
        "evaluate" => commands::evaluate(&opts),
        "rank" => commands::rank(&opts),
        "label" => label::label(&opts),
        "replay" => replay::replay(&opts),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
