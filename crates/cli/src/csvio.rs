//! Minimal CSV I/O for labeled KPI data: `timestamp,value,label`.
//!
//! The format is deliberately trivial (numeric fields, no quoting) so no
//! CSV dependency is needed. Empty `value` encodes a missing point.

use opprentice_timeseries::{Labels, TimeSeries};
use std::fmt::Write as _;
use std::path::Path;

/// A loaded KPI: series plus labels.
#[derive(Debug)]
pub struct LabeledCsv {
    /// The series (fixed interval inferred from the first two rows).
    pub series: TimeSeries,
    /// Per-point anomaly labels.
    pub labels: Labels,
}

/// Reads `timestamp,value,label` rows. A header line is skipped when the
/// first field does not parse as an integer.
pub fn read(path: &Path) -> Result<LabeledCsv, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut rows: Vec<(i64, Option<f64>, bool)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let (Some(ts), Some(value), Some(label)) = (fields.next(), fields.next(), fields.next())
        else {
            return Err(format!(
                "line {}: expected 3 comma-separated fields",
                lineno + 1
            ));
        };
        let Ok(ts) = ts.trim().parse::<i64>() else {
            if lineno == 0 {
                continue; // header
            }
            return Err(format!("line {}: bad timestamp `{ts}`", lineno + 1));
        };
        let value = match value.trim() {
            "" | "nan" | "NaN" => None,
            v => Some(
                v.parse::<f64>()
                    .map_err(|e| format!("line {}: bad value `{v}`: {e}", lineno + 1))?,
            ),
        };
        let label = match label.trim() {
            "0" | "false" => false,
            "1" | "true" => true,
            other => {
                return Err(format!(
                    "line {}: bad label `{other}` (use 0/1)",
                    lineno + 1
                ))
            }
        };
        rows.push((ts, value, label));
    }
    if rows.len() < 2 {
        return Err("need at least 2 data rows".to_string());
    }
    let interval = rows[1].0 - rows[0].0;
    if interval <= 0 {
        return Err("timestamps must be strictly increasing".to_string());
    }
    let mut series = TimeSeries::new(rows[0].0, interval as u32);
    let mut labels = Labels::all_normal(0);
    for (i, (ts, value, label)) in rows.iter().enumerate() {
        let expected = rows[0].0 + i as i64 * interval;
        if *ts != expected {
            return Err(format!(
                "row {}: timestamp {ts} breaks the fixed interval {interval} (expected {expected})",
                i + 1
            ));
        }
        match value {
            Some(v) => series.push(*v),
            None => series.push_missing(),
        }
        labels.push(*label);
    }
    Ok(LabeledCsv { series, labels })
}

/// Writes a labeled KPI in the same format (with header).
pub fn write(path: &Path, series: &TimeSeries, labels: &Labels) -> Result<(), String> {
    assert_eq!(series.len(), labels.len(), "series/labels length mismatch");
    let mut out = String::with_capacity(series.len() * 24);
    out.push_str("timestamp,value,label\n");
    for (i, (ts, v)) in series.iter().enumerate() {
        match v {
            Some(v) => {
                let _ = writeln!(out, "{ts},{v},{}", u8::from(labels.is_anomaly(i)));
            }
            None => {
                let _ = writeln!(out, "{ts},,{}", u8::from(labels.is_anomaly(i)));
            }
        }
    }
    std::fs::write(path, out).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("opprentice_csv_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn round_trip() {
        let mut series = TimeSeries::new(1000, 60);
        series.push(1.5);
        series.push_missing();
        series.push(3.0);
        let labels = Labels::from_flags(vec![false, true, false]);
        let path = tmp("round");
        write(&path, &series, &labels).unwrap();
        let loaded = read(&path).unwrap();
        assert_eq!(loaded.series, series);
        assert_eq!(loaded.labels, labels);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_is_skipped() {
        let path = tmp("header");
        std::fs::write(&path, "timestamp,value,label\n0,1.0,0\n60,2.0,1\n").unwrap();
        let loaded = read(&path).unwrap();
        assert_eq!(loaded.series.len(), 2);
        assert!(loaded.labels.is_anomaly(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn irregular_interval_rejected() {
        let path = tmp("irregular");
        std::fs::write(&path, "0,1.0,0\n60,2.0,0\n180,3.0,0\n").unwrap();
        let err = read(&path).unwrap_err();
        assert!(err.contains("fixed interval"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_label_rejected() {
        let path = tmp("badlabel");
        std::fs::write(&path, "0,1.0,0\n60,2.0,maybe\n").unwrap();
        assert!(read(&path).unwrap_err().contains("bad label"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn too_short_rejected() {
        let path = tmp("short");
        std::fs::write(&path, "0,1.0,0\n").unwrap();
        assert!(read(&path).unwrap_err().contains("at least 2"));
        std::fs::remove_file(&path).ok();
    }
}
