//! Property-based tests pinning individual detectors against naive
//! recomputations on arbitrary inputs.

use opprentice_detectors::diff::{Diff, DiffLag};
use opprentice_detectors::ewma::EwmaDetector;
use opprentice_detectors::ma::{MaOfDiff, SimpleMa, WeightedMa};
use opprentice_detectors::simple_threshold::SimpleThreshold;
use opprentice_detectors::Detector;
use proptest::prelude::*;

fn values_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e5, 5..120)
}

proptest! {
    /// SimpleMa's severity equals |v − mean(previous w values)| once warm.
    #[test]
    fn simple_ma_matches_naive(values in values_strategy(), win in 1usize..10) {
        let mut d = SimpleMa::new(win);
        for (i, &v) in values.iter().enumerate() {
            let got = d.observe(i as i64 * 60, Some(v));
            if i >= win {
                let mean: f64 = values[i - win..i].iter().sum::<f64>() / win as f64;
                let expect = (v - mean).abs();
                prop_assert!((got.unwrap() - expect).abs() < 1e-6, "i={i}: {got:?} vs {expect}");
            } else {
                prop_assert_eq!(got, None);
            }
        }
    }

    /// WeightedMa's severity matches the naive linearly-weighted mean.
    #[test]
    fn weighted_ma_matches_naive(values in values_strategy(), win in 1usize..8) {
        let mut d = WeightedMa::new(win);
        for (i, &v) in values.iter().enumerate() {
            let got = d.observe(i as i64 * 60, Some(v));
            if i >= win {
                let window = &values[i - win..i];
                let den: f64 = (1..=win).map(|w| w as f64).sum();
                let num: f64 = window.iter().enumerate().map(|(j, &x)| (j + 1) as f64 * x).sum();
                let expect = (v - num / den).abs();
                prop_assert!((got.unwrap() - expect).abs() < 1e-6);
            }
        }
    }

    /// MaOfDiff equals the mean of the last w absolute slot-to-slot diffs.
    #[test]
    fn ma_of_diff_matches_naive(values in values_strategy(), win in 1usize..8) {
        let mut d = MaOfDiff::new(win);
        let diffs: Vec<f64> = values.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
        for (i, &v) in values.iter().enumerate() {
            let got = d.observe(i as i64 * 60, Some(v));
            if i >= win {
                // Diff index i-1 is the newest at point i.
                let expect: f64 = diffs[i - win..i].iter().sum::<f64>() / win as f64;
                prop_assert!((got.unwrap() - expect).abs() < 1e-6);
            }
        }
    }

    /// Diff(last-slot) equals |v_i − v_{i−1}|.
    #[test]
    fn diff_matches_naive(values in values_strategy()) {
        let mut d = Diff::new(DiffLag::LastSlot, 60);
        for (i, &v) in values.iter().enumerate() {
            let got = d.observe(i as i64 * 60, Some(v));
            if i >= 1 {
                prop_assert!((got.unwrap() - (v - values[i - 1]).abs()).abs() < 1e-9);
            }
        }
    }

    /// EWMA detector equals the closed-form exponential recursion.
    #[test]
    fn ewma_matches_recursion(values in values_strategy(), alpha_pct in 1u32..100) {
        let alpha = f64::from(alpha_pct) / 100.0;
        let mut d = EwmaDetector::new(alpha);
        let mut state: Option<f64> = None;
        for (i, &v) in values.iter().enumerate() {
            let got = d.observe(i as i64 * 60, Some(v));
            match state {
                None => {
                    prop_assert_eq!(got, None);
                    state = Some(v);
                }
                Some(s) => {
                    prop_assert!((got.unwrap() - (v - s).abs()).abs() < 1e-9);
                    state = Some(alpha * v + (1.0 - alpha) * s);
                }
            }
        }
    }

    /// The simple threshold is exactly the identity on non-negative input.
    #[test]
    fn simple_threshold_is_identity(values in values_strategy()) {
        let mut d = SimpleThreshold::new();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(d.observe(i as i64, Some(v)), Some(v));
        }
    }

    /// Scale equivariance: prediction-residual detectors scale linearly
    /// with the input (no hidden absolute constants).
    #[test]
    fn ma_family_is_scale_equivariant(values in values_strategy(), scale in 1.0f64..100.0) {
        let run = |xs: &[f64]| -> Vec<Option<f64>> {
            let mut d = SimpleMa::new(5);
            xs.iter().enumerate().map(|(i, &v)| d.observe(i as i64, Some(v))).collect()
        };
        let base = run(&values);
        let scaled_input: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let scaled = run(&scaled_input);
        for (b, s) in base.iter().zip(&scaled) {
            match (b, s) {
                (Some(b), Some(s)) => prop_assert!((b * scale - s).abs() < 1e-6 * scale.max(1.0) * (1.0 + b.abs())),
                (None, None) => {}
                _ => prop_assert!(false, "warm-up mismatch"),
            }
        }
    }
}
