//! The detector registry: Table 3's 14 detectors / 133 configurations.
//!
//! §4.3.3's sampling strategies are encoded verbatim: intuitive parameters
//! are swept on coarse grids ("we only need a set of good enough features"),
//! while ARIMA estimates its parameters from data. §5.2: "In total, we have
//! 14 detectors and 133 configurations, or 133 features for random forests."

use crate::arima::ArimaDetector;
use crate::diff::{Diff, DiffLag};
use crate::ewma::EwmaDetector;
use crate::historical::HistoricalAverage;
use crate::holt_winters::HoltWintersDetector;
use crate::ma::{MaOfDiff, SimpleMa, WeightedMa};
use crate::simple_threshold::SimpleThreshold;
use crate::svd::SvdDetector;
use crate::tsd::Tsd;
use crate::wavelet::WaveletDetector;
use crate::Detector;

/// Machine-readable family + parameters of one configuration.
///
/// This is what the config-fused extraction engine (`fused::plan`) keys on
/// to group adjacent same-family configurations into one
/// structure-of-arrays kernel. Families without a fused kernel — and any
/// detector added outside this registry — use [`DetectorSpec::Opaque`] and
/// run through their boxed [`Detector`] unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorSpec {
    /// Simple threshold (stateless).
    SimpleThreshold,
    /// Diff against last slot / day / week.
    Diff {
        /// Which reference point the difference is taken against.
        lag: DiffLag,
        /// Sampling interval in seconds.
        interval: u32,
    },
    /// Simple moving average.
    SimpleMa {
        /// Window length in points.
        win: usize,
    },
    /// Linearly weighted moving average.
    WeightedMa {
        /// Window length in points.
        win: usize,
    },
    /// Moving average of successive absolute differences.
    MaOfDiff {
        /// Window length in diffs.
        win: usize,
    },
    /// EWMA prediction detector.
    Ewma {
        /// Smoothing constant in `[0, 1]`.
        alpha: f64,
    },
    /// Time-series decomposition (weekly seasonal baseline).
    Tsd {
        /// Seasonal memory in weeks.
        weeks: usize,
        /// `true` selects the median/MAD variant.
        robust: bool,
        /// Sampling interval in seconds.
        interval: u32,
    },
    /// Historical average over same-time-of-day samples.
    Historical {
        /// Seasonal memory in weeks (`7 * weeks` samples per slot).
        weeks: usize,
        /// `true` selects the median/MAD variant.
        robust: bool,
        /// Sampling interval in seconds.
        interval: u32,
    },
    /// Additive Holt–Winters with a daily season.
    HoltWinters {
        /// Level smoothing constant.
        alpha: f64,
        /// Trend smoothing constant.
        beta: f64,
        /// Seasonal smoothing constant.
        gamma: f64,
        /// Sampling interval in seconds.
        interval: u32,
    },
    /// No fused kernel: the boxed detector runs as-is (SVD, wavelet,
    /// ARIMA, extension detectors).
    Opaque,
}

/// One entry of the registry: a ready-to-run detector configuration.
pub struct ConfiguredDetector {
    /// Stable feature index (0..132) — column in the feature matrix.
    pub index: usize,
    /// Scheduling group. Configurations sharing a group share mutable
    /// state (the wavelet band views of one window share a filter bank)
    /// and must observe every point in lockstep on one thread; the
    /// extraction layer never splits a group across workers. Groups are
    /// contiguous in registry order.
    pub group: usize,
    /// Family + parameters, for the fused extraction engine. Must describe
    /// `detector` exactly: the fused path rebuilds the family's state from
    /// the spec, so a spec that disagrees with the boxed detector would
    /// silently change severities. Use [`DetectorSpec::Opaque`] when in
    /// doubt — it is always correct, only slower.
    pub spec: DetectorSpec,
    /// The boxed detector, fresh (no state).
    pub detector: Box<dyn Detector>,
}

impl Clone for ConfiguredDetector {
    /// Deep-copies the detector state (see [`Detector::clone_box`]); the
    /// clone's severity stream continues exactly where the original's was.
    fn clone(&self) -> Self {
        Self {
            index: self.index,
            group: self.group,
            spec: self.spec,
            detector: self.detector.clone_box(),
        }
    }
}

impl ConfiguredDetector {
    /// `"<name> (<params>)"` — e.g. `"TSD MAD (win=5 week(s))"`.
    pub fn label(&self) -> String {
        format!("{} ({})", self.detector.name(), self.detector.config())
    }

    /// [`Detector::observe`] with the framework severity clamp applied —
    /// the single choke point every extraction path (offline, online,
    /// batched) goes through, so they cannot drift.
    pub fn observe_clamped(&mut self, timestamp: i64, value: Option<f64>) -> Option<f64> {
        crate::clamp_severity(self.detector.observe(timestamp, value))
    }

    /// [`Detector::observe_batch`] with the framework severity clamp
    /// applied to every output slot.
    pub fn observe_batch_clamped(
        &mut self,
        timestamps: &[i64],
        values: &[Option<f64>],
        out: &mut [Option<f64>],
    ) {
        self.detector.observe_batch(timestamps, values, out);
        for slot in out.iter_mut() {
            *slot = crate::clamp_severity(*slot);
        }
    }
}

/// The number of configurations Table 3 commits to.
pub const CONFIG_COUNT: usize = 133;

/// Builds the full Table 3 registry for a KPI sampled at `interval`
/// seconds. Order is deterministic; indices are stable across calls.
pub fn registry(interval: u32) -> Vec<ConfiguredDetector> {
    // (group, spec, detector); each independent detector is its own group,
    // the three band views of one wavelet filter bank share a group.
    type Entry = (usize, DetectorSpec, Box<dyn Detector>);
    let mut out: Vec<Entry> = Vec::with_capacity(CONFIG_COUNT);
    let mut next_group = 0usize;
    fn push(out: &mut Vec<Entry>, group: &mut usize, spec: DetectorSpec, d: Box<dyn Detector>) {
        out.push((*group, spec, d));
        *group += 1;
    }

    // Simple threshold [24] — 1 configuration.
    push(
        &mut out,
        &mut next_group,
        DetectorSpec::SimpleThreshold,
        Box::new(SimpleThreshold::new()),
    );

    // Diff — last-slot, last-day, last-week.
    for lag in [DiffLag::LastSlot, DiffLag::LastDay, DiffLag::LastWeek] {
        push(
            &mut out,
            &mut next_group,
            DetectorSpec::Diff { lag, interval },
            Box::new(Diff::new(lag, interval)),
        );
    }

    // Simple MA [4], weighted MA [11], MA of diff — win = 10..50 points.
    for win in [10usize, 20, 30, 40, 50] {
        push(
            &mut out,
            &mut next_group,
            DetectorSpec::SimpleMa { win },
            Box::new(SimpleMa::new(win)),
        );
    }
    for win in [10usize, 20, 30, 40, 50] {
        push(
            &mut out,
            &mut next_group,
            DetectorSpec::WeightedMa { win },
            Box::new(WeightedMa::new(win)),
        );
    }
    for win in [10usize, 20, 30, 40, 50] {
        push(
            &mut out,
            &mut next_group,
            DetectorSpec::MaOfDiff { win },
            Box::new(MaOfDiff::new(win)),
        );
    }

    // EWMA [11] — alpha = 0.1, 0.3, 0.5, 0.7, 0.9.
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        push(
            &mut out,
            &mut next_group,
            DetectorSpec::Ewma { alpha },
            Box::new(EwmaDetector::new(alpha)),
        );
    }

    // TSD [1] and TSD MAD — win = 1..5 weeks.
    for robust in [false, true] {
        for weeks in 1..=5usize {
            push(
                &mut out,
                &mut next_group,
                DetectorSpec::Tsd {
                    weeks,
                    robust,
                    interval,
                },
                Box::new(Tsd::new(weeks, robust, interval)),
            );
        }
    }

    // Historical average [5] and historical MAD — win = 1..5 weeks.
    for robust in [false, true] {
        for weeks in 1..=5usize {
            push(
                &mut out,
                &mut next_group,
                DetectorSpec::Historical {
                    weeks,
                    robust,
                    interval,
                },
                Box::new(HistoricalAverage::new(weeks, robust, interval)),
            );
        }
    }

    // Holt–Winters [6] — alpha, beta, gamma in {0.2, 0.4, 0.6, 0.8}³ = 64.
    let grid = [0.2, 0.4, 0.6, 0.8];
    for alpha in grid {
        for beta in grid {
            for gamma in grid {
                push(
                    &mut out,
                    &mut next_group,
                    DetectorSpec::HoltWinters {
                        alpha,
                        beta,
                        gamma,
                        interval,
                    },
                    Box::new(HoltWintersDetector::new(alpha, beta, gamma, interval)),
                );
            }
        }
    }

    // SVD [7] — row = 10..50 points, column = 3, 5, 7 → 15.
    for rows in [10usize, 20, 30, 40, 50] {
        for cols in [3usize, 5, 7] {
            push(
                &mut out,
                &mut next_group,
                DetectorSpec::Opaque,
                Box::new(SvdDetector::new(rows, cols)),
            );
        }
    }

    // Wavelet [12] — win = 3, 5, 7 days × low/mid/high → 9. The three
    // bands of one window share a filter bank (one scheduling group).
    for win_days in [3usize, 5, 7] {
        let views = WaveletDetector::banked(win_days, interval);
        for view in views {
            out.push((next_group, DetectorSpec::Opaque, Box::new(view)));
        }
        next_group += 1;
    }

    // ARIMA [10] — one configuration, estimated from data.
    push(
        &mut out,
        &mut next_group,
        DetectorSpec::Opaque,
        Box::new(ArimaDetector::new(interval)),
    );

    debug_assert_eq!(out.len(), CONFIG_COUNT);
    out.into_iter()
        .enumerate()
        .map(|(index, (group, spec, detector))| ConfiguredDetector {
            index,
            group,
            spec,
            detector,
        })
        .collect()
}

/// The labels of all 133 configurations, in registry order.
pub fn config_labels(interval: u32) -> Vec<String> {
    registry(interval)
        .iter()
        .map(ConfiguredDetector::label)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exactly_133_configurations() {
        assert_eq!(registry(60).len(), CONFIG_COUNT);
        assert_eq!(registry(3600).len(), CONFIG_COUNT);
    }

    #[test]
    fn table3_per_detector_counts() {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for c in registry(60) {
            *counts.entry(c.detector.name()).or_default() += 1;
        }
        let expected = [
            ("simple threshold", 1),
            ("diff", 3),
            ("simple MA", 5),
            ("weighted MA", 5),
            ("MA of diff", 5),
            ("EWMA", 5),
            ("TSD", 5),
            ("TSD MAD", 5),
            ("historical average", 5),
            ("historical MAD", 5),
            ("Holt-Winters", 64),
            ("SVD", 15),
            ("wavelet", 9),
            ("ARIMA", 1),
        ];
        assert_eq!(counts.len(), 14, "14 basic detectors");
        for (name, n) in expected {
            assert_eq!(counts.get(name), Some(&n), "{name}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels = config_labels(60);
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels");
    }

    #[test]
    fn indices_are_stable_and_sequential() {
        let reg = registry(300);
        for (i, c) in reg.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn groups_are_contiguous_and_wavelets_share_banks() {
        let reg = registry(300);
        // Groups are nondecreasing and never skip.
        let mut prev = 0usize;
        for c in &reg {
            assert!(c.group == prev || c.group == prev + 1, "gap at {}", c.index);
            prev = c.group;
        }
        // Exactly the 3 wavelet band triples are multi-member groups.
        let mut sizes: HashMap<usize, usize> = HashMap::new();
        for c in &reg {
            *sizes.entry(c.group).or_default() += 1;
        }
        let multi: Vec<usize> = sizes.values().copied().filter(|&n| n > 1).collect();
        assert_eq!(multi, vec![3, 3, 3]);
        for c in &reg {
            if sizes[&c.group] > 1 {
                assert_eq!(c.detector.name(), "wavelet");
            }
        }
    }

    #[test]
    fn cloned_registry_entries_continue_identically() {
        let mut reg = registry(3600);
        for i in 0..(24 * 2) {
            let ts = i * 3600;
            for c in reg.iter_mut() {
                let _ = c.detector.observe(ts, Some(100.0 + (i % 24) as f64));
            }
        }
        let mut clones: Vec<ConfiguredDetector> = reg.iter().map(Clone::clone).collect();
        for i in (24 * 2)..(24 * 3) {
            let ts = i * 3600;
            let v = if i % 10 == 5 {
                None
            } else {
                Some(100.0 + (i % 24) as f64)
            };
            for (c, k) in reg.iter_mut().zip(clones.iter_mut()) {
                let a = c.detector.observe(ts, v);
                let b = k.detector.observe(ts, v);
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "{} point {i}",
                    c.label()
                );
            }
        }
    }

    #[test]
    fn all_detectors_accept_points_without_panicking() {
        // A short smoke run over every configuration at a coarse interval.
        let mut reg = registry(3600);
        for i in 0..(24 * 3) {
            let ts = i * 3600;
            let v = if i % 11 == 0 {
                None
            } else {
                Some(100.0 + (i % 24) as f64)
            };
            for c in reg.iter_mut() {
                if let Some(s) = c.detector.observe(ts, v) {
                    assert!(
                        s.is_finite() && s >= 0.0,
                        "{}: bad severity {s}",
                        c.detector.name()
                    );
                }
            }
        }
    }
}
