//! The EWMA detector [11]: a prediction-based detector whose forecast is an
//! exponentially weighted moving average of the history.
//!
//! §4.3.3 uses it as the canonical example of parameter sweeping: "EWMA has
//! only one weight parameter α ∈ [0, 1] … we can sample
//! α ∈ {0.1, 0.3, 0.5, 0.7, 0.9} to obtain 5 typical features."

use crate::Detector;
use opprentice_numeric::smoothing::Ewma;

/// EWMA prediction detector: severity = |v − EWMA(history before v)|.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    smoother: Ewma,
}

impl EwmaDetector {
    /// Creates the detector with smoothing constant `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Self {
            smoother: Ewma::new(alpha),
        }
    }
}

impl Detector for EwmaDetector {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        let severity = self.smoother.value().map(|pred| (v - pred).abs());
        self.smoother.update(v);
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "EWMA"
    }

    fn config(&self) -> String {
        format!("alpha={}", self.smoother.alpha())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_point_is_warm_up() {
        let mut d = EwmaDetector::new(0.5);
        assert_eq!(d.observe(0, Some(10.0)), None);
        assert_eq!(d.observe(60, Some(10.0)), Some(0.0));
    }

    #[test]
    fn severity_is_prediction_residual() {
        let mut d = EwmaDetector::new(0.5);
        d.observe(0, Some(0.0));
        // EWMA = 0; |10 - 0| = 10. Then EWMA = 5.
        assert_eq!(d.observe(60, Some(10.0)), Some(10.0));
        // |10 - 5| = 5.
        assert_eq!(d.observe(120, Some(10.0)), Some(5.0));
    }

    #[test]
    fn high_alpha_adapts_faster() {
        let series: Vec<f64> = vec![10.0; 20].into_iter().chain(vec![20.0; 20]).collect();
        let run = |alpha: f64| -> f64 {
            let mut d = EwmaDetector::new(alpha);
            let mut last = 0.0;
            for (i, &v) in series.iter().enumerate() {
                if let Some(s) = d.observe(i as i64, Some(v)) {
                    last = s;
                }
            }
            last
        };
        // After the level shift, α=0.9 has nearly caught up; α=0.1 lags.
        assert!(run(0.9) < run(0.1));
    }

    #[test]
    fn missing_points_skip_update() {
        let mut d = EwmaDetector::new(0.5);
        d.observe(0, Some(10.0));
        assert_eq!(d.observe(60, None), None);
        // State unchanged: prediction still 10.
        assert_eq!(d.observe(120, Some(12.0)), Some(2.0));
    }
}
