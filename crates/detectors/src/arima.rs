//! The ARIMA detector [10] — the one configuration of Table 3 whose
//! parameters are *estimated from the data* instead of swept (§4.3.3):
//! "their parameter spaces can be too large even for sampling. To deal with
//! such detectors, we estimate their 'best' parameters from the data …
//! since the data characteristics can change over time, it is also
//! necessary to update the parameter estimates periodically."
//!
//! The estimation pipeline (differencing order by variance reduction,
//! Hannan–Rissanen + AIC for (p, q)) lives in `opprentice_numeric::arima`.
//! This wrapper re-estimates the model every week of data and scores each
//! point with the one-step-ahead forecast residual.

use crate::Detector;
use opprentice_numeric::arima::{auto_fit, ArimaState};

/// Points of history used for each (re-)estimation.
const FIT_WINDOW: usize = 2016;
/// Minimum points before the first estimation.
const MIN_FIT: usize = 256;

/// The self-tuning ARIMA detector.
#[derive(Debug, Clone)]
pub struct ArimaDetector {
    interval: u32,
    /// Trailing raw values used for refits.
    history: Vec<f64>,
    state: Option<ArimaState>,
    points_since_fit: usize,
    refit_every: usize,
}

impl ArimaDetector {
    /// Creates the detector at the given sampling interval. The model is
    /// re-estimated every week of points.
    pub fn new(interval: u32) -> Self {
        let ppw = (7 * 86_400 / i64::from(interval)) as usize;
        Self {
            interval,
            history: Vec::new(),
            state: None,
            points_since_fit: 0,
            refit_every: ppw,
        }
    }

    fn maybe_fit(&mut self) {
        let due = match self.state {
            None => self.history.len() >= MIN_FIT,
            Some(_) => self.points_since_fit >= self.refit_every,
        };
        if !due {
            return;
        }
        let tail_start = self.history.len().saturating_sub(FIT_WINDOW);
        let tail = &self.history[tail_start..];
        if let Some(model) = auto_fit(tail) {
            let mut state = ArimaState::new(model);
            // Replay the fit window so the state starts with real history.
            for &x in tail {
                let _ = state.observe(x);
            }
            self.state = Some(state);
        }
        self.points_since_fit = 0;
        // Bound memory: the history never needs more than the fit window.
        if self.history.len() > 2 * FIT_WINDOW {
            self.history.drain(..self.history.len() - FIT_WINDOW);
        }
    }
}

impl Detector for ArimaDetector {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let Some(v) = value else {
            // Self-heal through gaps with the model's own forecast.
            if let Some(state) = &mut self.state {
                if let Some(f) = state.next_forecast().filter(|f| f.is_finite()) {
                    let _ = state.observe(f);
                    self.history.push(f);
                    self.points_since_fit += 1;
                }
            }
            return None;
        };
        let severity = match &mut self.state {
            Some(state) => state
                .observe(v)
                .map(|f| (v - f).abs())
                // An unstable fit can diverge; suppress the verdict rather
                // than emit a garbage severity (the weekly refit recovers).
                .filter(|s| s.is_finite()),
            None => None,
        };
        self.history.push(v);
        self.points_since_fit += 1;
        self.maybe_fit();
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "ARIMA"
    }

    fn config(&self) -> String {
        let _ = self.interval;
        match &self.state {
            Some(s) => {
                let o = s.model().order;
                format!("estimated ({},{},{})", o.p, o.d, o.q)
            }
            None => "estimated (pending)".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// AR(1)-ish deterministic driver.
    fn series(n: usize) -> Vec<f64> {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut x = 0.0f64;
        (0..n)
            .map(|_| {
                let mut acc = 0.0;
                for _ in 0..12 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    acc += (state >> 11) as f64 / (1u64 << 53) as f64;
                }
                x = 0.6 * x + (acc - 6.0);
                100.0 + x
            })
            .collect()
    }

    #[test]
    fn warms_up_then_emits() {
        let mut d = ArimaDetector::new(3600);
        let vals = series(MIN_FIT + 50);
        let mut first_some = None;
        for (i, &v) in vals.iter().enumerate() {
            if d.observe(i as i64 * 3600, Some(v)).is_some() && first_some.is_none() {
                first_some = Some(i);
            }
        }
        let first = first_some.expect("should emit after fitting");
        assert!(first >= MIN_FIT, "emitted during warm-up at {first}");
    }

    #[test]
    fn spike_scores_higher_than_normal() {
        let mut d = ArimaDetector::new(3600);
        let vals = series(MIN_FIT + 200);
        let mut normal = 0.0;
        for (i, &v) in vals.iter().enumerate() {
            if let Some(s) = d.observe(i as i64 * 3600, Some(v)) {
                normal = s;
            }
        }
        let n = vals.len() as i64;
        let spike = d.observe(n * 3600, Some(200.0)).unwrap();
        assert!(spike > 5.0 * (normal + 1.0), "{spike} vs {normal}");
    }

    #[test]
    fn config_reports_estimated_orders() {
        let mut d = ArimaDetector::new(3600);
        assert_eq!(d.config(), "estimated (pending)");
        for (i, &v) in series(MIN_FIT + 10).iter().enumerate() {
            d.observe(i as i64 * 3600, Some(v));
        }
        assert!(d.config().starts_with("estimated ("));
        assert!(!d.config().contains("pending"));
    }

    #[test]
    fn survives_gaps() {
        let mut d = ArimaDetector::new(3600);
        let vals = series(MIN_FIT + 100);
        for (i, &v) in vals.iter().enumerate() {
            let v = if i % 17 == 0 { None } else { Some(v) };
            let _ = d.observe(i as i64 * 3600, v);
        }
        assert!(d
            .observe((MIN_FIT + 101) as i64 * 3600, Some(100.0))
            .is_some());
    }

    #[test]
    fn history_memory_is_bounded() {
        let mut d = ArimaDetector::new(3600);
        for (i, &v) in series(5 * FIT_WINDOW).iter().enumerate() {
            d.observe(i as i64 * 3600, Some(v));
        }
        assert!(d.history.len() <= 2 * FIT_WINDOW);
    }
}
