//! The SVD detector [7] (Table 3: row ∈ {10..50} points, column ∈ {3,5,7}).
//!
//! Recent data is arranged into a `row × column` lag matrix whose columns
//! are consecutive segments, the newest segment last. Normal behaviour makes
//! the columns strongly correlated, so the matrix is approximately rank one;
//! the severity of the current point is its residual against the dominant
//! singular component (the "normal subspace" of [7]).
//!
//! Because a full SVD per point would be wasteful, the detector extracts
//! only the dominant component with a short power iteration on the small
//! `column × column` Gram matrix, warm-started from the previous point's
//! right singular vector. The exact Jacobi SVD lives in
//! `opprentice_numeric::svd` and anchors this approximation in tests.

use crate::Detector;
use std::collections::VecDeque;

/// Power-iteration steps per point (warm-started, so few are needed).
const POWER_STEPS: usize = 4;

/// The SVD reconstruction-residual detector.
#[derive(Debug, Clone)]
pub struct SvdDetector {
    rows: usize,
    cols: usize,
    window: VecDeque<f64>,
    /// Warm-start for the dominant right singular vector.
    v: Vec<f64>,
}

impl SvdDetector {
    /// Creates the detector with a `rows × cols` lag matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows < 2` or `cols < 2`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "lag matrix must be at least 2x2");
        Self {
            rows,
            cols,
            window: VecDeque::with_capacity(rows * cols),
            v: vec![1.0 / (cols as f64).sqrt(); cols],
        }
    }

    /// Residual of the newest entry against the rank-1 approximation.
    #[allow(clippy::needless_range_loop)] // explicit indices keep the Gram algebra readable
    fn rank1_residual(&mut self) -> f64 {
        let (r, c) = (self.rows, self.cols);
        let a = |i: usize, j: usize| self.window[j * r + i];

        // Gram matrix G = AᵀA (c × c).
        let mut g = vec![0.0; c * c];
        for j1 in 0..c {
            for j2 in j1..c {
                let mut dot = 0.0;
                for i in 0..r {
                    dot += a(i, j1) * a(i, j2);
                }
                g[j1 * c + j2] = dot;
                g[j2 * c + j1] = dot;
            }
        }

        // Power iteration on G, warm-started from the previous v.
        let mut v = self.v.clone();
        for _ in 0..POWER_STEPS {
            let mut next = vec![0.0; c];
            for (j1, n) in next.iter_mut().enumerate() {
                for j2 in 0..c {
                    *n += g[j1 * c + j2] * v[j2];
                }
            }
            let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-300 {
                // Degenerate (all-zero) window: fall back to uniform.
                next = vec![1.0 / (c as f64).sqrt(); c];
            } else {
                for x in &mut next {
                    *x /= norm;
                }
            }
            v = next;
        }
        self.v.clone_from(&v);

        // u σ = A v; the rank-1 approximation of entry (i, j) is (Av)_i v_j.
        let mut av_last = 0.0; // (A v) at the last row
        for j in 0..c {
            av_last += a(r - 1, j) * v[j];
        }
        let approx = av_last * v[c - 1];
        (a(r - 1, c - 1) - approx).abs()
    }
}

impl Detector for SvdDetector {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        self.window.push_back(v);
        let cap = self.rows * self.cols;
        if self.window.len() > cap {
            self.window.pop_front();
        }
        (self.window.len() == cap).then(|| self.rank1_residual())
    }

    fn name(&self) -> &'static str {
        "SVD"
    }

    fn config(&self) -> String {
        format!("row={},column={}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprentice_numeric::matrix::Matrix;
    use opprentice_numeric::svd::svd as jacobi_svd;

    fn feed(d: &mut SvdDetector, values: &[f64]) -> Vec<Option<f64>> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| d.observe(i as i64 * 60, Some(v)))
            .collect()
    }

    #[test]
    fn warm_up_is_rows_times_cols() {
        let mut d = SvdDetector::new(4, 3);
        let vals: Vec<f64> = (0..12).map(|i| (i % 4) as f64).collect();
        let out = feed(&mut d, &vals);
        assert!(out[..11].iter().all(Option::is_none));
        assert!(out[11].is_some());
    }

    #[test]
    fn periodic_signal_scores_low_spike_scores_high() {
        // Period equal to the row count: columns are identical => rank 1.
        let mut d = SvdDetector::new(8, 3);
        let periodic: Vec<f64> = (0..240).map(|i| 10.0 + ((i % 8) as f64) * 2.0).collect();
        let out = feed(&mut d, &periodic);
        let normal = out.last().unwrap().unwrap();
        assert!(normal < 1e-6, "normal residual {normal}");
        let spike_sev = d.observe(240 * 60, Some(100.0)).unwrap();
        assert!(spike_sev > 1.0, "spike residual {spike_sev}");
    }

    #[test]
    fn power_iteration_matches_jacobi_rank1_residual() {
        // Compare against the exact SVD on the same lag matrix.
        let (rows, cols) = (6, 3);
        let vals: Vec<f64> = (0..rows * cols)
            .map(|i| 10.0 + ((i % rows) as f64) + 0.1 * ((i * 7 % 13) as f64))
            .collect();
        let mut d = SvdDetector::new(rows, cols);
        let mut approx = None;
        for (i, &v) in vals.iter().enumerate() {
            approx = d.observe(i as i64, Some(v));
        }
        let approx = approx.unwrap();

        let mat = Matrix::from_rows(
            rows,
            cols,
            // Column-major window -> row-major matrix.
            (0..rows * cols)
                .map(|k| vals[(k % cols) * rows + k / cols])
                .collect(),
        );
        let dec = jacobi_svd(&mat);
        let rec = dec.reconstruct(1);
        let exact = (mat.get(rows - 1, cols - 1) - rec.get(rows - 1, cols - 1)).abs();
        assert!(
            (approx - exact).abs() < 0.05 * exact.max(0.1),
            "power-iter {approx} vs jacobi {exact}"
        );
    }

    #[test]
    fn missing_points_are_skipped_without_panic() {
        let mut d = SvdDetector::new(3, 2);
        for i in 0..20 {
            let v = if i % 5 == 0 { None } else { Some(i as f64) };
            let _ = d.observe(i * 60, v);
        }
    }

    #[test]
    fn all_zero_window_is_degenerate_but_finite() {
        let mut d = SvdDetector::new(3, 2);
        let out = feed(&mut d, &[0.0; 12]);
        let sev = out.last().unwrap().unwrap();
        assert!(sev.is_finite());
        assert!(sev.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_matrix_rejected() {
        let _ = SvdDetector::new(1, 3);
    }
}
