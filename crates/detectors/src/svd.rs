//! The SVD detector [7] (Table 3: row ∈ {10..50} points, column ∈ {3,5,7}).
//!
//! Recent data is arranged into a `row × column` lag matrix whose columns
//! are consecutive segments, the newest segment last. Normal behaviour makes
//! the columns strongly correlated, so the matrix is approximately rank one;
//! the severity of the current point is its residual against the dominant
//! singular component (the "normal subspace" of [7]).
//!
//! Because a full SVD per point would be wasteful, the detector extracts
//! only the dominant component with a short power iteration on the small
//! `column × column` Gram matrix, warm-started from the previous point's
//! right singular vector. The Gram matrix itself is maintained
//! *incrementally*: sliding the window by one point shifts every lag-matrix
//! column down by one entry, which changes each Gram entry by exactly one
//! dropped product and one gained product (an O(c²) update instead of the
//! O(c²·r) rebuild), with a periodic full rebuild to re-anchor rounding
//! drift. The exact Jacobi SVD lives in `opprentice_numeric::svd` and
//! anchors this approximation in tests.

use crate::Detector;

/// Power-iteration steps per point (warm-started, so few are needed).
const POWER_STEPS: usize = 4;

/// Slides between full Gram rebuilds from the window. The incremental
/// updates accumulate rounding drift of order `ε · |G|` per slide; the
/// amortized rebuild cost at this cadence is negligible.
const GRAM_REFRESH: usize = 64;

/// The SVD reconstruction-residual detector.
#[derive(Debug, Clone)]
pub struct SvdDetector {
    rows: usize,
    cols: usize,
    /// Ring buffer of window contents. Grows to `rows × cols` during
    /// warm-up, then stays fixed: the logical window (column-major, oldest
    /// first) starts at `start` and wraps, so sliding is one overwrite
    /// instead of a memmove.
    flat: Vec<f64>,
    /// Ring offset: physical index of the logically oldest entry.
    start: usize,
    /// Warm-start for the dominant right singular vector.
    v: Vec<f64>,
    /// Gram matrix (`cols × cols`), maintained incrementally across slides.
    gram: Vec<f64>,
    /// Power-iteration vector scratch.
    v_next: Vec<f64>,
    /// Slides since `gram` was last rebuilt from `flat`.
    gram_age: usize,
}

impl SvdDetector {
    /// Creates the detector with a `rows × cols` lag matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows < 2` or `cols < 2`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "lag matrix must be at least 2x2");
        Self {
            rows,
            cols,
            flat: Vec::with_capacity(rows * cols),
            start: 0,
            v: vec![1.0 / (cols as f64).sqrt(); cols],
            gram: vec![0.0; cols * cols],
            v_next: vec![0.0; cols],
            gram_age: 0,
        }
    }

    /// The window entry at logical index `k` (0 = oldest).
    #[inline]
    fn at(&self, k: usize) -> f64 {
        let cap = self.flat.len();
        let mut i = self.start + k;
        if i >= cap {
            i -= cap;
        }
        self.flat[i]
    }

    /// Rebuilds `G = AᵀA` from the window and resets the drift clock.
    fn rebuild_gram(&mut self) {
        let (r, c) = (self.rows, self.cols);
        for j1 in 0..c {
            for j2 in j1..c {
                let mut dot = 0.0;
                for i in 0..r {
                    dot += self.at(j1 * r + i) * self.at(j2 * r + i);
                }
                self.gram[j1 * c + j2] = dot;
                self.gram[j2 * c + j1] = dot;
            }
        }
        self.gram_age = 0;
    }

    /// Slides the full window by one point, updating the Gram matrix in
    /// O(c²). Dropping the oldest entry and appending `v` shifts every
    /// lag-matrix column down by one, so each Gram entry loses exactly one
    /// product and gains one:
    /// `G'[j1,j2] = G[j1,j2] − A₀(j1)·A₀(j2) + ext(j1·r+r)·ext(j2·r+r)`
    /// where `A₀(j)` is the entry leaving column `j` (logical index `j·r`)
    /// and `ext(k)` is `v` at the one-past-the-end index, the logical
    /// window entry otherwise.
    fn slide(&mut self, v: f64) {
        let (r, c) = (self.rows, self.cols);
        let cap = r * c;
        if self.gram_age < GRAM_REFRESH {
            // Per column j: the entry leaving (logical j·r) and the entry
            // arriving from the next column's head (logical (j+1)·r, which
            // for the last column is the incoming value itself).
            let mut leave = [0.0f64; 8];
            let mut enter = [0.0f64; 8];
            for j in 0..c {
                leave[j] = self.at(j * r);
                enter[j] = if j + 1 == c { v } else { self.at((j + 1) * r) };
            }
            for j1 in 0..c {
                for j2 in j1..c {
                    let delta = enter[j1] * enter[j2] - leave[j1] * leave[j2];
                    self.gram[j1 * c + j2] += delta;
                    if j1 != j2 {
                        self.gram[j2 * c + j1] += delta;
                    }
                }
            }
        }
        // The oldest slot becomes the newest entry; the logical window
        // rotates by advancing `start`.
        self.flat[self.start] = v;
        self.start += 1;
        if self.start == cap {
            self.start = 0;
        }
        if self.gram_age >= GRAM_REFRESH {
            self.rebuild_gram();
        } else {
            self.gram_age += 1;
        }
    }

    /// Residual of the newest entry against the rank-1 approximation.
    /// Assumes `flat` and `gram` are current.
    #[allow(clippy::needless_range_loop)] // explicit indices keep the algebra readable
    fn rank1_residual(&mut self) -> f64 {
        let (r, c) = (self.rows, self.cols);

        // Power iteration on G, warm-started from the previous v. On a
        // stationary stretch the warm start is already the fixed point, so
        // bail out as soon as an iteration stops moving v — regime changes
        // still get the full step budget.
        for _ in 0..POWER_STEPS {
            for (j1, n) in self.v_next.iter_mut().enumerate() {
                let mut acc = 0.0;
                for j2 in 0..c {
                    acc += self.gram[j1 * c + j2] * self.v[j2];
                }
                *n = acc;
            }
            let norm = self.v_next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-300 {
                // Degenerate (all-zero) window: fall back to uniform.
                self.v_next.fill(1.0 / (c as f64).sqrt());
            } else {
                for x in &mut self.v_next {
                    *x /= norm;
                }
            }
            let moved = self
                .v
                .iter()
                .zip(&self.v_next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            std::mem::swap(&mut self.v, &mut self.v_next);
            if moved < 1e-12 {
                break;
            }
        }

        // u σ = A v; the rank-1 approximation of entry (i, j) is (Av)_i v_j.
        let mut av_last = 0.0; // (A v) at the last row
        for j in 0..c {
            av_last += self.at(j * r + r - 1) * self.v[j];
        }
        let approx = av_last * self.v[c - 1];
        (self.at(c * r - 1) - approx).abs()
    }
}

impl Detector for SvdDetector {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        let cap = self.rows * self.cols;
        if self.flat.len() < cap {
            self.flat.push(v);
            if self.flat.len() < cap {
                return None;
            }
            self.rebuild_gram();
        } else {
            self.slide(v);
        }
        Some(self.rank1_residual())
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "SVD"
    }

    fn config(&self) -> String {
        format!("row={},column={}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprentice_numeric::matrix::Matrix;
    use opprentice_numeric::svd::svd as jacobi_svd;

    fn feed(d: &mut SvdDetector, values: &[f64]) -> Vec<Option<f64>> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| d.observe(i as i64 * 60, Some(v)))
            .collect()
    }

    #[test]
    fn warm_up_is_rows_times_cols() {
        let mut d = SvdDetector::new(4, 3);
        let vals: Vec<f64> = (0..12).map(|i| (i % 4) as f64).collect();
        let out = feed(&mut d, &vals);
        assert!(out[..11].iter().all(Option::is_none));
        assert!(out[11].is_some());
    }

    #[test]
    fn periodic_signal_scores_low_spike_scores_high() {
        // Period equal to the row count: columns are identical => rank 1.
        let mut d = SvdDetector::new(8, 3);
        let periodic: Vec<f64> = (0..240).map(|i| 10.0 + ((i % 8) as f64) * 2.0).collect();
        let out = feed(&mut d, &periodic);
        let normal = out.last().unwrap().unwrap();
        assert!(normal < 1e-6, "normal residual {normal}");
        let spike_sev = d.observe(240 * 60, Some(100.0)).unwrap();
        assert!(spike_sev > 1.0, "spike residual {spike_sev}");
    }

    #[test]
    fn power_iteration_matches_jacobi_rank1_residual() {
        // Compare against the exact SVD on the same lag matrix.
        let (rows, cols) = (6, 3);
        let vals: Vec<f64> = (0..rows * cols)
            .map(|i| 10.0 + ((i % rows) as f64) + 0.1 * ((i * 7 % 13) as f64))
            .collect();
        let mut d = SvdDetector::new(rows, cols);
        let mut approx = None;
        for (i, &v) in vals.iter().enumerate() {
            approx = d.observe(i as i64, Some(v));
        }
        let approx = approx.unwrap();

        let mat = Matrix::from_rows(
            rows,
            cols,
            // Column-major window -> row-major matrix.
            (0..rows * cols)
                .map(|k| vals[(k % cols) * rows + k / cols])
                .collect(),
        );
        let dec = jacobi_svd(&mat);
        let rec = dec.reconstruct(1);
        let exact = (mat.get(rows - 1, cols - 1) - rec.get(rows - 1, cols - 1)).abs();
        assert!(
            (approx - exact).abs() < 0.05 * exact.max(0.1),
            "power-iter {approx} vs jacobi {exact}"
        );
    }

    #[test]
    fn missing_points_are_skipped_without_panic() {
        let mut d = SvdDetector::new(3, 2);
        for i in 0..20 {
            let v = if i % 5 == 0 { None } else { Some(i as f64) };
            let _ = d.observe(i * 60, v);
        }
    }

    #[test]
    fn all_zero_window_is_degenerate_but_finite() {
        let mut d = SvdDetector::new(3, 2);
        let out = feed(&mut d, &[0.0; 12]);
        let sev = out.last().unwrap().unwrap();
        assert!(sev.is_finite());
        assert!(sev.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_matrix_rejected() {
        let _ = SvdDetector::new(1, 3);
    }
}
