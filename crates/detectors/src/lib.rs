//! The 14 basic anomaly detectors of the Opprentice paper, implemented as
//! *online severity extractors*.
//!
//! §4.3.1 gives the unified detector model this crate implements:
//!
//! ```text
//! data point --detector with parameters--> severity --sThld--> {1, 0}
//! ```
//!
//! A [`Detector`] consumes one `(timestamp, value)` pair at a time — never
//! looking at future data, per the online requirement of §4.3.2 — and emits
//! a non-negative *severity* measuring how anomalous the point looks from
//! its perspective. During a warm-up window (moving-average history, the
//! first seasons of Holt–Winters, …) it emits `None` and the framework
//! "skips the detection of the data in the warm-up window" (§4.3.2).
//!
//! In Opprentice the severities are **features**, not verdicts: §4.3.1
//! "a configuration acts as a feature extractor". The [`registry`] module
//! builds the exact 133 configurations of Table 3. A severity can still be
//! turned into the traditional binary verdict by comparing against an
//! sThld — [`apply_sthld`] — which is how the basic-detector baselines and
//! the static combiners of §5.3.1 are evaluated.
//!
//! | Detector | configs | parameters (Table 3) |
//! |---|---|---|
//! | Simple threshold | 1 | none |
//! | Diff | 3 | last-slot, last-day, last-week |
//! | Simple MA | 5 | win = 10..50 points |
//! | Weighted MA | 5 | win = 10..50 points |
//! | MA of diff | 5 | win = 10..50 points |
//! | EWMA | 5 | α = 0.1..0.9 |
//! | TSD | 5 | win = 1..5 weeks |
//! | TSD MAD | 5 | win = 1..5 weeks |
//! | Historical average | 5 | win = 1..5 weeks |
//! | Historical MAD | 5 | win = 1..5 weeks |
//! | Holt–Winters | 64 | α, β, γ ∈ {0.2, 0.4, 0.6, 0.8} |
//! | SVD | 15 | row = 10..50, column = 3, 5, 7 |
//! | Wavelet | 9 | win = 3, 5, 7 days × low/mid/high |
//! | ARIMA | 1 | estimated from data |
//! | **total** | **133** | |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arima;
pub mod diff;
pub mod ewma;
pub mod extensions;
pub mod fused;
pub mod historical;
pub mod holt_winters;
pub mod ma;
pub mod registry;
pub mod simple_threshold;
pub mod svd;
pub mod tsd;
pub mod wavelet;

pub use registry::{registry, ConfiguredDetector};

/// An online anomaly-severity extractor (§4.3.1's unified detector model).
///
/// Implementations must be strictly causal: the severity of a point may
/// depend only on that point and earlier ones.
pub trait Detector: Send {
    /// Feeds the next point (in time order; `value` is `None` for a missing
    /// point) and returns its severity:
    ///
    /// * `Some(s)` with `s >= 0` — how anomalous the point looks,
    /// * `None` — no verdict (warm-up, or the point itself is missing).
    fn observe(&mut self, timestamp: i64, value: Option<f64>) -> Option<f64>;

    /// Feeds a run of consecutive points, writing one severity per point
    /// into `out`. The default implementation is the per-point loop, so any
    /// override **must** stay bit-identical to repeated [`Detector::observe`]
    /// calls — batching is a scheduling optimization, never a semantic one.
    ///
    /// # Panics
    ///
    /// Panics if `timestamps`, `values` and `out` lengths differ.
    fn observe_batch(
        &mut self,
        timestamps: &[i64],
        values: &[Option<f64>],
        out: &mut [Option<f64>],
    ) {
        assert_eq!(timestamps.len(), values.len(), "batch length mismatch");
        assert_eq!(timestamps.len(), out.len(), "batch output length mismatch");
        for ((&ts, &v), slot) in timestamps.iter().zip(values).zip(out) {
            *slot = self.observe(ts, v);
        }
    }

    /// A boxed deep copy of this detector's current state. Clones continue
    /// independently: feeding both copies the same points yields identical
    /// severity streams (the clone-determinism contract behind snapshots
    /// and RESUME).
    fn clone_box(&self) -> Box<dyn Detector>;

    /// The detector family name, e.g. `"TSD MAD"`.
    fn name(&self) -> &'static str;

    /// Human-readable parameter description, e.g. `"win=3 weeks"`.
    fn config(&self) -> String;
}

/// Upper bound applied to severities at the framework boundary.
///
/// Some swept configurations are genuinely unstable on some KPIs — e.g.
/// Holt–Winters with a small α and large β diverges on spiky series,
/// emitting astronomically large residuals. That instability is expected
/// (most of the 133 configurations are inaccurate on any given KPI, §5.3.1)
/// but severities beyond this bound carry no extra information and their
/// *squares* overflow `f64` in downstream statistics, so the extraction
/// layer clamps here.
pub const MAX_SEVERITY: f64 = 1e9;

/// Clamps a severity to `[0, MAX_SEVERITY]` (and `None` stays `None`).
pub fn clamp_severity(severity: Option<f64>) -> Option<f64> {
    severity.map(|s| s.clamp(0.0, MAX_SEVERITY))
}

/// Translates a severity into the traditional binary verdict by comparing
/// with a severity threshold (the paper's *sThld*). `None` (warm-up) maps
/// to "not anomalous", matching the skip rule of §4.3.2.
pub fn apply_sthld(severity: Option<f64>, sthld: f64) -> bool {
    severity.is_some_and(|s| s >= sthld)
}

/// Runs one detector over a whole series, producing one severity slot per
/// point. A convenience used by tests, examples and the feature extractor.
pub fn run_detector(
    detector: &mut dyn Detector,
    series: &opprentice_timeseries::TimeSeries,
) -> Vec<Option<f64>> {
    series
        .iter()
        .map(|(ts, v)| clamp_severity(detector.observe(ts, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_severity_bounds() {
        assert_eq!(clamp_severity(None), None);
        assert_eq!(clamp_severity(Some(5.0)), Some(5.0));
        assert_eq!(clamp_severity(Some(1e30)), Some(MAX_SEVERITY));
        assert_eq!(clamp_severity(Some(f64::INFINITY)), Some(MAX_SEVERITY));
    }

    #[test]
    fn apply_sthld_semantics() {
        assert!(apply_sthld(Some(5.0), 3.0));
        assert!(apply_sthld(Some(3.0), 3.0));
        assert!(!apply_sthld(Some(1.0), 3.0));
        assert!(!apply_sthld(None, 0.0));
    }
}
