//! The "Diff" detector — one of the two detectors the studied search engine
//! already used before the paper (§5.2): "simply measures anomaly severities
//! using the differences between the current point and the point of last
//! slot, the point of last day, and the point of last week."
//!
//! Each lag is one configuration (3 in total).

use crate::Detector;
use std::collections::VecDeque;

/// Which reference point the difference is taken against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffLag {
    /// Previous point.
    LastSlot,
    /// Same slot yesterday.
    LastDay,
    /// Same slot last week.
    LastWeek,
}

impl DiffLag {
    /// Lag in points at the given sampling interval.
    pub fn points(self, interval: u32) -> usize {
        let per_day = (86_400 / i64::from(interval)) as usize;
        match self {
            DiffLag::LastSlot => 1,
            DiffLag::LastDay => per_day,
            DiffLag::LastWeek => per_day * 7,
        }
    }

    fn label(self) -> &'static str {
        match self {
            DiffLag::LastSlot => "last-slot",
            DiffLag::LastDay => "last-day",
            DiffLag::LastWeek => "last-week",
        }
    }
}

/// Severity = |v(t) − v(t − lag)|.
#[derive(Debug, Clone)]
pub struct Diff {
    lag: DiffLag,
    lag_points: usize,
    /// Ring of the last `lag_points` raw values (missing kept as `None`) so
    /// the lag stays aligned in *time* even through gaps.
    ring: VecDeque<Option<f64>>,
}

impl Diff {
    /// Creates a diff detector for the given lag at the given interval.
    pub fn new(lag: DiffLag, interval: u32) -> Self {
        let lag_points = lag.points(interval);
        Self {
            lag,
            lag_points,
            ring: VecDeque::with_capacity(lag_points),
        }
    }
}

impl Detector for Diff {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let severity = match (value, self.ring.front().copied().flatten()) {
            (Some(v), Some(ref_v)) if self.ring.len() == self.lag_points => Some((v - ref_v).abs()),
            _ => None,
        };
        self.ring.push_back(value);
        if self.ring.len() > self.lag_points {
            self.ring.pop_front();
        }
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "diff"
    }

    fn config(&self) -> String {
        self.lag.label().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_slot_diff() {
        let mut d = Diff::new(DiffLag::LastSlot, 60);
        assert_eq!(d.observe(0, Some(10.0)), None); // warm-up
        assert_eq!(d.observe(60, Some(13.0)), Some(3.0));
        assert_eq!(d.observe(120, Some(8.0)), Some(5.0));
    }

    #[test]
    fn last_day_diff_uses_daily_lag() {
        let mut d = Diff::new(DiffLag::LastDay, 3600); // 24 points/day
        for i in 0..24 {
            assert_eq!(d.observe(i * 3600, Some(i as f64)), None);
        }
        // Point 24 compares with point 0.
        assert_eq!(d.observe(24 * 3600, Some(7.0)), Some(7.0));
    }

    #[test]
    fn week_lag_points() {
        assert_eq!(DiffLag::LastWeek.points(60), 10080);
        assert_eq!(DiffLag::LastDay.points(300), 288);
        assert_eq!(DiffLag::LastSlot.points(60), 1);
    }

    #[test]
    fn missing_reference_yields_none_but_keeps_alignment() {
        let mut d = Diff::new(DiffLag::LastSlot, 60);
        d.observe(0, Some(10.0));
        assert_eq!(d.observe(60, None), None); // missing current
                                               // The missing point is in the ring: reference for this one is None.
        assert_eq!(d.observe(120, Some(11.0)), None);
        // Next point compares against 11.0 (one slot back), alignment kept.
        assert_eq!(d.observe(180, Some(15.0)), Some(4.0));
    }

    #[test]
    fn severity_is_symmetric() {
        let mut up = Diff::new(DiffLag::LastSlot, 60);
        up.observe(0, Some(10.0));
        let s_up = up.observe(60, Some(20.0));
        let mut down = Diff::new(DiffLag::LastSlot, 60);
        down.observe(0, Some(10.0));
        let s_down = down.observe(60, Some(0.0));
        assert_eq!(s_up, s_down);
    }
}
