//! Historical average [5] and its MAD variant (Table 3, win = 1..5 weeks).
//!
//! §4.3.1: "historical average assumes the data follow Gaussian
//! distribution, and uses how many times of standard deviation the point is
//! away from the mean as the severity." The Gaussian is fit per *slot of the
//! day* over the trailing `win` weeks (i.e. `7 · win` same-time-of-day
//! samples), following the time-of-day modeling of [5]. The MAD variant
//! replaces mean/σ with median/MAD.

use crate::Detector;
use opprentice_numeric::rolling::SortedWindow;
use opprentice_timeseries::slot_of_day;

/// Minimum same-slot samples before severities start.
pub(crate) const MIN_HISTORY: usize = 5;

/// The historical average / historical MAD detector.
#[derive(Debug, Clone)]
pub struct HistoricalAverage {
    weeks: usize,
    robust: bool,
    interval: u32,
    /// Per-slot-of-day history, up to `7 * weeks` entries each.
    per_slot: Vec<SortedWindow>,
}

impl HistoricalAverage {
    /// Creates the detector with a memory of `weeks` weeks (that is,
    /// `7 * weeks` samples per time-of-day slot). `robust` selects MAD.
    ///
    /// # Panics
    ///
    /// Panics if `weeks == 0`.
    pub fn new(weeks: usize, robust: bool, interval: u32) -> Self {
        assert!(weeks > 0, "weeks must be positive");
        let ppd = (86_400 / i64::from(interval)) as usize;
        Self {
            weeks,
            robust,
            interval,
            per_slot: vec![SortedWindow::new(7 * weeks); ppd],
        }
    }
}

impl Detector for HistoricalAverage {
    fn observe(&mut self, timestamp: i64, value: Option<f64>) -> Option<f64> {
        let slot = slot_of_day(timestamp, self.interval);
        let v = value?;

        let history = &mut self.per_slot[slot];
        let severity = if history.len() >= MIN_HISTORY {
            let (center, spread_raw) = if self.robust {
                (
                    history.median().expect("non-empty"),
                    history.mad().unwrap_or(0.0),
                )
            } else {
                (
                    history.mean().expect("non-empty"),
                    history.std_dev().unwrap_or(0.0),
                )
            };
            let spread = spread_raw.max(1e-9 * (1.0 + center.abs()));
            Some((v - center).abs() / spread)
        } else {
            None
        };

        history.push(v);
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        if self.robust {
            "historical MAD"
        } else {
            "historical average"
        }
    }

    fn config(&self) -> String {
        format!("win={} week(s)", self.weeks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hourly value with a clean daily pattern plus small deterministic noise.
    fn daily_pattern(ts: i64) -> f64 {
        let slot = slot_of_day(ts, 3600);
        100.0 + 5.0 * slot as f64 + ((ts / 3600) % 3) as f64
    }

    #[test]
    fn needs_min_history_per_slot() {
        let mut d = HistoricalAverage::new(1, false, 3600);
        // Fewer than MIN_HISTORY days: all warm-up.
        for i in 0..(24 * (MIN_HISTORY as i64)) {
            let ts = i * 3600;
            assert_eq!(d.observe(ts, Some(daily_pattern(ts))), None);
        }
        // Day MIN_HISTORY: severities appear.
        let ts = 24 * (MIN_HISTORY as i64) * 3600;
        assert!(d.observe(ts, Some(daily_pattern(ts))).is_some());
    }

    #[test]
    fn severity_counts_sigmas() {
        let mut d = HistoricalAverage::new(2, false, 3600);
        // Slot 0 history: alternating 99/101 => mean 100, std 1.
        for day in 0..10i64 {
            let ts = day * 86_400;
            let v = if day % 2 == 0 { 99.0 } else { 101.0 };
            d.observe(ts, Some(v));
        }
        let sev = d.observe(10 * 86_400, Some(105.0)).unwrap();
        assert!((sev - 5.0).abs() < 1e-9, "sev {sev}");
    }

    #[test]
    fn anomalies_score_much_higher_than_normal() {
        let mut d = HistoricalAverage::new(2, false, 3600);
        let mut normal = 0.0;
        for i in 0..(24 * 20) {
            let ts = i * 3600;
            if let Some(s) = d.observe(ts, Some(daily_pattern(ts))) {
                normal = s;
            }
        }
        let ts = 24 * 20 * 3600;
        let spike = d.observe(ts, Some(daily_pattern(ts) + 200.0)).unwrap();
        assert!(spike > 10.0 * (normal + 1.0), "{spike} vs {normal}");
    }

    #[test]
    fn mad_variant_is_robust_to_history_outliers() {
        let mut plain = HistoricalAverage::new(3, false, 3600);
        let mut robust = HistoricalAverage::new(3, true, 3600);
        for day in 0..20i64 {
            let ts = day * 86_400;
            // Slot-0 history is ~100 except two wild outliers.
            let v = if day == 5 || day == 11 {
                10_000.0
            } else {
                100.0 + (day % 3) as f64
            };
            plain.observe(ts, Some(v));
            robust.observe(ts, Some(v));
        }
        let probe = 100.0 + 30.0;
        let s_plain = plain.observe(20 * 86_400, Some(probe)).unwrap();
        let s_robust = robust.observe(20 * 86_400, Some(probe)).unwrap();
        // The outliers inflate σ, deflating the plain severity.
        assert!(s_robust > 3.0 * s_plain, "MAD {s_robust} vs std {s_plain}");
    }

    #[test]
    fn slots_are_independent() {
        let mut d = HistoricalAverage::new(1, false, 3600);
        // Build history only for slot 0.
        for day in 0..7i64 {
            d.observe(day * 86_400, Some(100.0 + (day % 2) as f64));
        }
        // Slot 1 has no history: warm-up.
        assert_eq!(d.observe(3600, Some(100.0)), None);
        // Slot 0 has: severity.
        assert!(d.observe(7 * 86_400, Some(100.0)).is_some());
    }

    #[test]
    fn history_capped_at_seven_weeks_days() {
        let mut d = HistoricalAverage::new(1, false, 3600);
        for day in 0..30i64 {
            d.observe(day * 86_400, Some(day as f64));
        }
        assert_eq!(d.per_slot[0].len(), 7);
        // Oldest entries evicted: the window holds days 23..30.
        assert_eq!(d.per_slot[0].front(), Some(23.0));
    }
}
