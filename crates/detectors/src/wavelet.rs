//! The wavelet detector [12] (Table 3: win ∈ {3, 5, 7} days,
//! freq ∈ {low, mid, high}).
//!
//! Barford et al. separate the signal into frequency bands and score how
//! unusual the band content is. The exact Haar multiresolution analysis
//! (`opprentice_numeric::wavelet`) would require re-transforming the whole
//! trailing window on every point; instead the detector uses the standard
//! streaming equivalent — a dyadic moving-average filter bank. A Haar
//! approximation at level *l* is a moving average over `2^l` points, so the
//! band signals are differences of moving averages:
//!
//! * **high** — `x − MA(short)`: sub-`short` fluctuations,
//! * **mid** — `MA(short) − MA(medium)`: intra-day structure,
//! * **low** — `MA(medium) − MA(win days)`: multi-day drift.
//!
//! The severity is the band value normalized by a running MAD of recent
//! band values, so each band reads in robust sigmas.
//!
//! The three bands of one window length read the *same* moving averages, so
//! the registry's 9 wavelet configurations share 3 [`FilterBank`]s (one per
//! `win_days`): each bank advances once per point and hands all three band
//! values to its views. Band views of one bank must therefore see points in
//! lockstep — the extraction layer keeps registry-mates on one thread (see
//! `ConfiguredDetector::group`).

use crate::Detector;
use opprentice_numeric::rolling::SortedWindow;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Which frequency band the configuration extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// Multi-day drift.
    Low,
    /// Intra-day structure.
    Mid,
    /// Point-scale fluctuation.
    High,
}

impl Band {
    fn label(self) -> &'static str {
        match self {
            Band::Low => "low",
            Band::Mid => "mid",
            Band::High => "high",
        }
    }
}

/// Band-value history used for the running MAD.
const SPREAD_WINDOW: usize = 2016;
const SPREAD_REFRESH: usize = 64;
const MIN_SPREAD_SAMPLES: usize = 10;

/// A running moving average over the last `len` present values.
#[derive(Debug, Clone)]
struct RunningMa {
    len: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl RunningMa {
    fn new(len: usize) -> Self {
        Self {
            len,
            buf: VecDeque::with_capacity(len),
            sum: 0.0,
        }
    }

    fn push(&mut self, v: f64) {
        self.buf.push_back(v);
        self.sum += v;
        if self.buf.len() > self.len {
            self.sum -= self.buf.pop_front().expect("non-empty");
        }
    }

    fn full(&self) -> bool {
        self.buf.len() == self.len
    }

    fn mean(&self) -> f64 {
        self.sum / self.buf.len() as f64
    }
}

/// The moving-average filter bank shared by the three band views of one
/// window length. Advances once per point; the per-point band triple is
/// cached so sibling views read it without recomputation.
#[derive(Debug, Clone)]
struct FilterBank {
    /// Index of the last point fed in (0 = nothing yet).
    seq: u64,
    short: RunningMa,
    medium: RunningMa,
    long: RunningMa,
    /// `[low, mid, high]` for point `seq`; `None` while warming up or when
    /// the point was missing.
    bands: Option<[f64; 3]>,
}

impl FilterBank {
    fn new(win_days: usize, interval: u32) -> Self {
        let ppd = (86_400 / i64::from(interval)) as usize;
        let short = (ppd / 64).clamp(2, 32);
        let medium = (ppd / 8).clamp(short + 1, 512);
        let long = (win_days * ppd).max(medium + 1);
        Self {
            seq: 0,
            short: RunningMa::new(short),
            medium: RunningMa::new(medium),
            long: RunningMa::new(long),
            bands: None,
        }
    }

    /// Feeds point `seq` (idempotent: sibling views call this with the same
    /// `seq` and only the first call advances the filters).
    ///
    /// # Panics
    ///
    /// Panics if the views desynchronize (a view skipped a point or ran
    /// ahead by more than one) — the extraction layer's grouping guarantee
    /// was violated.
    fn advance(&mut self, seq: u64, value: Option<f64>) -> Option<[f64; 3]> {
        if seq == self.seq {
            return self.bands;
        }
        assert_eq!(
            seq,
            self.seq + 1,
            "wavelet band views desynchronized (grouping violated)"
        );
        self.seq = seq;
        self.bands = None;
        let v = value?;
        self.short.push(v);
        self.medium.push(v);
        self.long.push(v);
        if !self.long.full() {
            return None;
        }
        let high = v - self.short.mean();
        let mid = self.short.mean() - self.medium.mean();
        let low = self.medium.mean() - self.long.mean();
        self.bands = Some([low, mid, high]);
        self.bands
    }
}

/// The streaming wavelet-band detector.
#[derive(Debug)]
pub struct WaveletDetector {
    win_days: usize,
    band: Band,
    /// Shared with the sibling band views of the same window length (or
    /// private, for a standalone detector).
    bank: Arc<Mutex<FilterBank>>,
    /// This view's point counter, kept in lockstep with the bank's.
    seq: u64,
    band_history: SortedWindow,
    spread: f64,
    since_refresh: usize,
}

impl Clone for WaveletDetector {
    /// Deep-copies the filter bank: a clone continues independently from
    /// the clone point and never shares state with the original (or with
    /// the original's sibling views).
    fn clone(&self) -> Self {
        let bank = self.bank.lock().expect("wavelet bank poisoned").clone();
        Self {
            win_days: self.win_days,
            band: self.band,
            bank: Arc::new(Mutex::new(bank)),
            seq: self.seq,
            band_history: self.band_history.clone(),
            spread: self.spread,
            since_refresh: self.since_refresh,
        }
    }
}

impl WaveletDetector {
    /// Creates a standalone detector (private filter bank) at the given
    /// sampling interval. The long window is `win_days` days; the short and
    /// medium windows are fixed dyadic fractions of a day (capped to stay
    /// meaningful at coarse intervals).
    ///
    /// # Panics
    ///
    /// Panics if `win_days == 0`.
    pub fn new(win_days: usize, band: Band, interval: u32) -> Self {
        assert!(win_days > 0, "win_days must be positive");
        let bank = Arc::new(Mutex::new(FilterBank::new(win_days, interval)));
        Self::with_bank(win_days, band, bank)
    }

    /// The three band views of one window length, sharing a single filter
    /// bank (3 moving averages instead of 9). The views must observe every
    /// point in lockstep; the registry marks them as one scheduling group.
    ///
    /// # Panics
    ///
    /// Panics if `win_days == 0`.
    pub fn banked(win_days: usize, interval: u32) -> [WaveletDetector; 3] {
        assert!(win_days > 0, "win_days must be positive");
        let bank = Arc::new(Mutex::new(FilterBank::new(win_days, interval)));
        [Band::Low, Band::Mid, Band::High]
            .map(|band| Self::with_bank(win_days, band, Arc::clone(&bank)))
    }

    fn with_bank(win_days: usize, band: Band, bank: Arc<Mutex<FilterBank>>) -> Self {
        Self {
            win_days,
            band,
            bank,
            seq: 0,
            band_history: SortedWindow::new(SPREAD_WINDOW),
            spread: 0.0,
            since_refresh: 0,
        }
    }

    fn refresh_spread(&mut self) {
        let raw = self.band_history.mad().unwrap_or(0.0);
        let scale = self.band_history.max_abs();
        self.spread = raw.max(1e-9 * (1.0 + scale));
    }
}

impl Detector for WaveletDetector {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        self.seq += 1;
        let bands = self
            .bank
            .lock()
            .expect("wavelet bank poisoned")
            .advance(self.seq, value)?;
        let band_value = match self.band {
            Band::Low => bands[0],
            Band::Mid => bands[1],
            Band::High => bands[2],
        };
        self.band_history.push(band_value);
        self.since_refresh += 1;
        if self.spread == 0.0 || self.since_refresh >= SPREAD_REFRESH {
            self.refresh_spread();
            self.since_refresh = 0;
        }
        (self.band_history.len() >= MIN_SPREAD_SAMPLES).then(|| band_value.abs() / self.spread)
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "wavelet"
    }

    fn config(&self) -> String {
        format!("win={} days,freq={}", self.win_days, self.band.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hourly signal: daily sine + slow weekly drift.
    fn signal(i: i64) -> f64 {
        let day = std::f64::consts::TAU * (i % 24) as f64 / 24.0;
        100.0 + 10.0 * day.sin() + 0.05 * i as f64
    }

    fn run(band: Band, values: impl Iterator<Item = f64>) -> Vec<Option<f64>> {
        let mut d = WaveletDetector::new(3, band, 3600);
        values
            .enumerate()
            .map(|(i, v)| d.observe(i as i64 * 3600, Some(v)))
            .collect()
    }

    #[test]
    fn warm_up_lasts_the_long_window() {
        let out = run(Band::High, (0..(24 * 3 + 10)).map(signal));
        let warm = 24 * 3; // 3 days at hourly interval
        assert!(out[..warm - 1].iter().all(Option::is_none));
        assert!(out[warm..].iter().any(Option::is_some));
    }

    #[test]
    fn high_band_catches_point_spikes() {
        let n = 24 * 10;
        let mut vals: Vec<f64> = (0..n).map(signal).collect();
        vals.push(signal(n) + 200.0); // spike
        let out = run(Band::High, vals.into_iter());
        let spike_sev = out.last().unwrap().unwrap();
        let normal: f64 = out[out.len() - 20..out.len() - 1]
            .iter()
            .flatten()
            .cloned()
            .fold(0.0, f64::max);
        assert!(spike_sev > 5.0 * (normal + 1.0), "{spike_sev} vs {normal}");
    }

    #[test]
    fn low_band_catches_level_shifts_high_band_forgets_them() {
        let n = 24 * 10;
        let shifted: Vec<f64> = (0..n + 72)
            .map(|i| signal(i) + if i >= n { 80.0 } else { 0.0 })
            .collect();
        let low = run(Band::Low, shifted.iter().copied());
        let high = run(Band::High, shifted.iter().copied());
        // Two days after the shift: the low band still sees the offset
        // (medium MA moved, long MA lags), the high band has re-centered.
        let idx = (n + 48) as usize;
        let low_sev = low[idx].unwrap();
        let high_sev = high[idx].unwrap();
        assert!(low_sev > 2.0 * high_sev, "low {low_sev} vs high {high_sev}");
    }

    #[test]
    fn bands_have_increasing_window_order() {
        let d = WaveletDetector::new(3, Band::Mid, 3600);
        let bank = d.bank.lock().unwrap();
        assert!(bank.short.len < bank.medium.len);
        assert!(bank.medium.len < bank.long.len);
    }

    #[test]
    fn banked_views_match_standalone_detectors_bit_for_bit() {
        let mut banked = WaveletDetector::banked(3, 3600);
        let mut standalone: Vec<WaveletDetector> = [Band::Low, Band::Mid, Band::High]
            .into_iter()
            .map(|b| WaveletDetector::new(3, b, 3600))
            .collect();
        for i in 0..(24 * 6) {
            let ts = i * 3600;
            let v = if i % 13 == 7 { None } else { Some(signal(i)) };
            for (shared, private) in banked.iter_mut().zip(standalone.iter_mut()) {
                let a = shared.observe(ts, v);
                let b = private.observe(ts, v);
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "point {i} band {:?}",
                    private.band
                );
            }
        }
    }

    #[test]
    fn cloned_view_detaches_from_the_shared_bank() {
        let [mut low, mut mid, _high] = WaveletDetector::banked(3, 3600);
        for i in 0..(24 * 4) {
            let ts = i * 3600;
            low.observe(ts, Some(signal(i)));
            mid.observe(ts, Some(signal(i)));
        }
        let mut mid_clone = mid.clone();
        // The original pair advances; the clone stays at the clone point
        // and then continues independently — identical outputs.
        for i in (24 * 4)..(24 * 5) {
            let ts = i * 3600;
            low.observe(ts, Some(signal(i)));
            let a = mid.observe(ts, Some(signal(i)));
            let b = mid_clone.observe(ts, Some(signal(i)));
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits), "point {i}");
        }
    }

    #[test]
    #[should_panic(expected = "desynchronized")]
    fn desynchronized_views_panic() {
        let [mut low, mut mid, _high] = WaveletDetector::banked(3, 3600);
        low.observe(0, Some(1.0));
        low.observe(3600, Some(1.0));
        mid.observe(0, Some(1.0)); // mid skipped a point the bank consumed
    }

    #[test]
    fn coarse_interval_still_valid() {
        // 60-minute interval (SRT): windows stay ordered and usable.
        let mut d = WaveletDetector::new(3, Band::High, 3600);
        for i in 0..(24 * 4) {
            let _ = d.observe(i * 3600, Some(signal(i)));
        }
        assert!(d.observe(24 * 4 * 3600, Some(500.0)).is_some());
    }

    #[test]
    fn missing_points_skipped() {
        let mut d = WaveletDetector::new(3, Band::Mid, 3600);
        for i in 0..(24 * 5) {
            let v = if i % 9 == 0 { None } else { Some(signal(i)) };
            let s = d.observe(i * 3600, v);
            if v.is_none() {
                assert_eq!(s, None);
            }
        }
    }
}
