//! The wavelet detector [12] (Table 3: win ∈ {3, 5, 7} days,
//! freq ∈ {low, mid, high}).
//!
//! Barford et al. separate the signal into frequency bands and score how
//! unusual the band content is. The exact Haar multiresolution analysis
//! (`opprentice_numeric::wavelet`) would require re-transforming the whole
//! trailing window on every point; instead the detector uses the standard
//! streaming equivalent — a dyadic moving-average filter bank. A Haar
//! approximation at level *l* is a moving average over `2^l` points, so the
//! band signals are differences of moving averages:
//!
//! * **high** — `x − MA(short)`: sub-`short` fluctuations,
//! * **mid** — `MA(short) − MA(medium)`: intra-day structure,
//! * **low** — `MA(medium) − MA(win days)`: multi-day drift.
//!
//! The severity is the band value normalized by a running MAD of recent
//! band values, so each band reads in robust sigmas.

use crate::Detector;
use opprentice_numeric::stats;
use std::collections::VecDeque;

/// Which frequency band the configuration extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// Multi-day drift.
    Low,
    /// Intra-day structure.
    Mid,
    /// Point-scale fluctuation.
    High,
}

impl Band {
    fn label(self) -> &'static str {
        match self {
            Band::Low => "low",
            Band::Mid => "mid",
            Band::High => "high",
        }
    }
}

/// Band-value history used for the running MAD.
const SPREAD_WINDOW: usize = 2016;
const SPREAD_REFRESH: usize = 64;
const MIN_SPREAD_SAMPLES: usize = 10;

/// A running moving average over the last `len` present values.
#[derive(Debug, Clone)]
struct RunningMa {
    len: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl RunningMa {
    fn new(len: usize) -> Self {
        Self {
            len,
            buf: VecDeque::with_capacity(len),
            sum: 0.0,
        }
    }

    fn push(&mut self, v: f64) {
        self.buf.push_back(v);
        self.sum += v;
        if self.buf.len() > self.len {
            self.sum -= self.buf.pop_front().expect("non-empty");
        }
    }

    fn full(&self) -> bool {
        self.buf.len() == self.len
    }

    fn mean(&self) -> f64 {
        self.sum / self.buf.len() as f64
    }
}

/// The streaming wavelet-band detector.
#[derive(Debug, Clone)]
pub struct WaveletDetector {
    win_days: usize,
    band: Band,
    short: RunningMa,
    medium: RunningMa,
    long: RunningMa,
    band_history: VecDeque<f64>,
    spread: f64,
    since_refresh: usize,
}

impl WaveletDetector {
    /// Creates the detector at the given sampling interval. The long window
    /// is `win_days` days; the short and medium windows are fixed dyadic
    /// fractions of a day (capped to stay meaningful at coarse intervals).
    ///
    /// # Panics
    ///
    /// Panics if `win_days == 0`.
    pub fn new(win_days: usize, band: Band, interval: u32) -> Self {
        assert!(win_days > 0, "win_days must be positive");
        let ppd = (86_400 / i64::from(interval)) as usize;
        let short = (ppd / 64).clamp(2, 32);
        let medium = (ppd / 8).clamp(short + 1, 512);
        let long = (win_days * ppd).max(medium + 1);
        Self {
            win_days,
            band,
            short: RunningMa::new(short),
            medium: RunningMa::new(medium),
            long: RunningMa::new(long),
            band_history: VecDeque::with_capacity(SPREAD_WINDOW),
            spread: 0.0,
            since_refresh: 0,
        }
    }

    fn refresh_spread(&mut self) {
        let xs: Vec<f64> = self.band_history.iter().copied().collect();
        let raw = stats::mad(&xs).unwrap_or(0.0);
        let scale = xs.iter().map(|x| x.abs()).fold(0.0, f64::max);
        self.spread = raw.max(1e-9 * (1.0 + scale));
    }
}

impl Detector for WaveletDetector {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        self.short.push(v);
        self.medium.push(v);
        self.long.push(v);
        if !self.long.full() {
            return None;
        }
        let band_value = match self.band {
            Band::High => v - self.short.mean(),
            Band::Mid => self.short.mean() - self.medium.mean(),
            Band::Low => self.medium.mean() - self.long.mean(),
        };
        self.band_history.push_back(band_value);
        if self.band_history.len() > SPREAD_WINDOW {
            self.band_history.pop_front();
        }
        self.since_refresh += 1;
        if self.spread == 0.0 || self.since_refresh >= SPREAD_REFRESH {
            self.refresh_spread();
            self.since_refresh = 0;
        }
        (self.band_history.len() >= MIN_SPREAD_SAMPLES).then(|| band_value.abs() / self.spread)
    }

    fn name(&self) -> &'static str {
        "wavelet"
    }

    fn config(&self) -> String {
        format!("win={} days,freq={}", self.win_days, self.band.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hourly signal: daily sine + slow weekly drift.
    fn signal(i: i64) -> f64 {
        let day = std::f64::consts::TAU * (i % 24) as f64 / 24.0;
        100.0 + 10.0 * day.sin() + 0.05 * i as f64
    }

    fn run(band: Band, values: impl Iterator<Item = f64>) -> Vec<Option<f64>> {
        let mut d = WaveletDetector::new(3, band, 3600);
        values
            .enumerate()
            .map(|(i, v)| d.observe(i as i64 * 3600, Some(v)))
            .collect()
    }

    #[test]
    fn warm_up_lasts_the_long_window() {
        let out = run(Band::High, (0..(24 * 3 + 10)).map(signal));
        let warm = 24 * 3; // 3 days at hourly interval
        assert!(out[..warm - 1].iter().all(Option::is_none));
        assert!(out[warm..].iter().any(Option::is_some));
    }

    #[test]
    fn high_band_catches_point_spikes() {
        let n = 24 * 10;
        let mut vals: Vec<f64> = (0..n).map(signal).collect();
        vals.push(signal(n) + 200.0); // spike
        let out = run(Band::High, vals.into_iter());
        let spike_sev = out.last().unwrap().unwrap();
        let normal: f64 = out[out.len() - 20..out.len() - 1]
            .iter()
            .flatten()
            .cloned()
            .fold(0.0, f64::max);
        assert!(spike_sev > 5.0 * (normal + 1.0), "{spike_sev} vs {normal}");
    }

    #[test]
    fn low_band_catches_level_shifts_high_band_forgets_them() {
        let n = 24 * 10;
        let shifted: Vec<f64> = (0..n + 72)
            .map(|i| signal(i) + if i >= n { 80.0 } else { 0.0 })
            .collect();
        let low = run(Band::Low, shifted.iter().copied());
        let high = run(Band::High, shifted.iter().copied());
        // Two days after the shift: the low band still sees the offset
        // (medium MA moved, long MA lags), the high band has re-centered.
        let idx = (n + 48) as usize;
        let low_sev = low[idx].unwrap();
        let high_sev = high[idx].unwrap();
        assert!(low_sev > 2.0 * high_sev, "low {low_sev} vs high {high_sev}");
    }

    #[test]
    fn bands_have_increasing_window_order() {
        let d = WaveletDetector::new(3, Band::Mid, 3600);
        assert!(d.short.len < d.medium.len);
        assert!(d.medium.len < d.long.len);
    }

    #[test]
    fn coarse_interval_still_valid() {
        // 60-minute interval (SRT): windows stay ordered and usable.
        let mut d = WaveletDetector::new(3, Band::High, 3600);
        for i in 0..(24 * 4) {
            let _ = d.observe(i * 3600, Some(signal(i)));
        }
        assert!(d.observe(24 * 4 * 3600, Some(500.0)).is_some());
    }

    #[test]
    fn missing_points_skipped() {
        let mut d = WaveletDetector::new(3, Band::Mid, 3600);
        for i in 0..(24 * 5) {
            let v = if i % 9 == 0 { None } else { Some(signal(i)) };
            let s = d.observe(i * 3600, v);
            if v.is_none() {
                assert_eq!(s, None);
            }
        }
    }
}
