//! TSD — time-series decomposition [1] — and its MAD variant (Table 3,
//! win = 1..5 weeks).
//!
//! The detector keeps, for every slot of the week, the values seen at that
//! slot over the last `win` weeks. The seasonal baseline of an incoming
//! point is the center (mean, or median for TSD MAD) of its slot's history;
//! the residual is measured against the spread of recent residuals (standard
//! deviation, or scaled MAD for TSD MAD), so the severity reads as "how many
//! sigmas from the weekly pattern". §4.3.3: "time series decomposition
//! usually uses a window of weeks to capture long-term violations." The MAD
//! patch "can improve the robustness to missing data and outliers" (§5.2).

use crate::Detector;
use opprentice_numeric::rolling::SortedWindow;
use opprentice_timeseries::slot_of_week;

/// How many residuals back the spread estimate looks.
pub(crate) const RESIDUAL_WINDOW: usize = 2016;
/// How many residuals before severities start.
pub(crate) const MIN_RESIDUALS: usize = 10;
/// Spread (and MAD in particular) is recomputed every this many points.
pub(crate) const SPREAD_REFRESH: usize = 64;

/// The TSD / TSD MAD detector.
#[derive(Debug, Clone)]
pub struct Tsd {
    weeks: usize,
    robust: bool,
    interval: u32,
    /// Per-slot-of-week value history (up to `weeks` entries each).
    per_slot: Vec<SortedWindow>,
    /// Recent residuals for the spread estimate.
    residuals: SortedWindow,
    spread: f64,
    since_refresh: usize,
}

impl Tsd {
    /// Creates a TSD detector with a seasonal memory of `weeks` weeks.
    /// `robust` selects the MAD variant.
    ///
    /// # Panics
    ///
    /// Panics if `weeks == 0`.
    pub fn new(weeks: usize, robust: bool, interval: u32) -> Self {
        assert!(weeks > 0, "weeks must be positive");
        let ppw = (7 * 86_400 / i64::from(interval)) as usize;
        Self {
            weeks,
            robust,
            interval,
            per_slot: vec![SortedWindow::new(weeks); ppw],
            residuals: SortedWindow::new(RESIDUAL_WINDOW),
            spread: 0.0,
            since_refresh: 0,
        }
    }

    fn refresh_spread(&mut self) {
        let raw = if self.robust {
            self.residuals.mad().unwrap_or(0.0)
        } else {
            self.residuals.std_dev().unwrap_or(0.0)
        };
        // Floor the spread so severities stay finite on ultra-regular data.
        let scale = self.residuals.max_abs();
        self.spread = raw.max(1e-9 * (1.0 + scale));
    }
}

impl Detector for Tsd {
    fn observe(&mut self, timestamp: i64, value: Option<f64>) -> Option<f64> {
        let slot = slot_of_week(timestamp, self.interval);
        let v = value?;

        let history = &mut self.per_slot[slot];
        let severity = if !history.is_empty() {
            let baseline = if self.robust {
                history.median().expect("non-empty history")
            } else {
                history.mean().expect("non-empty history")
            };
            let residual = v - baseline;
            self.residuals.push(residual);
            self.since_refresh += 1;
            if self.spread == 0.0 || self.since_refresh >= SPREAD_REFRESH {
                self.refresh_spread();
                self.since_refresh = 0;
            }
            (self.residuals.len() >= MIN_RESIDUALS).then(|| residual.abs() / self.spread)
        } else {
            None
        };

        self.per_slot[slot].push(v);
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        if self.robust {
            "TSD MAD"
        } else {
            "TSD"
        }
    }

    fn config(&self) -> String {
        format!("win={} week(s)", self.weeks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hourly KPI with a weekly period: value = slot-of-week pattern.
    fn weekly_pattern(ts: i64) -> f64 {
        let slot = slot_of_week(ts, 3600);
        100.0 + 10.0 * ((slot % 24) as f64) + if slot / 24 >= 5 { -50.0 } else { 0.0 }
    }

    #[test]
    fn first_week_is_warm_up() {
        let mut d = Tsd::new(2, false, 3600);
        for i in 0..168 {
            let ts = i * 3600;
            assert_eq!(d.observe(ts, Some(weekly_pattern(ts))), None, "slot {i}");
        }
    }

    #[test]
    fn regular_pattern_scores_low_anomaly_scores_high() {
        let mut d = Tsd::new(2, false, 3600);
        // Three clean weeks to build history and residual spread.
        let mut last_normal = None;
        for i in 0..(168 * 3) {
            let ts = i * 3600;
            last_normal = d.observe(ts, Some(weekly_pattern(ts)));
        }
        let normal_sev = last_normal.unwrap();
        // A big spike at the next point.
        let ts = 168 * 3 * 3600;
        let spike_sev = d.observe(ts, Some(weekly_pattern(ts) + 500.0)).unwrap();
        assert!(
            spike_sev > 20.0 * (normal_sev + 1.0),
            "{spike_sev} vs {normal_sev}"
        );
    }

    #[test]
    fn mad_variant_resists_outlier_contamination() {
        // Feed a clean pattern with a dirty stretch; afterwards both
        // variants see the same new spike, but the MAD spread is tighter.
        let mut plain = Tsd::new(3, false, 3600);
        let mut robust = Tsd::new(3, true, 3600);
        for i in 0..(168 * 3) {
            let ts = i * 3600;
            let mut v = weekly_pattern(ts);
            // Contaminate ~2% of points with huge outliers.
            if i % 50 == 0 {
                v += 2000.0;
            }
            plain.observe(ts, Some(v));
            robust.observe(ts, Some(v));
        }
        let ts = 168 * 3 * 3600;
        let spike = weekly_pattern(ts) + 300.0;
        let s_plain = plain.observe(ts, Some(spike)).unwrap();
        let s_robust = robust.observe(ts, Some(spike)).unwrap();
        assert!(s_robust > 2.0 * s_plain, "MAD {s_robust} vs std {s_plain}");
    }

    #[test]
    fn missing_points_are_skipped() {
        let mut d = Tsd::new(1, false, 3600);
        for i in 0..200 {
            let ts = i * 3600;
            if i % 7 == 3 {
                assert_eq!(d.observe(ts, None), None);
            } else {
                d.observe(ts, Some(weekly_pattern(ts)));
            }
        }
        // Still works after gaps.
        let ts = 200 * 3600;
        assert!(d.observe(ts, Some(weekly_pattern(ts))).is_some());
    }

    #[test]
    fn window_caps_history_at_weeks() {
        let mut d = Tsd::new(2, false, 3600);
        // Feed 5 weeks; each slot must hold at most 2 entries.
        for i in 0..(168 * 5) {
            let ts = i * 3600;
            d.observe(ts, Some(weekly_pattern(ts)));
        }
        assert!(d.per_slot.iter().all(|h| h.len() <= 2));
    }

    #[test]
    #[should_panic(expected = "weeks must be positive")]
    fn zero_weeks_rejected() {
        let _ = Tsd::new(0, false, 60);
    }
}
