//! Emerging detectors beyond Table 3 — the §8 extension point.
//!
//! "Emerging detectors, instead of going through time-consuming and often
//! frustrating parameter tuning, can be easily plugged into Opprentice."
//! This module demonstrates exactly that with three detectors that are
//! *not* part of the paper's registry (they postdate it or come from other
//! domains), each implementing the same online [`Detector`] model:
//!
//! * [`Cusum`] — the classic cumulative-sum change detector,
//! * [`SlidingPercentile`] — distributional extremeness over a trailing
//!   window (an order-statistics detector),
//! * [`SeasonalEsd`] — an extreme-studentized-deviate score on seasonal
//!   residuals (in the spirit of Twitter's S-H-ESD).
//!
//! `extended_registry` appends their sampled configurations to the standard
//! 133 — the `extension` bench binary shows the forest absorbing them with
//! zero manual tuning.

use crate::registry::{registry, ConfiguredDetector, DetectorSpec};
use crate::Detector;
use opprentice_numeric::stats;
use opprentice_timeseries::slot_of_day;
use std::collections::VecDeque;

/// Two-sided CUSUM change detector.
///
/// Tracks cumulative sums of standardized deviations from a running
/// baseline; severity is the larger of the upward/downward sums. `k` is
/// the slack (in σ) absorbed before accumulation starts.
#[derive(Debug, Clone)]
pub struct Cusum {
    k: f64,
    /// Running baseline statistics over a trailing window.
    window: VecDeque<f64>,
    win: usize,
    s_pos: f64,
    s_neg: f64,
}

impl Cusum {
    /// Creates a CUSUM detector with slack `k` sigmas and a baseline window
    /// of `win` points.
    ///
    /// # Panics
    ///
    /// Panics if `win < 8` or `k < 0`.
    pub fn new(k: f64, win: usize) -> Self {
        assert!(win >= 8, "baseline window too short");
        assert!(k >= 0.0, "slack must be non-negative");
        Self {
            k,
            window: VecDeque::with_capacity(win),
            win,
            s_pos: 0.0,
            s_neg: 0.0,
        }
    }
}

impl Detector for Cusum {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        let severity = if self.window.len() >= self.win {
            let xs: Vec<f64> = self.window.iter().copied().collect();
            let mean = stats::mean(&xs).expect("non-empty");
            let sd = stats::std_dev(&xs)
                .unwrap_or(0.0)
                .max(1e-9 * (1.0 + mean.abs()));
            let z = (v - mean) / sd;
            self.s_pos = (self.s_pos + z - self.k).max(0.0);
            self.s_neg = (self.s_neg - z - self.k).max(0.0);
            Some(self.s_pos.max(self.s_neg))
        } else {
            None
        };
        self.window.push_back(v);
        if self.window.len() > self.win {
            self.window.pop_front();
        }
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "CUSUM"
    }

    fn config(&self) -> String {
        format!("k={},win={} points", self.k, self.win)
    }
}

/// Order-statistics detector: how far outside the trailing window's
/// `[q, 1−q]` quantile band the point sits, in units of the interquartile
/// range.
#[derive(Debug, Clone)]
pub struct SlidingPercentile {
    q: f64,
    win: usize,
    window: VecDeque<f64>,
}

impl SlidingPercentile {
    /// Creates the detector with band quantile `q` (e.g. 0.01 for the
    /// 1%–99% band) over a trailing window of `win` points.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 0.5)` or `win < 16`.
    pub fn new(q: f64, win: usize) -> Self {
        assert!(q > 0.0 && q < 0.5, "band quantile must be in (0, 0.5)");
        assert!(win >= 16, "window too short for quantiles");
        Self {
            q,
            win,
            window: VecDeque::with_capacity(win),
        }
    }
}

impl Detector for SlidingPercentile {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        let severity = if self.window.len() >= self.win {
            let xs: Vec<f64> = self.window.iter().copied().collect();
            let lo = stats::quantile(&xs, self.q).expect("non-empty");
            let hi = stats::quantile(&xs, 1.0 - self.q).expect("non-empty");
            let iqr = (stats::quantile(&xs, 0.75).expect("non-empty")
                - stats::quantile(&xs, 0.25).expect("non-empty"))
            .max(1e-9 * (1.0 + hi.abs()));
            let outside = if v > hi {
                v - hi
            } else if v < lo {
                lo - v
            } else {
                0.0
            };
            Some(outside / iqr)
        } else {
            None
        };
        self.window.push_back(v);
        if self.window.len() > self.win {
            self.window.pop_front();
        }
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "sliding percentile"
    }

    fn config(&self) -> String {
        format!("q={},win={} points", self.q, self.win)
    }
}

/// Seasonal-ESD-style detector: removes a per-slot-of-day median baseline,
/// then scores the residual with the extreme-studentized-deviate statistic
/// (|residual − median| / MAD) over a trailing residual window.
#[derive(Debug, Clone)]
pub struct SeasonalEsd {
    interval: u32,
    days: usize,
    /// Per-slot-of-day history.
    per_slot: Vec<VecDeque<f64>>,
    residuals: VecDeque<f64>,
    residual_cap: usize,
}

impl SeasonalEsd {
    /// Creates the detector with a seasonal memory of `days` days at the
    /// given sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn new(days: usize, interval: u32) -> Self {
        assert!(days > 0, "days must be positive");
        let ppd = (86_400 / i64::from(interval)) as usize;
        Self {
            interval,
            days,
            per_slot: vec![VecDeque::new(); ppd],
            residuals: VecDeque::new(),
            residual_cap: ppd.max(64),
        }
    }
}

impl Detector for SeasonalEsd {
    fn observe(&mut self, timestamp: i64, value: Option<f64>) -> Option<f64> {
        let slot = slot_of_day(timestamp, self.interval);
        let v = value?;
        let severity = if self.per_slot[slot].len() >= 2 {
            let xs: Vec<f64> = self.per_slot[slot].iter().copied().collect();
            let baseline = stats::median(&xs).expect("non-empty");
            let residual = v - baseline;
            self.residuals.push_back(residual);
            if self.residuals.len() > self.residual_cap {
                self.residuals.pop_front();
            }
            if self.residuals.len() >= 16 {
                let rs: Vec<f64> = self.residuals.iter().copied().collect();
                let med = stats::median(&rs).expect("non-empty");
                let mad = stats::mad(&rs)
                    .unwrap_or(0.0)
                    .max(1e-9 * (1.0 + baseline.abs()));
                Some((residual - med).abs() / mad)
            } else {
                None
            }
        } else {
            None
        };
        let cap = self.days;
        let hist = &mut self.per_slot[slot];
        hist.push_back(v);
        if hist.len() > cap {
            hist.pop_front();
        }
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "seasonal ESD"
    }

    fn config(&self) -> String {
        format!("days={}", self.days)
    }
}

/// The standard 133 configurations plus sampled configurations of the three
/// extension detectors (coarse grids, §4.3.3 style — no tuning).
pub fn extended_registry(interval: u32) -> Vec<ConfiguredDetector> {
    let mut out = registry(interval);
    let mut extra: Vec<Box<dyn Detector>> = Vec::new();
    for k in [0.5, 1.0] {
        for win in [60usize, 240] {
            extra.push(Box::new(Cusum::new(k, win)));
        }
    }
    for q in [0.01, 0.05] {
        for win in [120usize, 480] {
            extra.push(Box::new(SlidingPercentile::new(q, win)));
        }
    }
    for days in [7usize, 14] {
        extra.push(Box::new(SeasonalEsd::new(days, interval)));
    }
    let base = out.len();
    let base_group = out.last().map_or(0, |c| c.group + 1);
    out.extend(
        extra
            .into_iter()
            .enumerate()
            .map(|(i, detector)| ConfiguredDetector {
                index: base + i,
                group: base_group + i,
                // Extension detectors have no fused kernel; they run
                // through their boxed `Detector` unchanged.
                spec: DetectorSpec::Opaque,
                detector,
            }),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut dyn Detector, values: impl Iterator<Item = f64>) -> Vec<Option<f64>> {
        values
            .enumerate()
            .map(|(i, v)| d.observe(i as i64 * 3600, Some(v)))
            .collect()
    }

    #[test]
    fn cusum_accumulates_on_level_shift() {
        let mut d = Cusum::new(0.5, 24);
        let vals = (0..200).map(|i| if i < 150 { 100.0 } else { 110.0 });
        let out = feed(&mut d, vals);
        // Before the shift: near zero. Shortly after: large. Once the
        // sliding baseline has absorbed the new level: decaying back.
        let pre = out[140].unwrap();
        let post = out[165].unwrap();
        let adapted = out[199].unwrap();
        assert!(pre < 1.0, "pre {pre}");
        assert!(post > 5.0, "post {post}");
        assert!(
            adapted < post,
            "the sliding baseline should absorb the shift"
        );
    }

    #[test]
    fn cusum_detects_downward_shifts_too() {
        let mut d = Cusum::new(0.5, 24);
        let vals = (0..200).map(|i| if i < 150 { 100.0 } else { 90.0 });
        let out = feed(&mut d, vals);
        assert!(out[180].unwrap() > 5.0);
    }

    #[test]
    fn sliding_percentile_zero_inside_band() {
        let mut d = SlidingPercentile::new(0.05, 32);
        let vals = (0..100).map(|i| 100.0 + (i % 7) as f64);
        let out = feed(&mut d, vals);
        assert!(out[80].unwrap() < 0.5);
        // An extreme point scores high.
        let sev = d.observe(101 * 3600, Some(500.0)).unwrap();
        assert!(sev > 10.0, "sev {sev}");
    }

    #[test]
    fn seasonal_esd_uses_daily_baseline() {
        let mut d = SeasonalEsd::new(7, 3600);
        // Daily pattern: slot s has value 100 + 10 s. Feed 10 days.
        for i in 0..(24 * 10) {
            let slot = i % 24;
            let v = 100.0 + 10.0 * slot as f64 + ((i / 24) % 2) as f64;
            d.observe(i as i64 * 3600, Some(v));
        }
        // A normal next point (matches its slot) scores low...
        let ts = (24 * 10) as i64 * 3600;
        let normal = d.observe(ts, Some(100.0)).unwrap();
        // ...a point 50 above its slot baseline scores high.
        let spike = d.observe(ts + 3600, Some(100.0 + 10.0 + 50.0)).unwrap();
        assert!(spike > 5.0 * (normal + 1.0), "{spike} vs {normal}");
    }

    #[test]
    fn extended_registry_appends_ten_configs() {
        let ext = extended_registry(3600);
        assert_eq!(ext.len(), 143);
        for (i, c) in ext.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Labels stay unique.
        let mut labels: Vec<String> = ext.iter().map(ConfiguredDetector::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 143);
    }

    #[test]
    fn extensions_respect_the_detector_contract() {
        for cfg in extended_registry(3600).iter_mut().skip(133) {
            // Missing input: no verdict.
            assert_eq!(
                cfg.detector.observe(0, None),
                None,
                "{}",
                cfg.detector.name()
            );
            // Severities finite and non-negative over a noisy run.
            for i in 0..600 {
                let v = 100.0 + ((i * 37) % 23) as f64;
                if let Some(s) = cfg.detector.observe(i as i64 * 3600, Some(v)) {
                    assert!(s.is_finite() && s >= 0.0, "{}", cfg.detector.name());
                }
            }
        }
    }
}
