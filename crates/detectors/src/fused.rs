//! Config-fused family kernels: one structure-of-arrays kernel advances
//! *all* of a detector family's parameter configurations per point.
//!
//! The paper's registry (Table 3) is a grid of parameters per family —
//! 64 Holt–Winters configs share one warm-up buffer and seasonal position,
//! the 10 TSD/TSD MAD configs with the same window length share the exact
//! same per-slot history, the 15 MA/diff/EWMA lanes share one value ring.
//! Running each config as an independent [`Detector`] re-maintains all of
//! that shared state per config and leaves the per-point arithmetic as 133
//! scattered virtual calls. A [`FamilyKernel`] instead keeps the per-config
//! state in flat arrays (`level[n]`, `trend[n]`, `seasonal[pos * n + c]`)
//! and sweeps the parameter grid in a tight inner loop the compiler can
//! vectorize, while window-shaped state is stored once per *distinct*
//! window instead of once per config.
//!
//! # Bit-identity
//!
//! Fusion is a scheduling optimization, never a semantic one: every kernel
//! replays each configuration's own arithmetic in the same order as the
//! scalar detector it replaces, so severities are **bit-identical** to the
//! per-config path (`tests/fused_differential.rs` is the oracle). The two
//! ingredients:
//!
//! * *Per-config arithmetic is untouched.* Each lane evaluates the same
//!   expressions on the same values in the same order as its scalar
//!   counterpart; only the loop structure changed (config-major →
//!   point-major).
//! * *Shared state is read-only within a point.* A shared window or ring is
//!   only mutated after every lane has read it, which matches the scalar
//!   detectors exactly because every scalar detector also pushes into its
//!   (identical) private copy only after computing its severity.
//!
//! Kernels apply [`crate::clamp_severity`]'s clamp internally, mirroring
//! [`crate::registry::ConfiguredDetector::observe_clamped`] — the choke
//! point the unfused extraction paths go through.

use crate::registry::{ConfiguredDetector, DetectorSpec};
use crate::MAX_SEVERITY;
use opprentice_numeric::rolling::SortedWindow;
use opprentice_timeseries::{slot_of_day, slot_of_week};
use std::collections::VecDeque;

/// An online severity extractor for a *batch of configurations* — the
/// fused counterpart of [`Detector`](crate::Detector).
///
/// One call to [`FamilyKernel::observe`] advances every fused
/// configuration by one point and writes one clamped severity per config
/// (in fusion order) into `out`.
pub trait FamilyKernel: Send {
    /// Number of configurations this kernel advances per point.
    fn n_configs(&self) -> usize;

    /// Feeds the next point (in time order; `value` is `None` for a
    /// missing point), writing each configuration's clamped severity into
    /// `out[0..n_configs()]`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != n_configs()`.
    fn observe(&mut self, timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]);

    /// Feeds a run of consecutive points; `out` is row-major
    /// (`timestamps.len() × n_configs()`). The default is the per-point
    /// loop; overrides must stay bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    fn observe_batch(
        &mut self,
        timestamps: &[i64],
        values: &[Option<f64>],
        out: &mut [Option<f64>],
    ) {
        assert_eq!(timestamps.len(), values.len(), "batch length mismatch");
        let k = self.n_configs();
        assert_eq!(out.len(), timestamps.len() * k, "batch output mismatch");
        for (i, (&ts, &v)) in timestamps.iter().zip(values).enumerate() {
            self.observe(ts, v, &mut out[i * k..(i + 1) * k]);
        }
    }

    /// A boxed deep copy; the clone's severity streams continue exactly
    /// where the original's were (the same clone-determinism contract as
    /// [`Detector::clone_box`](crate::Detector::clone_box)).
    fn clone_box(&self) -> Box<dyn FamilyKernel>;

    /// Family display name for attribution (e.g. `"Holt-Winters"`; a
    /// kernel fusing both plain and MAD variants reports the combined
    /// name, e.g. `"TSD/TSD MAD"`).
    fn family(&self) -> &'static str;
}

/// Clamp mirroring [`crate::clamp_severity`] for the fused hot loops.
#[inline]
fn clamp(s: f64) -> Option<f64> {
    Some(s.clamp(0.0, MAX_SEVERITY))
}

// --------------------------------------------------------------------------
// Scalar fallback
// --------------------------------------------------------------------------

/// Fallback kernel: runs a contiguous run of [`ConfiguredDetector`]s
/// through their boxed [`Detector`](crate::Detector)s. Used for families
/// without a fused kernel (SVD, wavelet, ARIMA, extensions) — a run is one
/// scheduling group, so state-sharing detectors (wavelet band views of one
/// filter bank) advance point-by-point in lockstep.
pub struct ScalarKernel {
    dets: Vec<ConfiguredDetector>,
}

impl ScalarKernel {
    /// Wraps a non-empty run of configurations.
    pub fn new(dets: Vec<ConfiguredDetector>) -> Self {
        assert!(!dets.is_empty(), "empty scalar run");
        Self { dets }
    }
}

impl FamilyKernel for ScalarKernel {
    fn n_configs(&self) -> usize {
        self.dets.len()
    }

    fn observe(&mut self, timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.dets.len(), "output width mismatch");
        for (det, slot) in self.dets.iter_mut().zip(out) {
            *slot = det.observe_clamped(timestamp, value);
        }
    }

    fn observe_batch(
        &mut self,
        timestamps: &[i64],
        values: &[Option<f64>],
        out: &mut [Option<f64>],
    ) {
        assert_eq!(timestamps.len(), values.len(), "batch length mismatch");
        let k = self.dets.len();
        assert_eq!(out.len(), timestamps.len() * k, "batch output mismatch");
        if k == 1 {
            // Single detector: its own (column-contiguous) batched path.
            self.dets[0].observe_batch_clamped(timestamps, values, out);
        } else {
            for (i, (&ts, &v)) in timestamps.iter().zip(values).enumerate() {
                self.observe(ts, v, &mut out[i * k..(i + 1) * k]);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(Self {
            dets: self.dets.clone(),
        })
    }

    fn family(&self) -> &'static str {
        self.dets[0].detector.name()
    }
}

// --------------------------------------------------------------------------
// Diff
// --------------------------------------------------------------------------

/// Fused diff lanes: one shared value ring (capacity = the largest lag)
/// serves every lag; lane `c`'s reference is the value `lags[c]` points
/// back.
#[derive(Debug, Clone)]
pub struct FusedDiff {
    lags: Vec<usize>,
    max_lag: usize,
    /// Raw values, missing kept as `None`, capped at `max_lag` — identical
    /// in content to the longest scalar [`crate::diff::Diff`] ring.
    ring: VecDeque<Option<f64>>,
}

impl FusedDiff {
    /// Creates lanes for the given lags (in points).
    ///
    /// # Panics
    ///
    /// Panics if `lags` is empty or contains 0.
    pub fn new(lags: Vec<usize>) -> Self {
        assert!(!lags.is_empty(), "no lags");
        assert!(lags.iter().all(|&l| l > 0), "zero lag");
        let max_lag = lags.iter().copied().max().expect("non-empty");
        Self {
            lags,
            max_lag,
            ring: VecDeque::with_capacity(max_lag),
        }
    }
}

impl FamilyKernel for FusedDiff {
    fn n_configs(&self) -> usize {
        self.lags.len()
    }

    fn observe(&mut self, _timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.lags.len(), "output width mismatch");
        let len = self.ring.len();
        for (slot, &lag) in out.iter_mut().zip(&self.lags) {
            // Lane `c` is warm once `lag` values have been pushed; since
            // `len = min(pushes, max_lag)` and `lag <= max_lag`, that is
            // exactly `len >= lag`.
            *slot = match (value, len >= lag) {
                (Some(v), true) => match self.ring[len - lag] {
                    Some(ref_v) => clamp((v - ref_v).abs()),
                    None => None,
                },
                _ => None,
            };
        }
        self.ring.push_back(value);
        if self.ring.len() > self.max_lag {
            self.ring.pop_front();
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        "diff"
    }
}

// --------------------------------------------------------------------------
// Simple MA
// --------------------------------------------------------------------------

/// Fused simple-MA lanes: one shared present-value ring (capacity = the
/// largest window) plus a running sum per lane, maintained with the exact
/// `+=` / `-=` sequence of the scalar detector so the float state matches
/// bit-for-bit.
#[derive(Debug, Clone)]
pub struct FusedSimpleMa {
    wins: Vec<usize>,
    sums: Vec<f64>,
    max_win: usize,
    ring: VecDeque<f64>,
    /// Present values seen so far (missing points don't count).
    count: usize,
}

impl FusedSimpleMa {
    /// Creates lanes for the given window lengths (in points).
    ///
    /// # Panics
    ///
    /// Panics if `wins` is empty or contains 0.
    pub fn new(wins: Vec<usize>) -> Self {
        assert!(!wins.is_empty(), "no windows");
        assert!(wins.iter().all(|&w| w > 0), "zero window");
        let max_win = wins.iter().copied().max().expect("non-empty");
        Self {
            sums: vec![0.0; wins.len()],
            wins,
            max_win,
            ring: VecDeque::with_capacity(max_win + 1),
            count: 0,
        }
    }
}

impl FamilyKernel for FusedSimpleMa {
    fn n_configs(&self) -> usize {
        self.wins.len()
    }

    fn observe(&mut self, _timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.wins.len(), "output width mismatch");
        let Some(v) = value else {
            out.fill(None);
            return;
        };
        // Severities first: lane `c` is warm once `win` present values
        // have been seen (its scalar window is then exactly full).
        for ((slot, &win), &sum) in out.iter_mut().zip(&self.wins).zip(&self.sums) {
            *slot = if self.count >= win {
                let pred = sum / win as f64;
                clamp((v - pred).abs())
            } else {
                None
            };
        }
        // Then the push: `sum += v` and, once sliding, `sum -= evicted` —
        // the evicted value sits `win` slots behind the newest.
        self.ring.push_back(v);
        let newest = self.ring.len() - 1;
        for (c, &win) in self.wins.iter().enumerate() {
            self.sums[c] += v;
            if self.count >= win {
                self.sums[c] -= self.ring[newest - win];
            }
        }
        self.count += 1;
        if self.ring.len() > self.max_win {
            self.ring.pop_front();
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        "simple MA"
    }
}

// --------------------------------------------------------------------------
// Weighted MA
// --------------------------------------------------------------------------

/// Fused weighted-MA lanes: one shared present-value ring; each lane
/// recomputes its linearly weighted prediction over the ring's last `win`
/// values, oldest→newest with weights `1..=win` — the scalar iteration
/// order, value-for-value.
#[derive(Debug, Clone)]
pub struct FusedWeightedMa {
    wins: Vec<usize>,
    max_win: usize,
    ring: VecDeque<f64>,
    count: usize,
}

impl FusedWeightedMa {
    /// Creates lanes for the given window lengths (in points).
    ///
    /// # Panics
    ///
    /// Panics if `wins` is empty or contains 0.
    pub fn new(wins: Vec<usize>) -> Self {
        assert!(!wins.is_empty(), "no windows");
        assert!(wins.iter().all(|&w| w > 0), "zero window");
        let max_win = wins.iter().copied().max().expect("non-empty");
        Self {
            wins,
            max_win,
            ring: VecDeque::with_capacity(max_win + 1),
            count: 0,
        }
    }
}

impl FamilyKernel for FusedWeightedMa {
    fn n_configs(&self) -> usize {
        self.wins.len()
    }

    fn observe(&mut self, _timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.wins.len(), "output width mismatch");
        let Some(v) = value else {
            out.fill(None);
            return;
        };
        let len = self.ring.len();
        for (slot, &win) in out.iter_mut().zip(&self.wins) {
            *slot = if self.count >= win {
                let mut num = 0.0;
                let mut den = 0.0;
                for (i, &x) in self.ring.iter().skip(len - win).enumerate() {
                    let w = (i + 1) as f64; // oldest gets 1, newest gets win
                    num += w * x;
                    den += w;
                }
                clamp((v - num / den).abs())
            } else {
                None
            };
        }
        self.ring.push_back(v);
        self.count += 1;
        if self.ring.len() > self.max_win {
            self.ring.pop_front();
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        "weighted MA"
    }
}

// --------------------------------------------------------------------------
// MA of diff
// --------------------------------------------------------------------------

/// Fused MA-of-diff lanes: one shared previous-value slot and diff ring
/// (both cleared on a gap, like every scalar lane clears at once) plus a
/// running sum per lane with the scalar `+=` / `-=` sequence.
#[derive(Debug, Clone)]
pub struct FusedMaOfDiff {
    wins: Vec<usize>,
    sums: Vec<f64>,
    max_win: usize,
    prev: Option<f64>,
    diffs: VecDeque<f64>,
    /// Diffs since the last gap.
    n_diffs: usize,
}

impl FusedMaOfDiff {
    /// Creates lanes for the given window lengths (in diffs).
    ///
    /// # Panics
    ///
    /// Panics if `wins` is empty or contains 0.
    pub fn new(wins: Vec<usize>) -> Self {
        assert!(!wins.is_empty(), "no windows");
        assert!(wins.iter().all(|&w| w > 0), "zero window");
        let max_win = wins.iter().copied().max().expect("non-empty");
        Self {
            sums: vec![0.0; wins.len()],
            wins,
            max_win,
            prev: None,
            diffs: VecDeque::with_capacity(max_win + 1),
            n_diffs: 0,
        }
    }
}

impl FamilyKernel for FusedMaOfDiff {
    fn n_configs(&self) -> usize {
        self.wins.len()
    }

    fn observe(&mut self, _timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.wins.len(), "output width mismatch");
        let Some(v) = value else {
            // A gap breaks the "previous slot" chain in every lane at once.
            self.prev = None;
            self.diffs.clear();
            self.sums.fill(0.0);
            self.n_diffs = 0;
            out.fill(None);
            return;
        };
        if let Some(p) = self.prev {
            let d = (v - p).abs();
            self.diffs.push_back(d);
            let newest = self.diffs.len() - 1;
            for ((slot, &win), sum) in out.iter_mut().zip(&self.wins).zip(&mut self.sums) {
                // Scalar order per lane: push (sum += d), evict once the
                // lane's window overflows (sum -= oldest), then emit when
                // the window is exactly full.
                *sum += d;
                if self.n_diffs >= win {
                    *sum -= self.diffs[newest - win];
                }
                *slot = if self.n_diffs + 1 >= win {
                    clamp(*sum / win as f64)
                } else {
                    None
                };
            }
            self.n_diffs += 1;
            if self.diffs.len() > self.max_win {
                self.diffs.pop_front();
            }
        } else {
            out.fill(None);
        }
        self.prev = Some(v);
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        "MA of diff"
    }
}

// --------------------------------------------------------------------------
// EWMA
// --------------------------------------------------------------------------

/// Fused EWMA lanes: flat `state[n]` swept in one vectorizable loop. All
/// lanes see the same first present value, so one shared `seen` flag
/// replaces the per-lane `Option`.
#[derive(Debug, Clone)]
pub struct FusedEwma {
    alphas: Vec<f64>,
    state: Vec<f64>,
    /// Severity scratch, kept flat so the update loop stays branch-free.
    sev: Vec<f64>,
    seen: bool,
}

impl FusedEwma {
    /// Creates lanes for the given smoothing constants.
    ///
    /// # Panics
    ///
    /// Panics if `alphas` is empty or a constant is outside `[0, 1]`.
    pub fn new(alphas: Vec<f64>) -> Self {
        assert!(!alphas.is_empty(), "no alphas");
        assert!(
            alphas.iter().all(|a| (0.0..=1.0).contains(a)),
            "alpha must be in [0, 1]"
        );
        Self {
            state: vec![0.0; alphas.len()],
            sev: vec![0.0; alphas.len()],
            alphas,
            seen: false,
        }
    }
}

impl FamilyKernel for FusedEwma {
    fn n_configs(&self) -> usize {
        self.alphas.len()
    }

    fn observe(&mut self, _timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.alphas.len(), "output width mismatch");
        let Some(v) = value else {
            out.fill(None);
            return;
        };
        if self.seen {
            for c in 0..self.alphas.len() {
                let a = self.alphas[c];
                let prev = self.state[c];
                self.sev[c] = (v - prev).abs();
                self.state[c] = a * v + (1.0 - a) * prev;
            }
            for (slot, &s) in out.iter_mut().zip(&self.sev) {
                *slot = clamp(s);
            }
        } else {
            self.state.fill(v);
            self.seen = true;
            out.fill(None);
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        "EWMA"
    }
}

// --------------------------------------------------------------------------
// TSD / TSD MAD
// --------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TsdLane {
    /// Index of the shared per-slot window set for this lane's `weeks`.
    widx: usize,
    robust: bool,
    residuals: SortedWindow,
    spread: f64,
    since_refresh: usize,
}

/// Fused TSD/TSD MAD lanes. Lanes with the same window length (`weeks`)
/// read the *same* per-slot-of-week history — their scalar counterparts
/// keep identical private copies (the window never stores residuals, only
/// raw values) — so the plain and MAD variants of one window length share
/// one `SortedWindow` per slot. Residual windows and spread state differ
/// per lane (baselines differ) and stay private.
#[derive(Debug, Clone)]
pub struct FusedTsd {
    interval: u32,
    /// Points per week.
    ppw: usize,
    /// Number of distinct window lengths.
    n_windows: usize,
    /// `n_windows × ppw` shared histories, window-major.
    per_slot: Vec<SortedWindow>,
    lanes: Vec<TsdLane>,
}

impl FusedTsd {
    /// Creates lanes for the given `(weeks, robust)` configurations.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or a `weeks` is 0.
    pub fn new(configs: &[(usize, bool)], interval: u32) -> Self {
        assert!(!configs.is_empty(), "no configs");
        let ppw = (7 * 86_400 / i64::from(interval)) as usize;
        let mut distinct: Vec<usize> = Vec::new();
        let lanes = configs
            .iter()
            .map(|&(weeks, robust)| {
                assert!(weeks > 0, "weeks must be positive");
                let widx = match distinct.iter().position(|&w| w == weeks) {
                    Some(i) => i,
                    None => {
                        distinct.push(weeks);
                        distinct.len() - 1
                    }
                };
                TsdLane {
                    widx,
                    robust,
                    residuals: SortedWindow::new(crate::tsd::RESIDUAL_WINDOW),
                    spread: 0.0,
                    since_refresh: 0,
                }
            })
            .collect();
        let per_slot = distinct
            .iter()
            .flat_map(|&weeks| std::iter::repeat_with(move || SortedWindow::new(weeks)).take(ppw))
            .collect();
        Self {
            interval,
            ppw,
            n_windows: distinct.len(),
            per_slot,
            lanes,
        }
    }

    fn mixed_name(robusts: impl Iterator<Item = bool>) -> &'static str {
        let (mut any_plain, mut any_robust) = (false, false);
        for r in robusts {
            if r {
                any_robust = true;
            } else {
                any_plain = true;
            }
        }
        match (any_plain, any_robust) {
            (true, true) => "TSD/TSD MAD",
            (false, true) => "TSD MAD",
            _ => "TSD",
        }
    }
}

impl FamilyKernel for FusedTsd {
    fn n_configs(&self) -> usize {
        self.lanes.len()
    }

    fn observe(&mut self, timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.lanes.len(), "output width mismatch");
        let slot = slot_of_week(timestamp, self.interval);
        let Some(v) = value else {
            out.fill(None);
            return;
        };
        let ppw = self.ppw;
        for (lane, slot_out) in self.lanes.iter_mut().zip(out.iter_mut()) {
            let history = &mut self.per_slot[lane.widx * ppw + slot];
            *slot_out = if !history.is_empty() {
                let baseline = if lane.robust {
                    history.median().expect("non-empty history")
                } else {
                    history.mean().expect("non-empty history")
                };
                let residual = v - baseline;
                lane.residuals.push(residual);
                lane.since_refresh += 1;
                if lane.spread == 0.0 || lane.since_refresh >= crate::tsd::SPREAD_REFRESH {
                    let raw = if lane.robust {
                        lane.residuals.mad().unwrap_or(0.0)
                    } else {
                        lane.residuals.std_dev().unwrap_or(0.0)
                    };
                    let scale = lane.residuals.max_abs();
                    lane.spread = raw.max(1e-9 * (1.0 + scale));
                    lane.since_refresh = 0;
                }
                if lane.residuals.len() >= crate::tsd::MIN_RESIDUALS {
                    clamp(residual.abs() / lane.spread)
                } else {
                    None
                }
            } else {
                None
            };
        }
        // Push into each shared history only after every lane read it —
        // each scalar detector also pushes into its own (identical)
        // history after computing its severity.
        for w in 0..self.n_windows {
            self.per_slot[w * ppw + slot].push(v);
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        Self::mixed_name(self.lanes.iter().map(|l| l.robust))
    }
}

// --------------------------------------------------------------------------
// Historical average / historical MAD
// --------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct HistLane {
    widx: usize,
    robust: bool,
}

/// Fused historical average/MAD lanes: same sharing structure as
/// [`FusedTsd`], but slotted by time-of-day with `7 * weeks` samples per
/// slot, and entirely stateless outside the shared windows.
#[derive(Debug, Clone)]
pub struct FusedHistorical {
    interval: u32,
    /// Points per day.
    ppd: usize,
    n_windows: usize,
    /// `n_windows × ppd` shared histories, window-major.
    per_slot: Vec<SortedWindow>,
    lanes: Vec<HistLane>,
}

impl FusedHistorical {
    /// Creates lanes for the given `(weeks, robust)` configurations.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or a `weeks` is 0.
    pub fn new(configs: &[(usize, bool)], interval: u32) -> Self {
        assert!(!configs.is_empty(), "no configs");
        let ppd = (86_400 / i64::from(interval)) as usize;
        let mut distinct: Vec<usize> = Vec::new();
        let lanes = configs
            .iter()
            .map(|&(weeks, robust)| {
                assert!(weeks > 0, "weeks must be positive");
                let widx = match distinct.iter().position(|&w| w == weeks) {
                    Some(i) => i,
                    None => {
                        distinct.push(weeks);
                        distinct.len() - 1
                    }
                };
                HistLane { widx, robust }
            })
            .collect();
        let per_slot = distinct
            .iter()
            .flat_map(|&weeks| {
                std::iter::repeat_with(move || SortedWindow::new(7 * weeks)).take(ppd)
            })
            .collect();
        Self {
            interval,
            ppd,
            n_windows: distinct.len(),
            per_slot,
            lanes,
        }
    }
}

impl FamilyKernel for FusedHistorical {
    fn n_configs(&self) -> usize {
        self.lanes.len()
    }

    fn observe(&mut self, timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.lanes.len(), "output width mismatch");
        let slot = slot_of_day(timestamp, self.interval);
        let Some(v) = value else {
            out.fill(None);
            return;
        };
        let ppd = self.ppd;
        for (lane, slot_out) in self.lanes.iter().zip(out.iter_mut()) {
            let history = &mut self.per_slot[lane.widx * ppd + slot];
            *slot_out = if history.len() >= crate::historical::MIN_HISTORY {
                let (center, spread_raw) = if lane.robust {
                    (
                        history.median().expect("non-empty"),
                        history.mad().unwrap_or(0.0),
                    )
                } else {
                    (
                        history.mean().expect("non-empty"),
                        history.std_dev().unwrap_or(0.0),
                    )
                };
                let spread = spread_raw.max(1e-9 * (1.0 + center.abs()));
                clamp((v - center).abs() / spread)
            } else {
                None
            };
        }
        for w in 0..self.n_windows {
            self.per_slot[w * ppd + slot].push(v);
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        let (mut any_plain, mut any_robust) = (false, false);
        for l in &self.lanes {
            if l.robust {
                any_robust = true;
            } else {
                any_plain = true;
            }
        }
        match (any_plain, any_robust) {
            (true, true) => "historical average/MAD",
            (false, true) => "historical MAD",
            _ => "historical average",
        }
    }
}

// --------------------------------------------------------------------------
// Holt–Winters
// --------------------------------------------------------------------------

/// Fused Holt–Winters grid: the dominant kernel (64 of 133 registry
/// configs). Per-config state lives in flat `level[n]` / `trend[n]` arrays
/// and a `seasonal[pos * n + c]` layout so the per-point update sweeps the
/// whole α/β/γ grid over contiguous memory in one auto-vectorizable loop.
///
/// The warm-up buffer and seasonal position are *shared*: during warm-up
/// every scalar config buffers the same values (the missing-point fill is
/// `last_value` for all of them while no config has initialized), and
/// after initialization every config advances `pos` once per point — the
/// configs never desynchronize.
#[derive(Debug, Clone)]
pub struct FusedHoltWinters {
    season: usize,
    alphas: Vec<f64>,
    betas: Vec<f64>,
    gammas: Vec<f64>,
    /// Shared warm-up buffer (two seasons), drained at initialization.
    buffer: Vec<f64>,
    level: Vec<f64>,
    trend: Vec<f64>,
    /// `season × n` seasonal components, slot-major (`[pos * n + c]`).
    seasonal: Vec<f64>,
    pos: usize,
    warmed: bool,
    last_value: Option<f64>,
    /// Severity scratch keeping the update loop branch-free.
    sev: Vec<f64>,
}

impl FusedHoltWinters {
    /// Creates lanes for the given `(alpha, beta, gamma)` grid at the
    /// given sampling interval (the season is one day).
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty, a parameter is outside `[0, 1]`, or
    /// the interval admits fewer than 2 points per day.
    pub fn new(params: &[(f64, f64, f64)], interval: u32) -> Self {
        assert!(!params.is_empty(), "no parameters");
        let season = (86_400 / i64::from(interval)) as usize;
        assert!(season >= 2, "season_len must be at least 2");
        for &(a, b, g) in params {
            for v in [a, b, g] {
                assert!((0.0..=1.0).contains(&v), "parameter must be in [0, 1]");
            }
        }
        let n = params.len();
        Self {
            season,
            alphas: params.iter().map(|p| p.0).collect(),
            betas: params.iter().map(|p| p.1).collect(),
            gammas: params.iter().map(|p| p.2).collect(),
            buffer: Vec::new(),
            level: vec![0.0; n],
            trend: vec![0.0; n],
            seasonal: Vec::new(),
            pos: 0,
            warmed: false,
            last_value: None,
            sev: vec![0.0; n],
        }
    }

    /// Buffers one warm-up value; on the 2·season-th, initializes every
    /// lane from the shared buffer (the scalar `HoltWinters::initialize`
    /// arithmetic, broadcast).
    fn push_warmup(&mut self, x: f64) {
        self.buffer.push(x);
        if self.buffer.len() < 2 * self.season {
            return;
        }
        let m = self.season;
        let n = self.alphas.len();
        let s1 = &self.buffer[..m];
        let s2 = &self.buffer[m..2 * m];
        let mean1 = s1.iter().sum::<f64>() / m as f64;
        let mean2 = s2.iter().sum::<f64>() / m as f64;
        self.level.fill(mean2);
        self.trend.fill((mean2 - mean1) / m as f64);
        self.seasonal = vec![0.0; m * n];
        for i in 0..m {
            let s = ((s1[i] - mean1) + (s2[i] - mean2)) / 2.0;
            self.seasonal[i * n..(i + 1) * n].fill(s);
        }
        self.pos = 0;
        self.warmed = true;
        self.buffer.clear();
        self.buffer.shrink_to_fit();
    }

    /// One post-warm-up update sweep. When `x_is_fill`, each lane folds in
    /// its *own* forecast instead of `x` (the scalar missing-point
    /// self-heal) and no severities are produced.
    fn update_all(&mut self, x: f64, x_is_fill: bool) {
        let n = self.alphas.len();
        let base = self.pos * n;
        let seasonal = &mut self.seasonal[base..base + n];
        // Lockstep over six parallel lane arrays; an index keeps the
        // structure-of-arrays form the vectorizer recognizes.
        #[allow(clippy::needless_range_loop)]
        for c in 0..n {
            let a = self.alphas[c];
            let b = self.betas[c];
            let g = self.gammas[c];
            let s_old = seasonal[c];
            let level_old = self.level[c];
            let trend_old = self.trend[c];
            let forecast = level_old + trend_old + s_old;
            let x = if x_is_fill { forecast } else { x };
            let level = a * (x - s_old) + (1.0 - a) * (level_old + trend_old);
            let trend = b * (level - level_old) + (1.0 - b) * trend_old;
            seasonal[c] = g * (x - level) + (1.0 - g) * s_old;
            self.level[c] = level;
            self.trend[c] = trend;
            self.sev[c] = (x - forecast).abs();
        }
        self.pos = (self.pos + 1) % self.season;
    }
}

impl FamilyKernel for FusedHoltWinters {
    fn n_configs(&self) -> usize {
        self.alphas.len()
    }

    fn observe(&mut self, _timestamp: i64, value: Option<f64>, out: &mut [Option<f64>]) {
        assert_eq!(out.len(), self.alphas.len(), "output width mismatch");
        match value {
            Some(v) => {
                self.last_value = Some(v);
                if self.warmed {
                    self.update_all(v, false);
                    for (slot, &s) in out.iter_mut().zip(&self.sev) {
                        *slot = clamp(s);
                    }
                } else {
                    // Warm-up (including the initializing point, which the
                    // scalar smoother also answers with `None`).
                    self.push_warmup(v);
                    out.fill(None);
                }
            }
            None => {
                if self.warmed {
                    // Self-heal: every lane folds in its own forecast.
                    self.update_all(0.0, true);
                } else if let Some(f) = self.last_value {
                    // Scalar warm-up fill: `next_forecast().or(last_value)`
                    // — the same value for every lane, since no lane has
                    // initialized yet.
                    self.push_warmup(f);
                }
                out.fill(None);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn FamilyKernel> {
        Box::new(self.clone())
    }

    fn family(&self) -> &'static str {
        "Holt-Winters"
    }
}

// --------------------------------------------------------------------------
// Planning
// --------------------------------------------------------------------------

/// A schedulable unit of extraction work: one kernel plus the feature
/// columns it produces, in kernel lane order.
pub struct FusedUnit {
    /// The kernel advancing this unit's configurations.
    pub kernel: Box<dyn FamilyKernel>,
    /// Output column (the configuration's `index`) of each lane.
    pub columns: Vec<usize>,
    /// Estimated cost in ns/point for the whole unit, seeded from the
    /// measured per-family table in `results/BENCH_serving.json`. The
    /// extraction layer's cost-balanced shard planner starts from this and
    /// replaces it with live measurements.
    pub seed_cost_ns: f64,
}

/// Which fused kernel (if any) a spec belongs to, plus the sampling
/// interval where state geometry depends on it. Adjacent configs with the
/// same key fuse into one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuseKey {
    Diff(u32),
    SimpleMa,
    WeightedMa,
    MaOfDiff,
    Ewma,
    Tsd(u32),
    Historical(u32),
    HoltWinters(u32),
}

fn fuse_key(spec: &DetectorSpec) -> Option<FuseKey> {
    match *spec {
        DetectorSpec::Diff { interval, .. } => Some(FuseKey::Diff(interval)),
        DetectorSpec::SimpleMa { .. } => Some(FuseKey::SimpleMa),
        DetectorSpec::WeightedMa { .. } => Some(FuseKey::WeightedMa),
        DetectorSpec::MaOfDiff { .. } => Some(FuseKey::MaOfDiff),
        DetectorSpec::Ewma { .. } => Some(FuseKey::Ewma),
        DetectorSpec::Tsd { interval, .. } => Some(FuseKey::Tsd(interval)),
        DetectorSpec::Historical { interval, .. } => Some(FuseKey::Historical(interval)),
        DetectorSpec::HoltWinters { interval, .. } => Some(FuseKey::HoltWinters(interval)),
        DetectorSpec::SimpleThreshold | DetectorSpec::Opaque => None,
    }
}

/// Seed cost estimate in ns/point for one configuration, from the measured
/// per-family scalar breakdown (`results/BENCH_serving.json`, hourly
/// reference box). Only *relative* magnitudes matter — the shard planner
/// rebalances from live measurements — so coarse numbers are fine.
fn seed_cost_ns(cfg: &ConfiguredDetector) -> f64 {
    match cfg.spec {
        DetectorSpec::SimpleThreshold => 17.0,
        DetectorSpec::Diff { .. } => 11.0,
        DetectorSpec::SimpleMa { .. } => 12.0,
        DetectorSpec::WeightedMa { .. } => 63.0,
        DetectorSpec::MaOfDiff { .. } => 10.0,
        DetectorSpec::Ewma { .. } => 9.0,
        DetectorSpec::Tsd { robust, .. } => {
            if robust {
                94.0
            } else {
                107.0
            }
        }
        DetectorSpec::Historical { robust, .. } => {
            if robust {
                87.0
            } else {
                63.0
            }
        }
        DetectorSpec::HoltWinters { .. } => 7.5,
        DetectorSpec::Opaque => match cfg.detector.name() {
            "SVD" => 216.0,
            "wavelet" => 232.0,
            "ARIMA" => 2278.0,
            _ => 100.0,
        },
    }
}

/// Builds one kernel from a run of same-key configurations.
fn build_unit(run: Vec<ConfiguredDetector>, key: Option<FuseKey>) -> FusedUnit {
    let columns: Vec<usize> = run.iter().map(|c| c.index).collect();
    let seed_cost_ns = run.iter().map(seed_cost_ns).sum();
    let kernel: Box<dyn FamilyKernel> = match key {
        None => Box::new(ScalarKernel::new(run)),
        Some(FuseKey::Diff(interval)) => {
            let lags = run
                .iter()
                .map(|c| match c.spec {
                    DetectorSpec::Diff { lag, .. } => lag.points(interval),
                    _ => unreachable!("mixed run"),
                })
                .collect();
            Box::new(FusedDiff::new(lags))
        }
        Some(FuseKey::SimpleMa) => Box::new(FusedSimpleMa::new(spec_wins(&run))),
        Some(FuseKey::WeightedMa) => Box::new(FusedWeightedMa::new(spec_wins(&run))),
        Some(FuseKey::MaOfDiff) => Box::new(FusedMaOfDiff::new(spec_wins(&run))),
        Some(FuseKey::Ewma) => {
            let alphas = run
                .iter()
                .map(|c| match c.spec {
                    DetectorSpec::Ewma { alpha } => alpha,
                    _ => unreachable!("mixed run"),
                })
                .collect();
            Box::new(FusedEwma::new(alphas))
        }
        Some(FuseKey::Tsd(interval)) => {
            let cfgs: Vec<(usize, bool)> = run
                .iter()
                .map(|c| match c.spec {
                    DetectorSpec::Tsd { weeks, robust, .. } => (weeks, robust),
                    _ => unreachable!("mixed run"),
                })
                .collect();
            Box::new(FusedTsd::new(&cfgs, interval))
        }
        Some(FuseKey::Historical(interval)) => {
            let cfgs: Vec<(usize, bool)> = run
                .iter()
                .map(|c| match c.spec {
                    DetectorSpec::Historical { weeks, robust, .. } => (weeks, robust),
                    _ => unreachable!("mixed run"),
                })
                .collect();
            Box::new(FusedHistorical::new(&cfgs, interval))
        }
        Some(FuseKey::HoltWinters(interval)) => {
            let params: Vec<(f64, f64, f64)> = run
                .iter()
                .map(|c| match c.spec {
                    DetectorSpec::HoltWinters {
                        alpha, beta, gamma, ..
                    } => (alpha, beta, gamma),
                    _ => unreachable!("mixed run"),
                })
                .collect();
            Box::new(FusedHoltWinters::new(&params, interval))
        }
    };
    FusedUnit {
        kernel,
        columns,
        seed_cost_ns,
    }
}

fn spec_wins(run: &[ConfiguredDetector]) -> Vec<usize> {
    run.iter()
        .map(|c| match c.spec {
            DetectorSpec::SimpleMa { win }
            | DetectorSpec::WeightedMa { win }
            | DetectorSpec::MaOfDiff { win } => win,
            _ => unreachable!("mixed run"),
        })
        .collect()
}

/// Groups a configuration list into fused units.
///
/// Adjacent configurations with the same fusable family (and interval)
/// become one fused kernel; everything else falls back to
/// [`ScalarKernel`]s, one per scheduling group, so state-sharing
/// detectors stay in lockstep. Works on any subset/order the extraction
/// layer accepts (group members adjacent); pruned sets in registry order
/// fuse exactly like the full registry, just with fewer lanes.
///
/// The configurations must be *fresh* (unobserved): fused kernels rebuild
/// the family's state from [`DetectorSpec`], so pre-advanced detector
/// state would be discarded.
pub fn plan(configs: Vec<ConfiguredDetector>) -> Vec<FusedUnit> {
    let mut units = Vec::new();
    let mut iter = configs.into_iter().peekable();
    while let Some(first) = iter.next() {
        let key = fuse_key(&first.spec);
        let group = first.group;
        let mut run = vec![first];
        while let Some(next) = iter.peek() {
            let extend = match key {
                Some(k) => fuse_key(&next.spec) == Some(k),
                None => next.group == group,
            };
            if !extend {
                break;
            }
            run.push(iter.next().expect("peeked"));
        }
        units.push(build_unit(run, key));
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    /// An hourly test stream with pattern, drift, spikes and missing runs.
    fn stream(n: usize) -> Vec<(i64, Option<f64>)> {
        (0..n)
            .map(|i| {
                let ts = i as i64 * 3600;
                let v = if i % 37 == 11 || (i % 101 >= 53 && i % 101 < 56) {
                    None
                } else {
                    let base = 100.0
                        + 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()
                        + 0.01 * i as f64;
                    let spike = if i % 71 == 0 { 40.0 } else { 0.0 };
                    Some(base + spike + ((i * 2_654_435_761) % 997) as f64 / 997.0)
                };
                (ts, v)
            })
            .collect()
    }

    /// Every registry unit's fused output must equal the scalar detectors'
    /// clamped severities bit-for-bit (the full-registry sweep with random
    /// chunking lives in `tests/fused_differential.rs`).
    #[test]
    fn fused_units_match_scalar_bit_for_bit() {
        let units = plan(registry(3600));
        let mut oracle = registry(3600);
        let points = stream(24 * 8);
        let mut row = vec![None; 64];
        for mut unit in units {
            let k = unit.kernel.n_configs();
            for &(ts, v) in &points {
                unit.kernel.observe(ts, v, &mut row[..k]);
                for (j, &c) in unit.columns.iter().enumerate() {
                    let expect = oracle[c].observe_clamped(ts, v);
                    assert_eq!(
                        row[j].map(f64::to_bits),
                        expect.map(f64::to_bits),
                        "{} col {c} ts {ts}",
                        oracle[c].label()
                    );
                }
            }
        }
    }

    #[test]
    fn registry_plan_fuses_the_expected_families() {
        let units = plan(registry(3600));
        let total: usize = units.iter().map(|u| u.columns.len()).sum();
        assert_eq!(total, 133);
        // Columns are a permutation of 0..133 in order.
        let cols: Vec<usize> = units.iter().flat_map(|u| u.columns.clone()).collect();
        assert_eq!(cols, (0..133).collect::<Vec<_>>());
        let sizes: Vec<(&str, usize)> = units
            .iter()
            .map(|u| (u.kernel.family(), u.columns.len()))
            .collect();
        // One fused kernel per family; TSD+MAD and historical+MAD merge.
        assert!(sizes.contains(&("diff", 3)));
        assert!(sizes.contains(&("simple MA", 5)));
        assert!(sizes.contains(&("weighted MA", 5)));
        assert!(sizes.contains(&("MA of diff", 5)));
        assert!(sizes.contains(&("EWMA", 5)));
        assert!(sizes.contains(&("TSD/TSD MAD", 10)));
        assert!(sizes.contains(&("historical average/MAD", 10)));
        assert!(sizes.contains(&("Holt-Winters", 64)));
        // SVD: 15 one-config scalar units; wavelet: 3 lockstep triples.
        assert_eq!(
            sizes.iter().filter(|s| *s == &("SVD", 1)).count(),
            15,
            "{sizes:?}"
        );
        assert_eq!(sizes.iter().filter(|s| *s == &("wavelet", 3)).count(), 3);
        assert!(sizes.contains(&("ARIMA", 1)));
        assert!(sizes.contains(&("simple threshold", 1)));
        assert!(units.iter().all(|u| u.seed_cost_ns > 0.0));
    }

    #[test]
    fn fused_kernels_clone_mid_stream() {
        let points = stream(24 * 6);
        let (head, tail) = points.split_at(points.len() / 2);
        for mut unit in plan(registry(3600)) {
            let k = unit.kernel.n_configs();
            let mut a = vec![None; k];
            let mut b = vec![None; k];
            for &(ts, v) in head {
                unit.kernel.observe(ts, v, &mut a);
            }
            let mut clone = unit.kernel.clone_box();
            for &(ts, v) in tail {
                unit.kernel.observe(ts, v, &mut a);
                clone.observe(ts, v, &mut b);
                assert_eq!(
                    a.iter().map(|s| s.map(f64::to_bits)).collect::<Vec<_>>(),
                    b.iter().map(|s| s.map(f64::to_bits)).collect::<Vec<_>>(),
                    "{} ts {ts}",
                    unit.kernel.family()
                );
            }
        }
    }

    #[test]
    fn batch_observe_matches_per_point() {
        let points = stream(24 * 5);
        let timestamps: Vec<i64> = points.iter().map(|p| p.0).collect();
        let values: Vec<Option<f64>> = points.iter().map(|p| p.1).collect();
        for unit in plan(registry(3600)) {
            let mut per_point = unit.kernel;
            let mut batched = per_point.clone_box();
            let k = per_point.n_configs();
            let mut a = vec![None; points.len() * k];
            for (i, &(ts, v)) in points.iter().enumerate() {
                per_point.observe(ts, v, &mut a[i * k..(i + 1) * k]);
            }
            let mut b = vec![None; points.len() * k];
            batched.observe_batch(&timestamps, &values, &mut b);
            assert_eq!(
                a.iter().map(|s| s.map(f64::to_bits)).collect::<Vec<_>>(),
                b.iter().map(|s| s.map(f64::to_bits)).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn pruned_subsets_still_fuse_and_match() {
        // Keep every third config (registry order): fused lanes shrink but
        // severities must not change.
        let keep: Vec<usize> = (0..133).filter(|i| i % 3 == 0).collect();
        let subset: Vec<ConfiguredDetector> = registry(3600)
            .into_iter()
            .filter(|c| keep.contains(&c.index))
            .collect();
        let mut oracle = registry(3600);
        let units = plan(subset);
        let points = stream(24 * 6);
        let mut row = vec![None; 64];
        for mut unit in units {
            let k = unit.kernel.n_configs();
            for &(ts, v) in &points {
                unit.kernel.observe(ts, v, &mut row[..k]);
                for (j, &c) in unit.columns.iter().enumerate() {
                    let expect = oracle[c].observe_clamped(ts, v);
                    assert_eq!(
                        row[j].map(f64::to_bits),
                        expect.map(f64::to_bits),
                        "col {c} ts {ts}"
                    );
                }
            }
        }
    }
}
