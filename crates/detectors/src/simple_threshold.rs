//! Simple static threshold — the Amazon CloudWatch Alarms style detector
//! [24], the one detection method "intuitive to operators although
//! unsatisfying in detection performance" (§1).
//!
//! Its severity is the raw value itself: for volume KPIs like #SR (number
//! of slow responses) the value *is* the anomaly signal, which is why this
//! trivial detector ranks first in AUCPR on #SR in the paper (Fig. 9b).
//! Every sThld swept over this severity reproduces one static-threshold
//! alarm rule.

use crate::Detector;

/// The static-threshold detector. Severity = the value (clamped at 0).
#[derive(Debug, Clone, Default)]
pub struct SimpleThreshold;

impl SimpleThreshold {
    /// Creates the detector (it has no parameters — Table 3 lists exactly
    /// one configuration).
    pub fn new() -> Self {
        Self
    }
}

impl Detector for SimpleThreshold {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        value.map(|v| v.max(0.0))
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "simple threshold"
    }

    fn config(&self) -> String {
        "none".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_the_value() {
        let mut d = SimpleThreshold::new();
        assert_eq!(d.observe(0, Some(42.0)), Some(42.0));
        assert_eq!(d.observe(60, Some(0.0)), Some(0.0));
    }

    #[test]
    fn negative_values_clamp_to_zero() {
        let mut d = SimpleThreshold::new();
        assert_eq!(d.observe(0, Some(-5.0)), Some(0.0));
    }

    #[test]
    fn missing_points_yield_none() {
        let mut d = SimpleThreshold::new();
        assert_eq!(d.observe(0, None), None);
    }

    #[test]
    fn no_warm_up() {
        let mut d = SimpleThreshold::new();
        // The very first point already gets a severity.
        assert!(d.observe(0, Some(1.0)).is_some());
    }
}
