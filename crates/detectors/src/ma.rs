//! The moving-average family: simple MA [4], weighted MA [11] and
//! "MA of diff" — the second detector the studied search engine already ran
//! (§5.2), "designed to discover continuous jitters".
//!
//! All three are windowed, prediction-based detectors with
//! win ∈ {10, 20, 30, 40, 50} points (Table 3). Simple/weighted MA predict
//! the next value from the window and score |actual − forecast|; MA of diff
//! scores the average absolute slot-to-slot change, so a jittery stretch
//! scores high even when each individual change looks benign.

use crate::Detector;
use std::collections::VecDeque;

/// Simple moving average: severity = |v − mean(last `win` values)|.
#[derive(Debug, Clone)]
pub struct SimpleMa {
    win: usize,
    window: VecDeque<f64>,
    sum: f64,
}

impl SimpleMa {
    /// Creates a simple-MA detector with a window of `win` points.
    ///
    /// # Panics
    ///
    /// Panics if `win == 0`.
    pub fn new(win: usize) -> Self {
        assert!(win > 0, "window must be positive");
        Self {
            win,
            window: VecDeque::with_capacity(win),
            sum: 0.0,
        }
    }

    fn push(&mut self, v: f64) {
        self.window.push_back(v);
        self.sum += v;
        if self.window.len() > self.win {
            self.sum -= self.window.pop_front().expect("non-empty");
        }
    }
}

impl Detector for SimpleMa {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        let severity = (self.window.len() == self.win).then(|| {
            let pred = self.sum / self.win as f64;
            (v - pred).abs()
        });
        self.push(v);
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "simple MA"
    }

    fn config(&self) -> String {
        format!("win={} points", self.win)
    }
}

/// Linearly weighted moving average: recent points weigh more.
/// Severity = |v − Σ w_i x_i / Σ w_i| with w = 1..=win (newest = win).
#[derive(Debug, Clone)]
pub struct WeightedMa {
    win: usize,
    window: VecDeque<f64>,
}

impl WeightedMa {
    /// Creates a weighted-MA detector with a window of `win` points.
    ///
    /// # Panics
    ///
    /// Panics if `win == 0`.
    pub fn new(win: usize) -> Self {
        assert!(win > 0, "window must be positive");
        Self {
            win,
            window: VecDeque::with_capacity(win),
        }
    }

    fn prediction(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &x) in self.window.iter().enumerate() {
            let w = (i + 1) as f64; // oldest gets 1, newest gets win
            num += w * x;
            den += w;
        }
        num / den
    }
}

impl Detector for WeightedMa {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let v = value?;
        let severity = (self.window.len() == self.win).then(|| (v - self.prediction()).abs());
        self.window.push_back(v);
        if self.window.len() > self.win {
            self.window.pop_front();
        }
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "weighted MA"
    }

    fn config(&self) -> String {
        format!("win={} points", self.win)
    }
}

/// Moving average of |v(t) − v(t−1)|: the jitter detector. The current
/// point's own change is included, so a jitter burst raises the severity
/// immediately and keeps it raised for the window's duration.
#[derive(Debug, Clone)]
pub struct MaOfDiff {
    win: usize,
    prev: Option<f64>,
    diffs: VecDeque<f64>,
    sum: f64,
}

impl MaOfDiff {
    /// Creates an MA-of-diff detector over `win` successive differences.
    ///
    /// # Panics
    ///
    /// Panics if `win == 0`.
    pub fn new(win: usize) -> Self {
        assert!(win > 0, "window must be positive");
        Self {
            win,
            prev: None,
            diffs: VecDeque::with_capacity(win),
            sum: 0.0,
        }
    }
}

impl Detector for MaOfDiff {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        let Some(v) = value else {
            // A gap breaks the "previous slot" chain; drop the stale diffs
            // so post-gap severities only reflect post-gap jitter.
            self.prev = None;
            self.diffs.clear();
            self.sum = 0.0;
            return None;
        };
        let severity = if let Some(p) = self.prev {
            let d = (v - p).abs();
            self.diffs.push_back(d);
            self.sum += d;
            if self.diffs.len() > self.win {
                self.sum -= self.diffs.pop_front().expect("non-empty");
            }
            (self.diffs.len() == self.win).then(|| self.sum / self.win as f64)
        } else {
            None
        };
        self.prev = Some(v);
        severity
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "MA of diff"
    }

    fn config(&self) -> String {
        format!("win={} points", self.win)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut dyn Detector, values: &[f64]) -> Vec<Option<f64>> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| det.observe(i as i64 * 60, Some(v)))
            .collect()
    }

    #[test]
    fn simple_ma_warms_up_then_predicts_mean() {
        let mut d = SimpleMa::new(3);
        let out = feed(&mut d, &[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(out[0], None);
        assert_eq!(out[1], None);
        assert_eq!(out[2], None);
        // Window {1,2,3}: pred 2, severity |10-2| = 8.
        assert_eq!(out[3], Some(8.0));
    }

    #[test]
    fn simple_ma_window_slides() {
        let mut d = SimpleMa::new(2);
        let out = feed(&mut d, &[1.0, 3.0, 5.0, 5.0]);
        // Window {1,3}: pred 2, sev 3. Window {3,5}: pred 4, sev 1.
        assert_eq!(out[2], Some(3.0));
        assert_eq!(out[3], Some(1.0));
    }

    #[test]
    fn weighted_ma_weights_recent_points_more() {
        let mut d = WeightedMa::new(2);
        feed(&mut d, &[0.0, 10.0]);
        // Prediction = (1*0 + 2*10)/3 = 6.67 — closer to the recent point.
        let sev = d.observe(120, Some(6.0)).unwrap();
        assert!((sev - (6.0f64 - 20.0 / 3.0).abs()).abs() < 1e-12);
    }

    #[test]
    fn weighted_ma_constant_signal_zero_severity() {
        let mut d = WeightedMa::new(5);
        let out = feed(&mut d, &[4.0; 10]);
        for s in out.into_iter().flatten() {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn ma_of_diff_flags_jitter() {
        let mut d = MaOfDiff::new(4);
        // Smooth ramp: diffs of 1 => severity 1.
        let smooth = feed(&mut d, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(smooth[5], Some(1.0));
        // Jitter: alternating ±10 => severity ~20.
        let mut d2 = MaOfDiff::new(4);
        let jitter = feed(&mut d2, &[0.0, 10.0, -10.0, 10.0, -10.0, 10.0]);
        assert_eq!(jitter[5], Some(20.0));
    }

    #[test]
    fn ma_of_diff_resets_across_gaps() {
        let mut d = MaOfDiff::new(2);
        d.observe(0, Some(1.0));
        d.observe(60, Some(2.0));
        d.observe(120, Some(3.0));
        assert!(d.observe(180, Some(4.0)).is_some());
        // Gap: the next diff would span the gap; it must not be computed.
        assert_eq!(d.observe(240, None), None);
        assert_eq!(d.observe(300, Some(100.0)), None);
        // Chain restarts from the post-gap point.
        let s = d.observe(360, Some(101.0));
        assert_eq!(s, None); // only one diff so far, window of 2 not full
    }

    #[test]
    fn missing_values_do_not_pollute_simple_ma() {
        let mut d = SimpleMa::new(2);
        d.observe(0, Some(1.0));
        assert_eq!(d.observe(60, None), None);
        d.observe(120, Some(3.0));
        // Window {1,3}: pred 2.
        assert_eq!(d.observe(180, Some(2.0)), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = SimpleMa::new(0);
    }
}
