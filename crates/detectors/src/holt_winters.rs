//! The Holt–Winters detector [6]: triple exponential smoothing with a daily
//! season. §4.3.1: "Holt-Winters uses the residual error (i.e., the absolute
//! difference between the actual value and the forecast value of each data
//! point) to measure the severity."
//!
//! Table 3 sweeps all three smoothing parameters over {0.2, 0.4, 0.6, 0.8},
//! yielding the 64 configurations that dominate the 133-feature registry.

use crate::Detector;
use opprentice_numeric::smoothing::HoltWinters;

/// The Holt–Winters prediction detector.
#[derive(Debug, Clone)]
pub struct HoltWintersDetector {
    alpha: f64,
    beta: f64,
    gamma: f64,
    smoother: HoltWinters,
    last_value: Option<f64>,
}

impl HoltWintersDetector {
    /// Creates the detector with the given smoothing parameters at the
    /// given sampling interval (the season is one day).
    ///
    /// # Panics
    ///
    /// Panics if a parameter is outside `[0, 1]` or the interval admits
    /// fewer than 2 points per day.
    pub fn new(alpha: f64, beta: f64, gamma: f64, interval: u32) -> Self {
        let season = (86_400 / i64::from(interval)) as usize;
        Self {
            alpha,
            beta,
            gamma,
            smoother: HoltWinters::new(alpha, beta, gamma, season),
            last_value: None,
        }
    }
}

impl Detector for HoltWintersDetector {
    fn observe(&mut self, _timestamp: i64, value: Option<f64>) -> Option<f64> {
        // A missing point would desynchronize the seasonal position, so it
        // is filled with the smoother's own forecast (or the last value
        // during warm-up) — self-healing, but no severity is emitted.
        let Some(v) = value else {
            let fill = self.smoother.next_forecast().or(self.last_value);
            if let Some(f) = fill {
                let _ = self.smoother.observe(f);
            }
            return None;
        };
        self.last_value = Some(v);
        self.smoother
            .observe(v)
            .map(|forecast| (v - forecast).abs())
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Holt-Winters"
    }

    fn config(&self) -> String {
        format!(
            "alpha={},beta={},gamma={}",
            self.alpha, self.beta, self.gamma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hourly series (24-point season) with a clean daily shape.
    fn daily(ts: i64) -> f64 {
        let slot = (ts / 3600) % 24;
        100.0 + 10.0 * (std::f64::consts::TAU * slot as f64 / 24.0).sin()
    }

    #[test]
    fn warm_up_is_two_days() {
        let mut d = HoltWintersDetector::new(0.4, 0.2, 0.4, 3600);
        for i in 0..48 {
            assert_eq!(
                d.observe(i * 3600, Some(daily(i * 3600))),
                None,
                "point {i}"
            );
        }
        assert!(d.observe(48 * 3600, Some(daily(48 * 3600))).is_some());
    }

    #[test]
    fn clean_seasonal_signal_small_severity_spike_large() {
        let mut d = HoltWintersDetector::new(0.4, 0.2, 0.4, 3600);
        let mut normal = 0.0;
        for i in 0..(24 * 14) {
            let ts = i * 3600;
            if let Some(s) = d.observe(ts, Some(daily(ts))) {
                normal = s;
            }
        }
        let ts = 24 * 14 * 3600;
        let spike = d.observe(ts, Some(daily(ts) + 80.0)).unwrap();
        assert!(spike > 20.0 * (normal + 0.5), "{spike} vs {normal}");
    }

    #[test]
    fn missing_points_self_heal_without_severity() {
        let mut d = HoltWintersDetector::new(0.4, 0.2, 0.4, 3600);
        for i in 0..(24 * 7) {
            let ts = i * 3600;
            d.observe(ts, Some(daily(ts)));
        }
        // A short gap.
        for i in 0..3 {
            assert_eq!(d.observe((24 * 7 + i) * 3600, None), None);
        }
        // Forecasting continues and stays accurate after the gap.
        let ts = (24 * 7 + 3) * 3600;
        let sev = d.observe(ts, Some(daily(ts))).unwrap();
        assert!(sev < 5.0, "post-gap severity {sev}");
    }

    #[test]
    fn config_string_reflects_parameters() {
        let d = HoltWintersDetector::new(0.2, 0.4, 0.8, 60);
        assert_eq!(d.config(), "alpha=0.2,beta=0.4,gamma=0.8");
    }
}
