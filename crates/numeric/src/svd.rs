//! Singular value decomposition via the one-sided Jacobi method.
//!
//! The paper's SVD detector [7] projects a small lag matrix of recent data
//! onto its dominant singular subspace and scores points by reconstruction
//! residual. The matrices involved are tiny (at most 50 × 7, Table 3), so
//! the simple, robust one-sided Jacobi iteration is the right tool — no
//! bidiagonalization machinery needed.

use crate::matrix::Matrix;

/// Thin SVD result: `a ≈ u * diag(sigma) * v^T` with `u` being
/// `rows × k`, `sigma` length `k`, `v` being `cols × k`, where
/// `k = min(rows, cols)`. Singular values are sorted descending.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`rows × k`).
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (`cols × k`).
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs the matrix keeping only the top `rank` components.
    pub fn reconstruct(&self, rank: usize) -> Matrix {
        let k = rank.min(self.sigma.len());
        let rows = self.u.rows();
        let cols = self.v.rows();
        let mut out = Matrix::zeros(rows, cols);
        for comp in 0..k {
            let s = self.sigma[comp];
            for r in 0..rows {
                let us = self.u.get(r, comp) * s;
                if us == 0.0 {
                    continue;
                }
                for c in 0..cols {
                    let cur = out.get(r, c);
                    out.set(r, c, cur + us * self.v.get(c, comp));
                }
            }
        }
        out
    }
}

/// Computes the thin SVD of `a` with one-sided Jacobi rotations.
///
/// Works on any shape; internally operates on the transpose when
/// `rows < cols` so the iteration always orthogonalizes the long dimension.
pub fn svd(a: &Matrix) -> Svd {
    if a.rows() < a.cols() {
        // svd(Aᵀ) = (V, Σ, U); swap back.
        let t = svd(&a.transpose());
        return Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        };
    }
    let m = a.rows();
    let n = a.cols();
    // Work on columns of `w` (copy of a), rotating pairs until orthogonal.
    let mut w = a.clone();
    let mut v = Matrix::zeros(n, n);
    for i in 0..n {
        v.set(i, i, 1.0);
    }

    let eps = 1e-12;
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for r in 0..m {
                    let wp = w.get(r, p);
                    let wq = w.get(r, q);
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(1e-300));
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..m {
                    let wp = w.get(r, p);
                    let wq = w.get(r, q);
                    w.set(r, p, c * wp - s * wq);
                    w.set(r, q, s * wp + c * wq);
                }
                for r in 0..n {
                    let vp = v.get(r, p);
                    let vq = v.get(r, q);
                    v.set(r, p, c * vp - s * vq);
                    v.set(r, q, s * vp + c * vq);
                }
            }
        }
        if off < 1e-11 {
            break;
        }
    }

    // Column norms are the singular values; normalize to get U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| (0..m).map(|r| w.get(r, c).powi(2)).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("NaN singular value"));

    let mut u = Matrix::zeros(m, n);
    let mut vv = Matrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (dst, &src) in order.iter().enumerate() {
        let s = norms[src];
        sigma.push(s);
        for r in 0..m {
            let val = if s > 1e-300 { w.get(r, src) / s } else { 0.0 };
            u.set(r, dst, val);
        }
        for r in 0..n {
            vv.set(r, dst, v.get(r, src));
        }
    }
    Svd { u, sigma, v: vv }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert!(
                    (a.get(r, c) - b.get(r, c)).abs() < tol,
                    "mismatch at ({r},{c}): {} vs {}",
                    a.get(r, c),
                    b.get(r, c)
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_rows(3, 3, vec![3., 0., 0., 0., 5., 0., 0., 0., 1.]);
        let d = svd(&a);
        assert!((d.sigma[0] - 5.0).abs() < 1e-9);
        assert!((d.sigma[1] - 3.0).abs() < 1e-9);
        assert!((d.sigma[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_reconstruction_matches_input() {
        let a = Matrix::from_rows(4, 3, vec![1., 2., 3., 4., 5., 6., 7., 8., 10., 2., 0., -1.]);
        let d = svd(&a);
        assert_close(&d.reconstruct(3), &a, 1e-8);
    }

    #[test]
    fn wide_matrix_supported() {
        let a = Matrix::from_rows(2, 4, vec![1., 0., 2., 0., 0., 3., 0., 4.]);
        let d = svd(&a);
        assert_eq!(d.u.rows(), 2);
        assert_eq!(d.v.rows(), 4);
        assert_close(&d.reconstruct(2), &a, 1e-8);
    }

    #[test]
    fn rank_one_matrix_has_one_nonzero_sigma() {
        // Outer product => rank 1.
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let mut a = Matrix::zeros(3, 2);
        for r in 0..3 {
            for c in 0..2 {
                a.set(r, c, u[r] * v[c]);
            }
        }
        let d = svd(&a);
        assert!(d.sigma[0] > 1.0);
        assert!(d.sigma[1].abs() < 1e-9);
        assert_close(&d.reconstruct(1), &a, 1e-8);
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let a = Matrix::from_rows(5, 3, (0..15).map(|i| ((i * 37) % 11) as f64).collect());
        let d = svd(&a);
        for i in 0..3 {
            for j in 0..3 {
                let dot_v: f64 = (0..3).map(|r| d.v.get(r, i) * d.v.get(r, j)).sum();
                let dot_u: f64 = (0..5).map(|r| d.u.get(r, i) * d.u.get(r, j)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot_v - expect).abs() < 1e-8, "v not orthonormal");
                if d.sigma[i] > 1e-9 && d.sigma[j] > 1e-9 {
                    assert!((dot_u - expect).abs() < 1e-8, "u not orthonormal");
                }
            }
        }
    }

    #[test]
    fn rank1_truncation_is_best_approximation_direction() {
        // A strongly rank-1 matrix plus tiny noise: top component captures it.
        let mut a = Matrix::zeros(6, 3);
        for r in 0..6 {
            for c in 0..3 {
                a.set(
                    r,
                    c,
                    (r + 1) as f64 * (c + 1) as f64 + 0.01 * ((r * 3 + c) % 2) as f64,
                );
            }
        }
        let d = svd(&a);
        let approx = d.reconstruct(1);
        let mut err = 0.0;
        for r in 0..6 {
            for c in 0..3 {
                err += (a.get(r, c) - approx.get(r, c)).powi(2);
            }
        }
        assert!(err.sqrt() / a.frobenius_norm() < 0.01);
    }
}
