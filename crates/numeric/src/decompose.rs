//! Classical seasonal decomposition of a time-series window.
//!
//! This is the substrate of the paper's TSD (time series decomposition)
//! detector [1] and its MAD variant: split a trailing window into
//! `trend + seasonal + residual`, then score new points by how far they sit
//! from `trend + seasonal`, measured in residual spreads. The robust variant
//! replaces means with medians and the standard deviation with MAD, which
//! "can improve the robustness to missing data and outliers" (§5.2).

use crate::stats;

/// A batch seasonal decomposition `x = trend + seasonal + residual`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Centered moving-average trend (edges extended).
    pub trend: Vec<f64>,
    /// Periodic seasonal component (mean/median per slot, zero-centered).
    pub seasonal: Vec<f64>,
    /// What remains.
    pub residual: Vec<f64>,
}

/// Decomposes `xs` with seasonal period `period` points.
///
/// `robust` selects medians/MAD-friendly estimation (used by TSD MAD);
/// otherwise means are used (plain TSD). The trend is a centered moving
/// average of one period, extended at the edges by its boundary values.
///
/// # Panics
///
/// Panics if `period < 2` or `xs.len() < 2 * period`.
pub fn decompose(xs: &[f64], period: usize, robust: bool) -> Decomposition {
    assert!(period >= 2, "period must be at least 2");
    assert!(xs.len() >= 2 * period, "need at least two periods of data");
    let n = xs.len();

    // 1. Trend: centered moving average over one period.
    let half = period / 2;
    let mut trend = vec![0.0; n];
    for (i, t) in trend.iter_mut().enumerate() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let window = &xs[lo..hi];
        *t = if robust {
            stats::median(window).expect("non-empty window")
        } else {
            stats::mean(window).expect("non-empty window")
        };
    }

    // 2. Seasonal: center per slot of the detrended series, then zero-center.
    let mut per_slot: Vec<Vec<f64>> = vec![Vec::new(); period];
    for i in 0..n {
        per_slot[i % period].push(xs[i] - trend[i]);
    }
    let mut seasonal_profile: Vec<f64> = per_slot
        .iter()
        .map(|slot| {
            if robust {
                stats::median(slot).unwrap_or(0.0)
            } else {
                stats::mean(slot).unwrap_or(0.0)
            }
        })
        .collect();
    let profile_center = if robust {
        stats::median(&seasonal_profile).unwrap_or(0.0)
    } else {
        stats::mean(&seasonal_profile).unwrap_or(0.0)
    };
    for s in &mut seasonal_profile {
        *s -= profile_center;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| seasonal_profile[i % period]).collect();
    let residual: Vec<f64> = (0..n).map(|i| xs[i] - trend[i] - seasonal[i]).collect();
    Decomposition {
        trend,
        seasonal,
        residual,
    }
}

/// Spread (σ-like scale) of the residuals: standard deviation for the plain
/// variant, scaled MAD for the robust one. Returns at least `f64::MIN_POSITIVE`
/// to keep severity division well-defined on perfectly regular data.
pub fn residual_spread(residual: &[f64], robust: bool) -> f64 {
    let raw = if robust {
        stats::mad(residual).unwrap_or(0.0)
    } else {
        stats::std_dev(residual).unwrap_or(0.0)
    };
    raw.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_signal(n: usize, period: usize, amp: f64, trend_slope: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                trend_slope * i as f64
                    + amp * (2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn components_sum_to_signal() {
        let xs = seasonal_signal(96, 12, 5.0, 0.1);
        let d = decompose(&xs, 12, false);
        for i in 0..xs.len() {
            let sum = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((sum - xs[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn clean_seasonal_signal_has_small_residuals() {
        let xs = seasonal_signal(240, 24, 10.0, 0.0);
        let d = decompose(&xs, 24, false);
        let spread = residual_spread(&d.residual, false);
        // Residual noise should be far smaller than the seasonal amplitude.
        assert!(spread < 1.0, "spread {spread}");
    }

    #[test]
    fn seasonal_component_is_periodic_and_centered() {
        let xs = seasonal_signal(240, 24, 10.0, 0.05);
        let d = decompose(&xs, 24, false);
        for i in 24..xs.len() {
            assert!((d.seasonal[i] - d.seasonal[i - 24]).abs() < 1e-10);
        }
        let mean_season: f64 = d.seasonal[..24].iter().sum::<f64>() / 24.0;
        assert!(mean_season.abs() < 1e-9);
    }

    #[test]
    fn trend_follows_slope() {
        let xs = seasonal_signal(240, 24, 3.0, 0.5);
        let d = decompose(&xs, 24, false);
        // Compare interior trend growth to the true slope over 100 points.
        let growth = (d.trend[150] - d.trend[50]) / 100.0;
        assert!((growth - 0.5).abs() < 0.05, "growth {growth}");
    }

    #[test]
    fn robust_variant_shrugs_off_outliers() {
        let mut xs = seasonal_signal(240, 24, 10.0, 0.0);
        xs[100] += 500.0;
        xs[101] += 500.0;
        let plain = decompose(&xs, 24, false);
        let robust = decompose(&xs, 24, true);
        let plain_spread = residual_spread(&plain.residual, false);
        let robust_spread = residual_spread(&robust.residual, true);
        // The robust spread stays near the clean value; std is inflated.
        assert!(
            robust_spread < plain_spread / 3.0,
            "{robust_spread} vs {plain_spread}"
        );
        // And the outlier's residual z-score is much larger under MAD.
        let z_plain = plain.residual[100].abs() / plain_spread;
        let z_robust = robust.residual[100].abs() / robust_spread;
        assert!(z_robust > z_plain);
    }

    #[test]
    #[should_panic(expected = "two periods")]
    fn rejects_short_input() {
        let _ = decompose(&[1.0; 10], 8, false);
    }

    #[test]
    fn residual_spread_never_zero() {
        assert!(residual_spread(&[0.0; 50], false) > 0.0);
        assert!(residual_spread(&[0.0; 50], true) > 0.0);
    }
}
