//! STL — Seasonal-Trend decomposition using Loess (Cleveland et al., 1990).
//!
//! The paper's TSD detector cites time-series decomposition [1]; the
//! `decompose` module implements the classical moving-average variant the
//! detectors run online. STL is the stronger, canonical batch algorithm —
//! robust locally-weighted regression for both the seasonal and the trend
//! component — provided here for offline analysis, for the `seasonal ESD`
//! extension detector's lineage, and as a cross-check of the classical
//! decomposition.
//!
//! This is the standard inner-loop structure of STL:
//!
//! 1. detrend: `x − trend`,
//! 2. per-phase loess smoothing of the cycle-subseries → raw seasonal,
//! 3. low-pass filter (3 moving averages + loess) removes residual trend
//!    from the seasonal,
//! 4. deseasonalize and loess-smooth → new trend,
//!
//! iterated a fixed number of times, optionally with robustness weights
//! computed from the residuals (bisquare), which downweight outliers —
//! the property that matters for anomaly work.

use crate::stats;

/// An STL decomposition: `x = trend + seasonal + residual`.
#[derive(Debug, Clone)]
pub struct Stl {
    /// The loess-smoothed trend.
    pub trend: Vec<f64>,
    /// The seasonal component (period-varying, unlike the classical
    /// decomposition's fixed profile).
    pub seasonal: Vec<f64>,
    /// What remains.
    pub residual: Vec<f64>,
}

/// STL parameters.
#[derive(Debug, Clone, Copy)]
pub struct StlParams {
    /// Seasonal loess window (in cycles), odd, ≥ 3. Larger = more rigid
    /// seasonality.
    pub seasonal_smoother: usize,
    /// Trend loess window (in points), odd. Defaults from the period when 0.
    pub trend_smoother: usize,
    /// Outer robustness iterations (0 = no robustness weights).
    pub robust_iterations: usize,
    /// Inner loop iterations.
    pub inner_iterations: usize,
}

impl Default for StlParams {
    fn default() -> Self {
        Self {
            seasonal_smoother: 7,
            trend_smoother: 0,
            robust_iterations: 1,
            inner_iterations: 2,
        }
    }
}

/// Tricube kernel weight for normalized distance `d ∈ [0, 1]`.
fn tricube(d: f64) -> f64 {
    if d >= 1.0 {
        0.0
    } else {
        let t = 1.0 - d * d * d;
        t * t * t
    }
}

/// Degree-1 loess smoothing of `ys` (observed at integer positions) with
/// the given span (points) and optional per-point robustness weights.
/// Returns the fitted value at every position.
fn loess(ys: &[f64], span: usize, robustness: Option<&[f64]>) -> Vec<f64> {
    let n = ys.len();
    if n == 0 {
        return Vec::new();
    }
    let span = span.clamp(3, n.max(3)) | 1; // odd, at least 3
    let half = span / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        // Weighted linear regression of ys[lo..hi] on position.
        let max_dist = ((i - lo).max(hi - 1 - i)).max(1) as f64;
        let (mut sw, mut swx, mut swy, mut swxx, mut swxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (j, &y) in ys.iter().enumerate().take(hi).skip(lo) {
            let mut w = tricube((j as f64 - i as f64).abs() / max_dist);
            if let Some(r) = robustness {
                w *= r[j];
            }
            if w <= 0.0 {
                continue;
            }
            let x = j as f64;
            sw += w;
            swx += w * x;
            swy += w * y;
            swxx += w * x * x;
            swxy += w * x * y;
        }
        if sw <= 0.0 {
            // Every candidate was robustness-suppressed (a whole window of
            // flagged outliers). The one robust location estimate that does
            // not reintroduce them is the window median.
            out.push(crate::stats::median(&ys[lo..hi]).expect("non-empty window"));
            continue;
        }
        let denom = sw * swxx - swx * swx;
        let fitted = if denom.abs() < 1e-12 {
            swy / sw
        } else {
            let beta = (sw * swxy - swx * swy) / denom;
            let alpha = (swy - beta * swx) / sw;
            alpha + beta * i as f64
        };
        out.push(fitted);
    }
    out
}

/// Centered moving average of window `w` (edges use the available points).
fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    let n = xs.len();
    let half = w / 2;
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Bisquare robustness weights from residuals.
fn bisquare_weights(residual: &[f64]) -> Vec<f64> {
    let abs: Vec<f64> = residual.iter().map(|r| r.abs()).collect();
    let max_abs = abs.iter().cloned().fold(0.0, f64::max);
    // 6 * median(|r|) is the classical scale; floor it so a nearly-perfect
    // fit (median ~ 0) cannot zero every weight or produce 0/0 = NaN.
    let s = (6.0 * stats::median(&abs).unwrap_or(0.0)).max(1e-12 + 1e-9 * max_abs);
    residual
        .iter()
        .map(|r| {
            let u = (r / s).abs();
            if u >= 1.0 {
                0.0
            } else {
                let t = 1.0 - u * u;
                t * t
            }
        })
        .collect()
}

/// Decomposes `xs` with seasonal period `period` using STL.
///
/// # Panics
///
/// Panics if `period < 2` or `xs.len() < 2 * period`.
pub fn stl(xs: &[f64], period: usize, params: StlParams) -> Stl {
    assert!(period >= 2, "period must be at least 2");
    assert!(xs.len() >= 2 * period, "need at least two periods");
    let n = xs.len();
    let trend_span = if params.trend_smoother > 0 {
        params.trend_smoother
    } else {
        // STL's default trend span heuristic.
        (((1.5 * period as f64) / (1.0 - 1.5 / params.seasonal_smoother as f64)).ceil() as usize)
            | 1
    };

    let mut trend = vec![0.0; n];
    let mut seasonal = vec![0.0; n];
    let mut weights: Option<Vec<f64>> = None;

    for _outer in 0..=params.robust_iterations {
        for _inner in 0..params.inner_iterations {
            // 1. Detrend.
            let detrended: Vec<f64> = xs.iter().zip(&trend).map(|(x, t)| x - t).collect();

            // 2. Cycle-subseries loess smoothing.
            let mut raw_seasonal = vec![0.0; n];
            for phase in 0..period {
                let idx: Vec<usize> = (phase..n).step_by(period).collect();
                let sub: Vec<f64> = idx.iter().map(|&i| detrended[i]).collect();
                let sub_w: Option<Vec<f64>> = weights
                    .as_ref()
                    .map(|w| idx.iter().map(|&i| w[i]).collect());
                let smoothed = loess(&sub, params.seasonal_smoother, sub_w.as_deref());
                for (&i, &s) in idx.iter().zip(&smoothed) {
                    raw_seasonal[i] = s;
                }
            }

            // 3. Low-pass: two MAs of the period, one of 3, then loess; this
            // captures any trend leaked into the seasonal. The seasonal is
            // periodically padded by one period per side so the averages
            // have full windows at the edges (textbook STL extends the
            // cycle subseries; periodic padding is equivalent here).
            let mut padded = Vec::with_capacity(n + 2 * period);
            padded.extend_from_slice(&raw_seasonal[..period]);
            padded.extend_from_slice(&raw_seasonal);
            padded.extend_from_slice(&raw_seasonal[n - period..]);
            let low_padded =
                moving_average(&moving_average(&moving_average(&padded, period), period), 3);
            let low = loess(&low_padded[period..period + n], trend_span, None);
            for i in 0..n {
                seasonal[i] = raw_seasonal[i] - low[i];
            }

            // 4. Deseasonalize and re-estimate the trend.
            let deseason: Vec<f64> = xs.iter().zip(&seasonal).map(|(x, s)| x - s).collect();
            trend = loess(&deseason, trend_span, weights.as_deref());
        }

        // Outer loop: robustness weights from the residuals.
        if params.robust_iterations > 0 {
            let residual: Vec<f64> = (0..n).map(|i| xs[i] - trend[i] - seasonal[i]).collect();
            weights = Some(bisquare_weights(&residual));
        }
    }

    let residual: Vec<f64> = (0..n).map(|i| xs[i] - trend[i] - seasonal[i]).collect();
    Stl {
        trend,
        seasonal,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, period: usize, amp: f64, slope: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                slope * i as f64
                    + amp * (std::f64::consts::TAU * (i % period) as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn components_sum_to_signal() {
        let xs = signal(240, 24, 8.0, 0.05);
        let d = stl(&xs, 24, StlParams::default());
        for i in 0..xs.len() {
            let sum = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((sum - xs[i]).abs() < 1e-9, "index {i}");
        }
    }

    #[test]
    fn clean_signal_leaves_tiny_residuals() {
        let xs = signal(360, 24, 10.0, 0.0);
        let d = stl(&xs, 24, StlParams::default());
        // Skip edges (loess edge effects are expected).
        let interior = &d.residual[24..336];
        let max = interior.iter().map(|r| r.abs()).fold(0.0, f64::max);
        assert!(max < 0.8, "max interior residual {max}");
    }

    #[test]
    fn trend_tracks_a_linear_ramp() {
        let xs = signal(360, 24, 5.0, 0.3);
        let d = stl(&xs, 24, StlParams::default());
        let growth = (d.trend[300] - d.trend[60]) / 240.0;
        assert!((growth - 0.3).abs() < 0.05, "growth {growth}");
    }

    #[test]
    fn seasonal_component_is_roughly_periodic() {
        let xs = signal(360, 24, 10.0, 0.1);
        let d = stl(&xs, 24, StlParams::default());
        // Compare seasonal values a period apart, away from the edges.
        for i in 48..288 {
            assert!(
                (d.seasonal[i] - d.seasonal[i + 24]).abs() < 1.5,
                "seasonal drift at {i}: {} vs {}",
                d.seasonal[i],
                d.seasonal[i + 24]
            );
        }
    }

    #[test]
    fn robustness_shrugs_off_outliers() {
        let mut xs = signal(360, 24, 10.0, 0.0);
        xs[100] += 300.0;
        xs[200] -= 300.0;
        let robust = stl(
            &xs,
            24,
            StlParams {
                robust_iterations: 2,
                ..Default::default()
            },
        );
        // The outliers land in the residual, not the trend/seasonal.
        assert!(
            robust.residual[100] > 200.0,
            "outlier absorbed: {}",
            robust.residual[100]
        );
        assert!(robust.residual[200] < -200.0);
        // The trend near the outlier stays close to the clean level (0).
        assert!(
            robust.trend[100].abs() < 30.0,
            "trend contaminated: {}",
            robust.trend[100]
        );
    }

    #[test]
    fn stl_residuals_beat_classical_on_outliers() {
        // Same contaminated signal through both decompositions: STL's
        // robust weights should yield a cleaner seasonal estimate around
        // the contamination.
        let mut xs = signal(360, 24, 10.0, 0.0);
        for i in (96..120).step_by(3) {
            xs[i] += 150.0;
        }
        let s = stl(
            &xs,
            24,
            StlParams {
                robust_iterations: 2,
                ..Default::default()
            },
        );
        let c = crate::decompose::decompose(&xs, 24, false);
        // Probe clean points one period after the contamination.
        let probe = 130..150;
        let stl_err: f64 = probe.clone().map(|i| s.residual[i].abs()).sum();
        let cls_err: f64 = probe.map(|i| c.residual[i].abs()).sum();
        assert!(stl_err < cls_err, "stl {stl_err} vs classical {cls_err}");
    }

    #[test]
    fn loess_interpolates_a_line_exactly() {
        let ys: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 + 1.0).collect();
        let sm = loess(&ys, 7, None);
        for (a, b) in ys.iter().zip(&sm) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "two periods")]
    fn short_input_rejected() {
        let _ = stl(&[1.0; 10], 8, StlParams::default());
    }
}
