//! Sliding-window order statistics for the extraction hot path.
//!
//! The MAD-family detectors (TSD MAD, historical MAD, wavelet) need the
//! median / MAD / max-|x| of a bounded trailing window on every point or
//! every spread refresh. Re-collecting and re-sorting the window each time
//! — what the first implementation did — costs `O(n log n)` per query and
//! one allocation per point. [`SortedWindow`] keeps the window *both* in
//! arrival order (a ring, for running-moment queries that must match the
//! arrival-order summation of [`crate::stats`]) and in sorted order (for
//! order statistics), maintained lazily: pushes go to pending lists and are
//! merged into the sorted array only when a query needs it, in
//! `O(n + k log k)` for `k` pending updates and no steady-state allocation.
//!
//! Every query is **bit-identical** to the naive recompute it replaces:
//!
//! * [`SortedWindow::median`] returns exactly `stats::median(&collected)`
//!   (same middle elements, same two-middle average) — up to the sign of
//!   zero when the window mixes `-0.0` and `0.0` (they compare equal, so
//!   which representative lands on the middle index depends on merge
//!   history; the values are numerically identical and every detector use
//!   passes the median through a subtraction + `abs`, so severities are
//!   unaffected),
//! * [`SortedWindow::mad`] returns exactly `stats::mad(&collected)` — the
//!   deviations `|x − median|` over sorted data form two monotone runs
//!   (decreasing left of the median, increasing right of it), so their
//!   median is found by a two-pointer merge walk without materializing or
//!   sorting the deviation vector,
//! * [`SortedWindow::max_abs`] equals
//!   `collected.iter().map(|x| x.abs()).fold(0.0, f64::max)` — on sorted
//!   data the maximum magnitude sits at one of the two ends,
//! * [`SortedWindow::mean`] / [`SortedWindow::std_dev`] iterate the ring in
//!   arrival order, reproducing `stats::mean` / `stats::std_dev` on the
//!   collected window term for term (float addition is order-sensitive, so
//!   sorted-order summation would *not* be bit-identical).
//!
//! `NaN` must not be pushed; the detector layer filters missing points.

use std::collections::VecDeque;

/// A bounded sliding window with O(1)/O(n) order-statistic queries.
///
/// Pushing beyond the capacity evicts the oldest value. All query methods
/// are bit-identical to collecting the window into a `Vec` (arrival order)
/// and calling the corresponding [`crate::stats`] function.
#[derive(Debug, Clone, Default)]
pub struct SortedWindow {
    cap: usize,
    /// Arrival-order view.
    ring: VecDeque<f64>,
    /// Sorted view, valid once pending updates are merged.
    sorted: Vec<f64>,
    /// Values pushed since the last merge.
    pending_add: Vec<f64>,
    /// Values evicted since the last merge.
    pending_remove: Vec<f64>,
    /// Reused merge output buffer.
    merge_buf: Vec<f64>,
}

impl SortedWindow {
    /// An empty window holding at most `cap` values.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        Self {
            cap,
            ..Self::default()
        }
    }

    /// Number of values currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when the window holds no values.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The oldest value, if any.
    pub fn front(&self) -> Option<f64> {
        self.ring.front().copied()
    }

    /// Pushes a value, evicting the oldest if the window is full.
    ///
    /// `v` must not be `NaN` (order statistics are undefined on NaN; this
    /// mirrors the panic the `stats` sorts would raise).
    pub fn push(&mut self, v: f64) {
        debug_assert!(!v.is_nan(), "NaN pushed into SortedWindow");
        self.ring.push_back(v);
        self.pending_add.push(v);
        if self.ring.len() > self.cap {
            let old = self.ring.pop_front().expect("non-empty after push");
            self.pending_remove.push(old);
        }
    }

    /// The values in arrival order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.ring.iter().copied()
    }

    /// Arrival-order arithmetic mean; `None` when empty. Bit-identical to
    /// `stats::mean` over the collected window.
    pub fn mean(&self) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        Some(self.ring.iter().sum::<f64>() / self.ring.len() as f64)
    }

    /// Arrival-order population standard deviation; `None` when empty.
    /// Bit-identical to `stats::std_dev` over the collected window.
    pub fn std_dev(&self) -> Option<f64> {
        let m = self.mean()?;
        let var = self.ring.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.ring.len() as f64;
        Some(var.sqrt())
    }

    /// Merges pending pushes/evictions into the sorted view.
    fn ensure_sorted(&mut self) {
        if self.pending_add.is_empty() && self.pending_remove.is_empty() {
            return;
        }
        let pending = self.pending_add.len() + self.pending_remove.len();
        if pending >= self.sorted.len() {
            // More churn than content: rebuild from the ring outright.
            self.sorted.clear();
            self.sorted.extend(self.ring.iter().copied());
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN in SortedWindow"));
            self.pending_add.clear();
            self.pending_remove.clear();
            return;
        }

        let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN in SortedWindow");
        self.pending_add.sort_by(cmp);
        self.pending_remove.sort_by(cmp);

        // Cancel values that were pushed and evicted between queries; the
        // window is a multiset, so value-level cancellation is exact.
        {
            let (add, rem) = (&mut self.pending_add, &mut self.pending_remove);
            let (mut i, mut j, mut wi, mut wj) = (0, 0, 0, 0);
            while i < add.len() && j < rem.len() {
                if add[i] == rem[j] {
                    i += 1;
                    j += 1;
                } else if add[i] < rem[j] {
                    add[wi] = add[i];
                    wi += 1;
                    i += 1;
                } else {
                    rem[wj] = rem[j];
                    wj += 1;
                    j += 1;
                }
            }
            while i < add.len() {
                add[wi] = add[i];
                wi += 1;
                i += 1;
            }
            while j < rem.len() {
                rem[wj] = rem[j];
                wj += 1;
                j += 1;
            }
            add.truncate(wi);
            rem.truncate(wj);
        }

        // One pass: drop removed values, weave surviving additions in.
        self.merge_buf.clear();
        let (add, rem) = (&self.pending_add, &self.pending_remove);
        let (mut ai, mut ri) = (0, 0);
        for &x in &self.sorted {
            debug_assert!(ri == rem.len() || rem[ri] >= x, "unmatched eviction");
            if ri < rem.len() && rem[ri] == x {
                ri += 1;
                continue;
            }
            while ai < add.len() && add[ai] <= x {
                self.merge_buf.push(add[ai]);
                ai += 1;
            }
            self.merge_buf.push(x);
        }
        debug_assert_eq!(ri, rem.len(), "eviction of a value not in the window");
        self.merge_buf.extend_from_slice(&add[ai..]);
        std::mem::swap(&mut self.sorted, &mut self.merge_buf);
        self.pending_add.clear();
        self.pending_remove.clear();
    }

    /// Median; `None` when empty. Bit-identical to `stats::median` over the
    /// collected window.
    pub fn median(&mut self) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.sorted.len();
        Some(if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            (self.sorted[n / 2 - 1] + self.sorted[n / 2]) / 2.0
        })
    }

    /// Median absolute deviation × 1.4826 (the Gaussian-consistent scale);
    /// `None` when empty. Bit-identical to `stats::mad` over the collected
    /// window, computed allocation-free: over sorted values the deviations
    /// `|x − median|` form a decreasing run (left of the median) and an
    /// increasing run (right of it), so the deviation median falls out of a
    /// two-pointer merge walk.
    pub fn mad(&mut self) -> Option<f64> {
        let med = self.median()?;
        let s = &self.sorted;
        let n = s.len();
        let split = s.partition_point(|&x| x < med);

        let (target_lo, target_hi) = ((n - 1) / 2, n / 2);
        let (mut lo, mut hi) = (split, split);
        let (mut dev_lo, mut dev_hi) = (0.0, 0.0);
        for idx in 0..=target_hi {
            // Next-smallest deviation from either run. `(x − med).abs()` on
            // both sides to stay bit-faithful to the naive deviation vector.
            let d = match (lo > 0, hi < n) {
                (true, true) => {
                    let l = (s[lo - 1] - med).abs();
                    let r = (s[hi] - med).abs();
                    if l <= r {
                        lo -= 1;
                        l
                    } else {
                        hi += 1;
                        r
                    }
                }
                (true, false) => {
                    lo -= 1;
                    (s[lo] - med).abs()
                }
                (false, true) => {
                    let r = (s[hi] - med).abs();
                    hi += 1;
                    r
                }
                (false, false) => unreachable!("ran out of deviations"),
            };
            if idx == target_lo {
                dev_lo = d;
            }
            if idx == target_hi {
                dev_hi = d;
            }
        }
        let raw = if n % 2 == 1 {
            dev_hi
        } else {
            (dev_lo + dev_hi) / 2.0
        };
        Some(raw * 1.4826)
    }

    /// Maximum magnitude, 0.0 when empty. Bit-identical to
    /// `window.iter().map(|x| x.abs()).fold(0.0, f64::max)`.
    pub fn max_abs(&mut self) -> f64 {
        if self.ring.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let first = self.sorted[0].abs();
        let last = self.sorted[self.sorted.len() - 1].abs();
        first.max(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    /// Deterministic xorshift values in a modest range, with duplicates.
    fn pseudo_stream(n: usize) -> Vec<f64> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Quantize so exact duplicates occur regularly.
                ((state % 2000) as f64 - 1000.0) / 8.0
            })
            .collect()
    }

    fn collected(w: &SortedWindow) -> Vec<f64> {
        w.iter().collect()
    }

    #[test]
    fn matches_stats_functions_bit_for_bit_under_churn() {
        for cap in [1usize, 2, 3, 7, 64] {
            let mut w = SortedWindow::new(cap);
            for (i, v) in pseudo_stream(400).into_iter().enumerate() {
                w.push(v);
                // Query at irregular strides so pushes batch up between
                // merges (the lazy path) and also back-to-back (k = 1).
                if i % 5 == 0 || i % 7 == 0 {
                    let xs = collected(&w);
                    assert_eq!(w.len(), xs.len());
                    assert_eq!(
                        w.median().map(f64::to_bits),
                        stats::median(&xs).map(f64::to_bits),
                        "median cap={cap} i={i}"
                    );
                    assert_eq!(
                        w.mad().map(f64::to_bits),
                        stats::mad(&xs).map(f64::to_bits),
                        "mad cap={cap} i={i}"
                    );
                    assert_eq!(
                        w.mean().map(f64::to_bits),
                        stats::mean(&xs).map(f64::to_bits),
                        "mean cap={cap} i={i}"
                    );
                    assert_eq!(
                        w.std_dev().map(f64::to_bits),
                        stats::std_dev(&xs).map(f64::to_bits),
                        "std_dev cap={cap} i={i}"
                    );
                    let naive = xs.iter().map(|x| x.abs()).fold(0.0, f64::max);
                    assert_eq!(w.max_abs().to_bits(), naive.to_bits(), "max_abs");
                }
            }
        }
    }

    #[test]
    fn eviction_keeps_only_the_newest_cap_values() {
        let mut w = SortedWindow::new(3);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(v);
        }
        assert_eq!(collected(&w), vec![3.0, 4.0, 5.0]);
        assert_eq!(w.front(), Some(3.0));
        assert_eq!(w.median(), Some(4.0));
    }

    #[test]
    fn duplicate_values_cancel_correctly() {
        // Push/evict the same value repeatedly between queries: the
        // pending-cancellation path must keep multiset counts right.
        let mut w = SortedWindow::new(4);
        for _ in 0..3 {
            w.push(7.0);
        }
        w.push(1.0);
        assert_eq!(w.median(), Some(7.0));
        for _ in 0..4 {
            w.push(7.0); // evicts the three 7.0s and the 1.0
        }
        assert_eq!(w.median(), Some(7.0));
        assert_eq!(w.mad(), Some(0.0));
        w.push(-9.0);
        w.push(-9.0);
        assert_eq!(collected(&w), vec![7.0, 7.0, -9.0, -9.0]);
        assert_eq!(w.median(), Some((-9.0 + 7.0) / 2.0));
        assert_eq!(w.max_abs(), 9.0);
    }

    #[test]
    fn empty_window_queries() {
        let mut w = SortedWindow::new(5);
        assert!(w.is_empty());
        assert_eq!(w.median(), None);
        assert_eq!(w.mad(), None);
        assert_eq!(w.mean(), None);
        assert_eq!(w.std_dev(), None);
        assert_eq!(w.max_abs(), 0.0);
        assert_eq!(w.front(), None);
    }

    #[test]
    fn capacity_one_window() {
        let mut w = SortedWindow::new(1);
        w.push(5.0);
        w.push(-3.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.median(), Some(-3.0));
        assert_eq!(w.mad(), Some(0.0));
        assert_eq!(w.max_abs(), 3.0);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = SortedWindow::new(8);
        for v in pseudo_stream(20) {
            a.push(v);
        }
        let _ = a.median(); // force a merge so clone copies a mixed state
        let mut b = a.clone();
        let before = a.median();
        b.push(1e6);
        assert_eq!(a.median(), before);
        assert_ne!(b.max_abs(), a.max_abs());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SortedWindow::new(0);
    }
}
