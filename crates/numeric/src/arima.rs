//! ARIMA(p, d, q) estimation and online one-step forecasting.
//!
//! The paper's ARIMA detector is the one detector whose parameters are *not*
//! swept: "we estimate their 'best' parameters from the data, and generate
//! only one set of parameters, or one configuration" (§4.3.3), citing
//! Box–Jenkins [35] and `auto.arima` [36]. This module provides that
//! estimation pipeline from scratch:
//!
//! 1. the differencing order `d` is chosen by variance minimization
//!    (difference while it strictly shrinks the variance, up to `d = 2`),
//! 2. `(p, q)` are selected on a small grid by AIC,
//! 3. coefficients come from the Hannan–Rissanen two-stage regression
//!    (long-AR residual proxy, then least squares on lagged values and
//!    lagged residuals),
//! 4. [`ArimaState`] applies the fitted model online, point at a time.

use crate::acf::{yule_walker, yule_walker_at};
use crate::matrix::{solve, Matrix};
use std::collections::VecDeque;

/// Model orders `(p, d, q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArimaOrder {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order (0–2 supported).
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

/// A fitted ARIMA model.
#[derive(Debug, Clone)]
pub struct ArimaModel {
    /// The `(p, d, q)` orders.
    pub order: ArimaOrder,
    /// AR coefficients (lags `1..=p` of the differenced series).
    pub ar: Vec<f64>,
    /// MA coefficients (lags `1..=q` of the innovations).
    pub ma: Vec<f64>,
    /// Intercept of the differenced series.
    pub intercept: f64,
    /// Innovation variance estimate.
    pub sigma2: f64,
}

/// Applies `d` rounds of first differencing.
pub fn difference(xs: &[f64], d: usize) -> Vec<f64> {
    let mut cur = xs.to_vec();
    for _ in 0..d {
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    cur
}

fn sample_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::INFINITY;
    }
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Picks the differencing order in `0..=2`: keep differencing while it cuts
/// the sample variance by more than half. A mildly autocorrelated stationary
/// series also shrinks a little under differencing, so requiring a *large*
/// drop separates unit-root behaviour (random walks shrink by orders of
/// magnitude) from plain AR dynamics.
pub fn select_d(xs: &[f64]) -> usize {
    let mut best_d = 0usize;
    let mut best_var = sample_variance(xs);
    for d in 1..=2usize {
        let w = difference(xs, d);
        if w.len() < 8 {
            break;
        }
        let v = sample_variance(&w);
        if v < best_var * 0.5 {
            best_var = v;
            best_d = d;
        } else {
            break;
        }
    }
    best_d
}

/// The long-AR order stage 1 of Hannan–Rissanen uses for a `(p, q)`
/// candidate on a differenced series of length `n`.
fn stage1_long_order(p: usize, q: usize, n: usize) -> usize {
    ((2 * (p + q)) + 5).min(n / 4)
}

/// Stage 1 of Hannan–Rissanen: a long AR fit whose residuals proxy the
/// unobserved innovations. Depends only on `(w, long_order)`, so
/// [`auto_fit`] computes it once per distinct `long_order` instead of once
/// per `(p, q)` candidate.
fn stage1_innovations(w: &[f64], long_order: usize) -> Option<Vec<f64>> {
    let (long_ar, _) = yule_walker(w, long_order)?;
    Some(stage1_innovations_with(w, long_order, &long_ar))
}

/// The innovation-proxy residuals given an already-fitted long AR.
fn stage1_innovations_with(w: &[f64], long_order: usize, long_ar: &[f64]) -> Vec<f64> {
    let w_mean = w.iter().sum::<f64>() / w.len() as f64;
    let mut resid = vec![0.0; w.len()];
    for t in long_order..w.len() {
        let mut pred = w_mean;
        for (j, &phi) in long_ar.iter().enumerate() {
            pred += phi * (w[t - 1 - j] - w_mean);
        }
        resid[t] = w[t] - pred;
    }
    resid
}

/// Fits ARIMA(p, d, q) by Hannan–Rissanen. Returns `None` when the data is
/// too short or the regression is degenerate.
pub fn fit(xs: &[f64], order: ArimaOrder) -> Option<ArimaModel> {
    if xs.iter().any(|x| !x.is_finite()) {
        return None;
    }
    let w = difference(xs, order.d);
    let k = order.p.max(order.q);
    if w.len() < 4 * (k + 1).max(8) {
        return None;
    }
    let long_order = stage1_long_order(order.p, order.q, w.len());
    let resid = stage1_innovations(&w, long_order)?;
    fit_stage2(&w, &resid, long_order, order)
}

/// Stage 2 of Hannan–Rissanen: least squares of `w_t` on its own lags and
/// the stage-1 innovation lags.
fn fit_stage2(
    w: &[f64],
    resid: &[f64],
    long_order: usize,
    order: ArimaOrder,
) -> Option<ArimaModel> {
    let (p, q) = (order.p, order.q);
    let k = p.max(q);

    // Stage 2: regress w_t on 1, w_{t-1..t-p}, e_{t-1..t-q}. The design
    // matrix is never materialized: each row is assembled in a small stack
    // buffer and folded straight into XᵀX / Xᵀy (upper triangle, mirrored),
    // exactly the sums `least_squares` would compute — bit-identical, but
    // without allocating and re-reading a `rows × cols` matrix per
    // candidate.
    let start = long_order + k;
    let rows = w.len() - start;
    if rows < (p + q + 1) * 3 {
        return None;
    }
    let cols = 1 + p + q;
    let mut row = [0.0f64; 7]; // 1 + p + q with p, q ≤ 3
    let fill_row = |row: &mut [f64; 7], t: usize| {
        row[0] = 1.0;
        for i in 0..p {
            row[1 + i] = w[t - 1 - i];
        }
        for j in 0..q {
            row[1 + p + j] = resid[t - 1 - j];
        }
    };
    let mut xtx = vec![0.0f64; cols * cols];
    let mut xty = vec![0.0f64; cols];
    for t in start..w.len() {
        fill_row(&mut row, t);
        let yr = w[t];
        for i in 0..cols {
            let xi = row[i];
            for j in i..cols {
                xtx[i * cols + j] += xi * row[j];
            }
            xty[i] += xi * yr;
        }
    }
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
        // Tiny ridge keeps near-collinear regressors solvable (matches
        // `least_squares`).
        xtx[i * cols + i] += 1e-8;
    }
    let beta = solve(&Matrix::from_rows(cols, cols, xtx), &xty)?;
    if beta.iter().any(|b| !b.is_finite()) {
        return None;
    }
    let intercept = beta[0];
    let ar = beta[1..1 + p].to_vec();
    let ma = beta[1 + p..].to_vec();

    // Innovation variance from the stage-2 fit residuals.
    let mut sse = 0.0;
    for t in start..w.len() {
        fill_row(&mut row, t);
        let pred: f64 = row[..cols].iter().zip(&beta).map(|(a, b)| a * b).sum();
        sse += (w[t] - pred) * (w[t] - pred);
    }
    let sigma2 = (sse / rows as f64).max(1e-300);
    Some(ArimaModel {
        order,
        ar,
        ma,
        intercept,
        sigma2,
    })
}

/// Estimates the "best" ARIMA model from the data: `d` by variance
/// minimization, `(p, q) ∈ [0, 3]²` (not both zero) by AIC. Returns `None`
/// when nothing fits.
pub fn auto_fit(xs: &[f64]) -> Option<ArimaModel> {
    if xs.iter().any(|x| !x.is_finite()) {
        return None;
    }
    let d = select_d(xs);
    let w = difference(xs, d);
    let w_len = w.len() as f64;
    // Stage 1 depends only on the long-AR order, and the 15 `(p, q)`
    // candidates share just 6 distinct values of it: one Durbin–Levinson
    // sweep serves every order, and one innovation-proxy pass serves every
    // candidate sharing a long order. Both reuses are bit-identical to
    // calling `fit` per candidate.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    let mut orders: Vec<usize> = Vec::new();
    for p in 0..=3usize {
        for q in 0..=3usize {
            if p == 0 && q == 0 {
                continue;
            }
            let k = p.max(q);
            if w.len() < 4 * (k + 1).max(8) {
                continue;
            }
            let long_order = stage1_long_order(p, q, w.len());
            candidates.push((p, q, long_order));
            if !orders.contains(&long_order) {
                orders.push(long_order);
            }
        }
    }
    orders.sort_unstable();
    let long_ars = yule_walker_at(&w, &orders)?;
    let resids: Vec<Vec<f64>> = orders
        .iter()
        .zip(&long_ars)
        .map(|(&lo, ar)| stage1_innovations_with(&w, lo, ar))
        .collect();
    let mut best: Option<(f64, ArimaModel)> = None;
    for (p, q, long_order) in candidates {
        let resid = &resids[orders
            .binary_search(&long_order)
            .expect("order was collected")];
        if let Some(model) = fit_stage2(&w, resid, long_order, ArimaOrder { p, d, q }) {
            let aic = w_len * model.sigma2.ln() + 2.0 * (p + q + 1) as f64;
            if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                best = Some((aic, model));
            }
        }
    }
    best.map(|(_, m)| m)
}

/// Online applicator of a fitted [`ArimaModel`]: feed raw points, get the
/// one-step-ahead forecast made *before* each point arrived.
#[derive(Debug, Clone)]
pub struct ArimaState {
    model: ArimaModel,
    /// Last `d` raw values, most recent last (for undifferencing).
    raw_tail: VecDeque<f64>,
    /// Differenced history, most recent last.
    w_hist: VecDeque<f64>,
    /// Innovation history, most recent last.
    e_hist: VecDeque<f64>,
}

impl ArimaState {
    /// Wraps a fitted model for online forecasting.
    ///
    /// # Panics
    ///
    /// Panics if `model.order.d > 2`.
    pub fn new(model: ArimaModel) -> Self {
        assert!(model.order.d <= 2, "only d <= 2 supported");
        Self {
            model,
            raw_tail: VecDeque::new(),
            w_hist: VecDeque::new(),
            e_hist: VecDeque::new(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &ArimaModel {
        &self.model
    }

    /// Forecast of the differenced series's next value, or `None` until
    /// enough history has accumulated.
    fn forecast_w(&self) -> Option<f64> {
        let ArimaModel {
            ref ar,
            ref ma,
            intercept,
            ..
        } = self.model;
        if self.w_hist.len() < ar.len() || self.e_hist.len() < ma.len() {
            return None;
        }
        let mut f = intercept;
        for (i, phi) in ar.iter().enumerate() {
            f += phi * self.w_hist[self.w_hist.len() - 1 - i];
        }
        for (j, theta) in ma.iter().enumerate() {
            f += theta * self.e_hist[self.e_hist.len() - 1 - j];
        }
        Some(f)
    }

    /// Forecast of the next *raw* value, or `None` during warm-up or when
    /// the recursion has become non-finite (an unstable fit).
    pub fn next_forecast(&self) -> Option<f64> {
        let d = self.model.order.d;
        if self.raw_tail.len() < d {
            return None;
        }
        let fw = self.forecast_w().filter(|f| f.is_finite())?;
        Some(match d {
            0 => fw,
            1 => fw + self.raw_tail[self.raw_tail.len() - 1],
            2 => {
                let n = self.raw_tail.len();
                fw + 2.0 * self.raw_tail[n - 1] - self.raw_tail[n - 2]
            }
            _ => unreachable!("d <= 2 enforced in new()"),
        })
    }

    /// Feeds the next raw point; returns the forecast that had been made for
    /// it (or `None` while warming up).
    pub fn observe(&mut self, x: f64) -> Option<f64> {
        let d = self.model.order.d;
        let forecast = self.next_forecast();

        // Compute the new differenced value once enough raw history exists.
        let w_new = match d {
            0 => Some(x),
            1 => (!self.raw_tail.is_empty()).then(|| x - self.raw_tail[self.raw_tail.len() - 1]),
            2 => (self.raw_tail.len() >= 2).then(|| {
                let n = self.raw_tail.len();
                x - 2.0 * self.raw_tail[n - 1] + self.raw_tail[n - 2]
            }),
            _ => unreachable!(),
        };

        if let Some(w) = w_new {
            let e = match self.forecast_w() {
                Some(fw) => w - fw,
                None => 0.0,
            };
            self.w_hist.push_back(w);
            self.e_hist.push_back(e);
            let keep_w = self.model.ar.len().max(1);
            let keep_e = self.model.ma.len().max(1);
            while self.w_hist.len() > keep_w {
                self.w_hist.pop_front();
            }
            while self.e_hist.len() > keep_e {
                self.e_hist.pop_front();
            }
        }

        self.raw_tail.push_back(x);
        while self.raw_tail.len() > d.max(1) {
            self.raw_tail.pop_front();
        }
        forecast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(state: &mut u64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            acc += (*state >> 11) as f64 / (1u64 << 53) as f64;
        }
        acc - 6.0
    }

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + noise(&mut s);
                x
            })
            .collect()
    }

    #[test]
    fn difference_basics() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 1), vec![2.0, 3.0, 4.0]);
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 2), vec![1.0, 1.0]);
        assert_eq!(difference(&[5.0], 0), vec![5.0]);
    }

    #[test]
    fn select_d_zero_for_stationary() {
        let xs = ar1(0.5, 3000, 42);
        assert_eq!(select_d(&xs), 0);
    }

    #[test]
    fn select_d_one_for_random_walk() {
        let mut s = 7u64;
        let mut walk = vec![0.0];
        for _ in 0..3000 {
            let last = *walk.last().unwrap();
            walk.push(last + noise(&mut s));
        }
        assert_eq!(select_d(&walk), 1);
    }

    #[test]
    fn fit_recovers_ar1_coefficient() {
        let xs = ar1(0.6, 20_000, 11);
        let m = fit(&xs, ArimaOrder { p: 1, d: 0, q: 0 }).unwrap();
        assert!((m.ar[0] - 0.6).abs() < 0.05, "ar {}", m.ar[0]);
        assert!((m.sigma2 - 1.0).abs() < 0.15, "sigma2 {}", m.sigma2);
    }

    #[test]
    fn fit_rejects_short_series() {
        assert!(fit(&[1.0; 10], ArimaOrder { p: 3, d: 0, q: 3 }).is_none());
    }

    #[test]
    fn auto_fit_picks_reasonable_model_for_ar1() {
        let xs = ar1(0.7, 8000, 3);
        let m = auto_fit(&xs).unwrap();
        assert_eq!(m.order.d, 0);
        assert!(m.order.p >= 1);
        // One-step forecasts should beat the naive mean forecast.
        let mut state = ArimaState::new(m);
        let test = ar1(0.7, 4000, 99);
        let mut sse_model = 0.0;
        let mut sse_mean = 0.0;
        let mut n = 0;
        for &x in &test {
            if let Some(f) = state.observe(x) {
                sse_model += (x - f) * (x - f);
                sse_mean += x * x; // process mean is 0
                n += 1;
            }
        }
        assert!(n > 3000);
        assert!(
            sse_model < 0.8 * sse_mean,
            "model {sse_model} vs mean {sse_mean}"
        );
    }

    #[test]
    fn state_tracks_linear_trend_with_d1() {
        // Deterministic ramp: ARIMA(1,1,0)-ish should forecast it closely.
        let xs: Vec<f64> = (0..200).map(|i| 3.0 * i as f64).collect();
        let model = ArimaModel {
            order: ArimaOrder { p: 1, d: 1, q: 0 },
            ar: vec![0.0],
            ma: vec![],
            intercept: 3.0,
            sigma2: 1.0,
        };
        let mut st = ArimaState::new(model);
        let mut errs = Vec::new();
        for &x in &xs {
            if let Some(f) = st.observe(x) {
                errs.push((f - x).abs());
            }
        }
        assert!(!errs.is_empty());
        let late = &errs[errs.len() / 2..];
        assert!(late.iter().cloned().fold(0.0, f64::max) < 1e-9);
    }

    #[test]
    fn state_warmup_returns_none() {
        let model = ArimaModel {
            order: ArimaOrder { p: 2, d: 1, q: 1 },
            ar: vec![0.1, 0.1],
            ma: vec![0.1],
            intercept: 0.0,
            sigma2: 1.0,
        };
        let mut st = ArimaState::new(model);
        assert_eq!(st.observe(1.0), None);
        assert_eq!(st.observe(2.0), None);
    }
}
