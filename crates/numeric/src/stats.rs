//! Basic statistics: moments, order statistics, MAD, Welford online moments.
//!
//! `NaN` inputs are the caller's responsibility unless a function documents
//! otherwise — the detector layer filters missing points before reaching
//! these primitives.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (average of the two middle elements for even lengths).
/// Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Median absolute deviation around the median, scaled by 1.4826 so that it
/// estimates σ for Gaussian data. The paper's MAD detector variants (§5.2)
/// use this to stay robust to dirty data [3, 15].
pub fn mad(xs: &[f64]) -> Option<f64> {
    let med = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations).map(|m| m * 1.4826)
}

/// Linear-interpolated quantile, `q` in `[0, 1]`. Returns `None` for an
/// empty slice or out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// Detectors that maintain Gaussian baselines over sliding windows use this
/// to avoid re-summing the window on every point.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Current population variance, or `None` before any observation.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Current population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn mad_estimates_sigma_for_symmetric_data() {
        // MAD of {1..9} around median 5 is 2; scaled: 2.9652.
        let xs: Vec<f64> = (1..=9).map(f64::from).collect();
        assert!((mad(&xs).unwrap() - 2.0 * 1.4826).abs() < 1e-12);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let clean: Vec<f64> = (1..=9).map(f64::from).collect();
        let mut dirty = clean.clone();
        dirty[8] = 1e9;
        // Std blows up, MAD barely moves.
        assert!(std_dev(&dirty).unwrap() > 1e6);
        assert!((mad(&dirty).unwrap() - mad(&clean).unwrap()).abs() < 1.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(40.0));
        assert_eq!(quantile(&xs, 0.5), Some(25.0));
        assert_eq!(quantile(&xs, 2.0), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.variance().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
    }
}
