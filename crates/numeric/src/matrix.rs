//! A small dense row-major matrix with the linear algebra the detectors and
//! learners need: products, transpose, and linear solves via Gaussian
//! elimination with partial pivoting.

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied out.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * out.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// The raw row-major backing data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// Solves the square system `a x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` if `a` is (numerically) singular.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "solve requires a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs dimension mismatch");
    // A system contaminated by non-finite values has no trustworthy
    // solution; report it as singular rather than panicking mid-pivot.
    if a.data().iter().chain(b).any(|v| !v.is_finite()) {
        return None;
    }
    let n = a.rows();
    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .expect("NaN in solve")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        // Eliminate below.
        for r in col + 1..n {
            let f = m[r][col] / m[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..=n {
                m[r][c] -= f * m[col][c];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = m[r][n];
        for c in r + 1..n {
            acc -= m[r][c] * x[c];
        }
        x[r] = acc / m[r][r];
    }
    Some(x)
}

/// Ordinary least squares: finds `beta` minimizing `||X beta − y||²` via the
/// normal equations with a small ridge term for conditioning. Returns `None`
/// when the system is degenerate.
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`.
pub fn least_squares(x: &Matrix, y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(y.len(), x.rows(), "dimension mismatch");
    let p = x.cols();
    // Accumulate the upper triangle of XᵀX and all of Xᵀy in one streaming
    // pass over the rows of X: half the products of a transpose-and-matmul,
    // no transposed copy, and sequential row-major access. The row-ascending
    // accumulation order makes every entry bit-identical to the naive
    // `Xᵀ · X` formulation.
    let mut xtx = vec![0.0f64; p * p];
    let mut xty = vec![0.0f64; p];
    for (r, &yr) in y.iter().enumerate() {
        let row = x.row(r);
        for (i, &xi) in row.iter().enumerate() {
            for (j, &xj) in row.iter().enumerate().skip(i) {
                xtx[i * p + j] += xi * xj;
            }
            xty[i] += xi * yr;
        }
    }
    for i in 0..p {
        for j in 0..i {
            xtx[i * p + j] = xtx[j * p + i];
        }
        // Tiny ridge keeps near-collinear detector features solvable.
        xtx[i * p + i] += 1e-8;
    }
    solve(&Matrix::from_rows(p, p, xtx), &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_row_col() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col(2), vec![0.0, 5.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_rows(2, 2, vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(2, 2, vec![19., 22., 43., 50.]));
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(2, 3, vec![1., 0., 2., 0., 1., 3.]);
        assert_eq!(a.matvec(&[1.0, 2.0, 3.0]), vec![7.0, 11.0]);
    }

    #[test]
    fn solve_known_system() {
        // x + y = 3; 2x - y = 0 => x = 1, y = 2.
        let a = Matrix::from_rows(2, 2, vec![1., 1., 2., -1.]);
        let x = solve(&a, &[3.0, 0.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_with_nan_returns_none() {
        let a = Matrix::from_rows(2, 2, vec![1., f64::NAN, 0., 1.]);
        assert_eq!(solve(&a, &[1.0, 1.0]), None);
        let b = Matrix::from_rows(1, 1, vec![1.0]);
        assert_eq!(solve(&b, &[f64::INFINITY]), None);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(2, 2, vec![1., 2., 2., 4.]);
        assert_eq!(solve(&a, &[1.0, 2.0]), None);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0., 1., 1., 0.]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2x + 1 with exact data.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut m = Matrix::zeros(4, 2);
        for (i, &x) in xs.iter().enumerate() {
            m.set(i, 0, 1.0);
            m.set(i, 1, x);
        }
        let y: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let beta = least_squares(&m, &y).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-4);
        assert!((beta[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(2, 2, vec![3., 0., 0., 4.]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
