//! Haar wavelet multiresolution analysis (MRA).
//!
//! The paper's wavelet detector (Barford et al. [12], Table 3) separates a
//! trailing window of the signal into *low*, *mid* and *high* frequency
//! bands and scores how unusual the current point's band content is. The
//! substrate here is a Haar MRA: a perfect-reconstruction additive split
//!
//! `x = approx_L + detail_L + detail_{L-1} + … + detail_1`
//!
//! where `detail_1` holds the finest (highest-frequency) structure.
//! Arbitrary input lengths are handled by edge-replication padding to the
//! next power of two; outputs are truncated back, preserving additivity
//! pointwise.

/// The additive multiresolution analysis of a signal.
#[derive(Debug, Clone)]
pub struct Mra {
    /// `details[l]` is the reconstructed detail at level `l + 1`
    /// (level 1 = finest/highest frequency). Same length as the input.
    pub details: Vec<Vec<f64>>,
    /// Reconstructed approximation at the coarsest level (lowest frequency).
    pub approx: Vec<f64>,
}

impl Mra {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Sum of the detail bands for levels in `range` (1-based, inclusive),
    /// optionally adding the approximation — a frequency-band extraction.
    pub fn band(&self, first_level: usize, last_level: usize, include_approx: bool) -> Vec<f64> {
        let n = self.approx.len();
        let mut out = vec![0.0; n];
        for l in first_level..=last_level.min(self.details.len()) {
            for (o, d) in out.iter_mut().zip(&self.details[l - 1]) {
                *o += d;
            }
        }
        if include_approx {
            for (o, a) in out.iter_mut().zip(&self.approx) {
                *o += a;
            }
        }
        out
    }
}

fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// One forward Haar step: pairs -> (averages, differences), orthonormal.
fn haar_step(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let half = xs.len() / 2;
    let mut a = Vec::with_capacity(half);
    let mut d = Vec::with_capacity(half);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    for i in 0..half {
        a.push((xs[2 * i] + xs[2 * i + 1]) * s);
        d.push((xs[2 * i] - xs[2 * i + 1]) * s);
    }
    (a, d)
}

/// Inverse of [`haar_step`].
fn haar_unstep(a: &[f64], d: &[f64]) -> Vec<f64> {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let mut out = Vec::with_capacity(a.len() * 2);
    for i in 0..a.len() {
        out.push((a[i] + d[i]) * s);
        out.push((a[i] - d[i]) * s);
    }
    out
}

/// Computes the Haar MRA of `xs` down to `levels` levels (capped by the
/// signal length). Returns bands each as long as `xs`.
///
/// # Panics
///
/// Panics if `xs` is empty or `levels == 0`.
pub fn mra_haar(xs: &[f64], levels: usize) -> Mra {
    assert!(!xs.is_empty(), "empty signal");
    assert!(levels > 0, "need at least one level");
    let n = xs.len();
    let padded_len = next_pow2(n);
    let max_levels = padded_len.trailing_zeros() as usize;
    let levels = levels.min(max_levels.max(1));

    // Edge-replication pad.
    let mut padded = xs.to_vec();
    padded.resize(padded_len, *xs.last().expect("non-empty"));

    // Forward transform, keeping each level's detail coefficients.
    let mut approx = padded;
    let mut detail_coeffs: Vec<Vec<f64>> = Vec::with_capacity(levels);
    for _ in 0..levels {
        let (a, d) = haar_step(&approx);
        detail_coeffs.push(d);
        approx = a;
    }

    // Reconstruct each band independently (zero all other coefficients).
    let reconstruct = |level_idx: Option<usize>, approx_in: &[f64]| -> Vec<f64> {
        // Walk back up from the coarsest level.
        let mut cur: Vec<f64> = match level_idx {
            None => approx_in.to_vec(),
            Some(_) => vec![0.0; approx_in.len()],
        };
        for l in (0..levels).rev() {
            let d: Vec<f64> = if level_idx == Some(l) {
                detail_coeffs[l].clone()
            } else {
                vec![0.0; detail_coeffs[l].len()]
            };
            cur = haar_unstep(&cur, &d);
        }
        cur.truncate(n);
        cur
    };

    let details: Vec<Vec<f64>> = (0..levels).map(|l| reconstruct(Some(l), &approx)).collect();
    let approx_band = reconstruct(None, &approx);
    Mra {
        details,
        approx: approx_band,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn perfect_reconstruction_pow2() {
        let xs: Vec<f64> = (0..16).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mra = mra_haar(&xs, 3);
        let sum = mra.band(1, mra.levels(), true);
        assert_vec_close(&sum, &xs, 1e-10);
    }

    #[test]
    fn perfect_reconstruction_odd_length() {
        let xs: Vec<f64> = (0..13).map(|i| (i as f64).sin() * 3.0 + i as f64).collect();
        let mra = mra_haar(&xs, 4);
        let sum = mra.band(1, mra.levels(), true);
        assert_vec_close(&sum, &xs, 1e-10);
    }

    #[test]
    fn constant_signal_is_pure_approximation() {
        let xs = vec![5.0; 32];
        let mra = mra_haar(&xs, 4);
        for d in &mra.details {
            for &v in d {
                assert!(v.abs() < 1e-10);
            }
        }
        assert_vec_close(&mra.approx, &xs, 1e-10);
    }

    #[test]
    fn alternating_signal_lives_in_finest_detail() {
        let xs: Vec<f64> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mra = mra_haar(&xs, 4);
        // Mean is zero; everything is in detail level 1.
        assert_vec_close(&mra.details[0], &xs, 1e-10);
        for d in &mra.details[1..] {
            for &v in d {
                assert!(v.abs() < 1e-10);
            }
        }
    }

    #[test]
    fn levels_capped_by_length() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let mra = mra_haar(&xs, 10);
        assert_eq!(mra.levels(), 2);
    }

    #[test]
    fn slow_trend_lives_in_low_band() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mra = mra_haar(&xs, 5);
        let high = mra.band(1, 1, false);
        let low = mra.band(mra.levels(), mra.levels(), true);
        let energy = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        assert!(energy(&low) > 100.0 * energy(&high));
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn empty_signal_panics() {
        let _ = mra_haar(&[], 1);
    }
}
