//! Autocorrelation, partial autocorrelation (Durbin–Levinson) and
//! Yule–Walker autoregressive fits — the estimation substrate for the ARIMA
//! detector's "estimate the best parameters from the data" step (§4.3.3).

/// Sample autocorrelation function for lags `0..=max_lag`.
/// `acf[0]` is always 1 (when variance is nonzero). Returns `None` for an
/// empty series or zero variance.
pub fn acf(xs: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let c0: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if c0 == 0.0 {
        return None;
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag.min(n - 1) {
        let c: f64 = (lag..n)
            .map(|i| (xs[i] - mean) * (xs[i - lag] - mean))
            .sum::<f64>()
            / n as f64;
        out.push(c / c0);
    }
    Some(out)
}

/// Partial autocorrelation function for lags `1..=max_lag`, computed with
/// the Durbin–Levinson recursion on the sample ACF.
pub fn pacf(xs: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let rho = acf(xs, max_lag)?;
    let max_lag = rho.len() - 1;
    if max_lag == 0 {
        return Some(Vec::new());
    }
    let mut pacf_vals = Vec::with_capacity(max_lag);
    // phi[k][j]: AR(k) coefficient j (1-based lags flattened into Vec).
    let mut phi_prev = vec![0.0; max_lag + 1];
    let mut phi_cur = vec![0.0; max_lag + 1];
    phi_prev[1] = rho[1];
    pacf_vals.push(rho[1]);
    for k in 2..=max_lag {
        let num = rho[k] - (1..k).map(|j| phi_prev[j] * rho[k - j]).sum::<f64>();
        let den = 1.0 - (1..k).map(|j| phi_prev[j] * rho[j]).sum::<f64>();
        let phi_kk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        pacf_vals.push(phi_kk);
        for j in 1..k {
            phi_cur[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
        }
        phi_cur[k] = phi_kk;
        phi_prev[..=k].copy_from_slice(&phi_cur[..=k]);
    }
    Some(pacf_vals)
}

/// Fits an AR(p) model by Yule–Walker (via Durbin–Levinson). Returns the AR
/// coefficients `phi[0..p]` (for lags 1..=p) and the innovation variance.
pub fn yule_walker(xs: &[f64], p: usize) -> Option<(Vec<f64>, f64)> {
    if p == 0 {
        let n = xs.len();
        if n == 0 {
            return None;
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        return Some((Vec::new(), var));
    }
    let rho = acf(xs, p)?;
    if rho.len() <= p {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let c0: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;

    let mut phi = vec![0.0; p + 1];
    let mut v = c0;
    phi[1] = rho[1];
    v *= 1.0 - rho[1] * rho[1];
    let mut tmp = vec![0.0; p + 1];
    for k in 2..=p {
        let num = rho[k] - (1..k).map(|j| phi[j] * rho[k - j]).sum::<f64>();
        let den_terms: f64 = (1..k).map(|j| phi[j] * rho[j]).sum();
        let den = 1.0 - den_terms;
        let phi_kk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        for j in 1..k {
            tmp[j] = phi[j] - phi_kk * phi[k - j];
        }
        tmp[k] = phi_kk;
        phi[1..=k].copy_from_slice(&tmp[1..=k]);
        v *= 1.0 - phi_kk * phi_kk;
    }
    Some((phi[1..=p].to_vec(), v.max(0.0)))
}

/// Yule–Walker AR coefficients for several orders from one Durbin–Levinson
/// sweep. `orders` must be sorted ascending, deduplicated, and ≥ 1; the
/// result holds the AR coefficients (lags `1..=order`) per requested order.
///
/// The recursion at step `k` only consumes `rho[0..=k]`, so snapshotting a
/// single sweep at each requested order is **bit-identical** to calling
/// [`yule_walker`] once per order — at one ACF pass instead of one per
/// order (the ARIMA grid search's stage-1 fits share this sweep).
///
/// # Panics
///
/// Panics if `orders` is not strictly ascending or contains 0.
pub fn yule_walker_at(xs: &[f64], orders: &[usize]) -> Option<Vec<Vec<f64>>> {
    assert!(
        orders.windows(2).all(|w| w[0] < w[1]) && orders.first() != Some(&0),
        "orders must be strictly ascending and nonzero"
    );
    let &max_p = orders.iter().max()?;
    let rho = acf(xs, max_p)?;
    if rho.len() <= max_p {
        return None;
    }
    let mut out = Vec::with_capacity(orders.len());
    let mut phi = vec![0.0; max_p + 1];
    let mut tmp = vec![0.0; max_p + 1];
    let mut next = 0usize;
    phi[1] = rho[1];
    if orders[next] == 1 {
        out.push(phi[1..=1].to_vec());
        next += 1;
    }
    for k in 2..=max_p {
        let num = rho[k] - (1..k).map(|j| phi[j] * rho[k - j]).sum::<f64>();
        let den_terms: f64 = (1..k).map(|j| phi[j] * rho[j]).sum();
        let den = 1.0 - den_terms;
        let phi_kk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        for j in 1..k {
            tmp[j] = phi[j] - phi_kk * phi[k - j];
        }
        tmp[k] = phi_kk;
        phi[1..=k].copy_from_slice(&tmp[1..=k]);
        if next < orders.len() && orders[next] == k {
            out.push(phi[1..=k].to_vec());
            next += 1;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic AR(1) driver with pseudo-random innovations.
    fn ar1_series(phi: f64, n: usize) -> Vec<f64> {
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..n {
            // xorshift noise mapped to roughly N(0,1) via sum of uniforms.
            let mut acc = 0.0;
            for _ in 0..12 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                acc += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            let eps = acc - 6.0;
            x = phi * x + eps;
            xs.push(x);
        }
        xs
    }

    #[test]
    fn acf_lag0_is_one() {
        let xs = ar1_series(0.5, 500);
        let a = acf(&xs, 5).unwrap();
        assert!((a[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        let xs = ar1_series(0.7, 20_000);
        let a = acf(&xs, 3).unwrap();
        assert!((a[1] - 0.7).abs() < 0.05, "lag1 {}", a[1]);
        assert!((a[2] - 0.49).abs() < 0.07, "lag2 {}", a[2]);
    }

    #[test]
    fn acf_rejects_constant() {
        assert_eq!(acf(&[3.0; 10], 2), None);
        assert_eq!(acf(&[], 2), None);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag1() {
        let xs = ar1_series(0.7, 20_000);
        let p = pacf(&xs, 4).unwrap();
        assert!((p[0] - 0.7).abs() < 0.05, "pacf1 {}", p[0]);
        for (i, &v) in p[1..].iter().enumerate() {
            assert!(v.abs() < 0.06, "pacf lag {} = {v}", i + 2);
        }
    }

    #[test]
    fn yule_walker_recovers_ar1_coefficient() {
        let xs = ar1_series(0.6, 20_000);
        let (phi, var) = yule_walker(&xs, 1).unwrap();
        assert!((phi[0] - 0.6).abs() < 0.05, "phi {}", phi[0]);
        assert!(var > 0.0);
    }

    #[test]
    fn yule_walker_higher_order_near_zero_extra_coeffs() {
        let xs = ar1_series(0.6, 20_000);
        let (phi, _) = yule_walker(&xs, 3).unwrap();
        assert!((phi[0] - 0.6).abs() < 0.06);
        assert!(phi[1].abs() < 0.06);
        assert!(phi[2].abs() < 0.06);
    }

    #[test]
    fn yule_walker_at_matches_individual_fits_bit_for_bit() {
        let xs = ar1_series(0.6, 3000);
        let orders = [1usize, 3, 7, 12];
        let multi = yule_walker_at(&xs, &orders).unwrap();
        for (&p, got) in orders.iter().zip(&multi) {
            let (solo, _) = yule_walker(&xs, p).unwrap();
            assert_eq!(got.len(), p);
            for (a, b) in got.iter().zip(&solo) {
                assert_eq!(a.to_bits(), b.to_bits(), "order {p}");
            }
        }
    }

    #[test]
    fn yule_walker_order_zero_returns_variance() {
        let xs = [1.0, 3.0, 1.0, 3.0];
        let (phi, var) = yule_walker(&xs, 0).unwrap();
        assert!(phi.is_empty());
        assert!((var - 1.0).abs() < 1e-12);
    }
}
