//! The single thread-count knob shared by every parallel site.
//!
//! Both the extraction worker pool (`opprentice::features`) and the random
//! forest trainer resolve their parallelism through
//! [`configured_threads`], so one environment variable —
//! `OPPRENTICE_THREADS` — controls the whole process. Parallelism is a
//! scheduling choice only: every parallel path in this workspace is
//! bit-identical across thread counts, so the knob trades latency for CPU,
//! never results.

/// The environment variable naming the process-wide thread budget.
pub const THREADS_ENV: &str = "OPPRENTICE_THREADS";

/// The number of worker threads parallel sites should use.
///
/// Reads `OPPRENTICE_THREADS` (a positive integer); when unset or
/// unparsable, falls back to [`std::thread::available_parallelism`]. Always
/// returns at least 1.
pub fn configured_threads() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref())
}

fn parse_threads(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_value_wins() {
        assert_eq!(parse_threads(Some("3")), 3);
        assert_eq!(parse_threads(Some(" 12 ")), 12);
        assert_eq!(parse_threads(Some("1")), 1);
    }

    #[test]
    fn invalid_values_fall_back_to_hardware() {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        for bad in [None, Some(""), Some("0"), Some("-2"), Some("many")] {
            assert_eq!(parse_threads(bad), hw, "{bad:?}");
        }
    }

    #[test]
    fn always_at_least_one() {
        assert!(configured_threads() >= 1);
    }
}
