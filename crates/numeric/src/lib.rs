//! Hand-rolled numerics for the Opprentice reproduction.
//!
//! The original Opprentice prototype (§5) leaned on Python/R libraries for
//! its detectors — `scikit-learn`, R's `forecast::auto.arima`, wavelet and
//! SVD packages. The Rust ecosystem offers no canonical equivalents, so this
//! crate implements the required numerical machinery from scratch:
//!
//! * [`stats`] — means, medians, MAD, quantiles and Welford online moments,
//! * [`rolling`] — sliding-window order statistics (lazy sorted ring) for
//!   the allocation-free extraction hot path,
//! * [`matrix`] — a small dense matrix with linear solves,
//! * [`parallel`] — the process-wide `OPPRENTICE_THREADS` thread budget
//!   shared by every parallel site (extraction pool, forest training),
//! * [`svd`] — one-sided Jacobi singular value decomposition,
//! * [`wavelet`] — Haar multiresolution analysis with band reconstruction,
//! * [`acf`] — autocorrelation, Durbin–Levinson PACF and Yule–Walker AR fits,
//! * [`arima`] — differencing, Hannan–Rissanen ARMA estimation and AIC order
//!   selection (the paper's "estimate their best parameters from the data",
//!   §4.3.3),
//! * [`smoothing`] — EWMA and additive Holt–Winters triple exponential
//!   smoothing,
//! * [`decompose`] — classical seasonal decomposition of a trailing window
//!   (the paper's TSD detector substrate), with a median/MAD robust variant,
//! * [`stl`] — Seasonal-Trend decomposition using Loess (Cleveland et al.),
//!   the canonical robust batch decomposition, for offline analysis and as
//!   a cross-check of the classical variant.
//!
//! Everything is deterministic, allocation-conscious and documented; no
//! `unsafe`, no external math dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Matrix/vector kernels read clearest with explicit index loops; the
// iterator rewrites clippy suggests obscure the row/column roles.
#![allow(clippy::needless_range_loop)]

pub mod acf;
pub mod arima;
pub mod decompose;
pub mod matrix;
pub mod parallel;
pub mod rolling;
pub mod smoothing;
pub mod stats;
pub mod stl;
pub mod svd;
pub mod wavelet;
