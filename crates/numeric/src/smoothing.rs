//! Exponential smoothing: plain EWMA and additive Holt–Winters.
//!
//! EWMA backs two parts of the paper: the EWMA *detector* (Table 3,
//! α ∈ {0.1 … 0.9}) and the EWMA-based *cThld prediction* of §4.5.2
//! (α = 0.8). Holt–Winters [6] is the triple exponential smoothing detector
//! with parameters {α, β, γ} sampled on {0.2, 0.4, 0.6, 0.8}³ (64 configs).

/// Exponentially weighted moving average.
///
/// `update(x)` folds an observation in; `value()` is the current smoothed
/// estimate, which doubles as the one-step-ahead prediction for the EWMA
/// detector. Larger α weights recent data more.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing constant `alpha` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self { alpha, state: None }
    }

    /// The smoothing constant.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current smoothed value (`None` before the first observation).
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Folds one observation in and returns the updated smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.state {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.state = Some(next);
        next
    }
}

/// Additive Holt–Winters triple exponential smoothing with online warm-up.
///
/// Feed points with [`HoltWinters::observe`]; it returns the one-step-ahead
/// forecast that was in effect *before* the point was folded in (`None`
/// during warm-up, which takes two full seasons — the paper's §4.3.2 allows
/// detectors to "skip the detection of the data in the warm-up window").
#[derive(Debug, Clone)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    season_len: usize,
    buffer: Vec<f64>,
    state: Option<HwState>,
}

#[derive(Debug, Clone)]
struct HwState {
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    /// Index into `seasonal` of the *next* expected slot.
    pos: usize,
}

impl HoltWinters {
    /// Creates a smoother with the given parameters and season length
    /// (in points).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside `[0, 1]` or `season_len < 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, season_len: usize) -> Self {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0, 1]");
        }
        assert!(season_len >= 2, "season_len must be at least 2");
        Self {
            alpha,
            beta,
            gamma,
            season_len,
            buffer: Vec::new(),
            state: None,
        }
    }

    /// Points required before forecasts start (two full seasons).
    pub fn warmup_len(&self) -> usize {
        2 * self.season_len
    }

    /// Feeds the next point. Returns the forecast that was made *for this
    /// point* before seeing it, or `None` while warming up.
    pub fn observe(&mut self, x: f64) -> Option<f64> {
        match &mut self.state {
            None => {
                self.buffer.push(x);
                if self.buffer.len() == self.warmup_len() {
                    self.initialize();
                }
                None
            }
            Some(state) => {
                let m = self.season_len;
                let forecast = state.level + state.trend + state.seasonal[state.pos];
                let s_old = state.seasonal[state.pos];
                let level_old = state.level;
                state.level =
                    self.alpha * (x - s_old) + (1.0 - self.alpha) * (state.level + state.trend);
                state.trend =
                    self.beta * (state.level - level_old) + (1.0 - self.beta) * state.trend;
                state.seasonal[state.pos] =
                    self.gamma * (x - state.level) + (1.0 - self.gamma) * s_old;
                state.pos = (state.pos + 1) % m;
                Some(forecast)
            }
        }
    }

    /// The forecast for the next (unseen) point, or `None` during warm-up.
    pub fn next_forecast(&self) -> Option<f64> {
        self.state
            .as_ref()
            .map(|s| s.level + s.trend + s.seasonal[s.pos])
    }

    fn initialize(&mut self) {
        let m = self.season_len;
        let s1 = &self.buffer[..m];
        let s2 = &self.buffer[m..2 * m];
        let mean1 = s1.iter().sum::<f64>() / m as f64;
        let mean2 = s2.iter().sum::<f64>() / m as f64;
        let level = mean2;
        let trend = (mean2 - mean1) / m as f64;
        let seasonal: Vec<f64> = (0..m)
            .map(|i| ((s1[i] - mean1) + (s2[i] - mean2)) / 2.0)
            .collect();
        self.state = Some(HwState {
            level,
            trend,
            seasonal,
            pos: 0,
        });
        self.buffer.clear();
        self.buffer.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_value_is_identity() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
    }

    #[test]
    fn ewma_blends_with_alpha() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        assert_eq!(e.update(10.0), 5.0);
        assert_eq!(e.update(10.0), 7.5);
    }

    #[test]
    fn ewma_alpha_one_tracks_input() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    fn ewma_alpha_zero_freezes_first_value() {
        let mut e = Ewma::new(0.0);
        e.update(7.0);
        e.update(100.0);
        assert_eq!(e.value(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(1.5);
    }

    #[test]
    fn holt_winters_warms_up_two_seasons() {
        let mut hw = HoltWinters::new(0.5, 0.5, 0.5, 4);
        for i in 0..8 {
            assert_eq!(hw.observe(i as f64), None, "point {i} should be warm-up");
        }
        assert!(hw.next_forecast().is_some());
    }

    #[test]
    fn holt_winters_tracks_pure_seasonal_signal() {
        // Period-4 signal with no trend: forecasts converge to the pattern.
        let pattern = [10.0, 20.0, 30.0, 20.0];
        let mut hw = HoltWinters::new(0.2, 0.1, 0.2, 4);
        let mut last_errors = Vec::new();
        for cycle in 0..50 {
            for &v in &pattern {
                if let Some(f) = hw.observe(v) {
                    if cycle > 40 {
                        last_errors.push((f - v).abs());
                    }
                }
            }
        }
        let max_err = last_errors.iter().cloned().fold(0.0, f64::max);
        assert!(max_err < 0.5, "max late-cycle error {max_err}");
    }

    #[test]
    fn holt_winters_tracks_trend_plus_season() {
        // Linear trend + period-6 seasonality.
        let season = [0.0, 5.0, 8.0, 5.0, 0.0, -6.0];
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 6);
        let mut errs = Vec::new();
        for t in 0..600 {
            let v = 0.05 * t as f64 + season[t % 6];
            if let Some(f) = hw.observe(v) {
                if t > 500 {
                    errs.push((f - v).abs());
                }
            }
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.6, "mean late error {mean_err}");
    }

    #[test]
    fn holt_winters_spike_produces_large_residual() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 4);
        let pattern = [10.0, 20.0, 30.0, 20.0];
        let mut resid_normal = 0.0;
        for cycle in 0..30 {
            for &v in &pattern {
                if let Some(f) = hw.observe(v) {
                    if cycle == 29 {
                        resid_normal = (f - v).abs();
                    }
                }
            }
        }
        // Inject a spike: residual should dwarf the normal one.
        let f = hw.next_forecast().unwrap();
        let spike = 100.0;
        let resid_spike = (f - spike).abs();
        assert!(resid_spike > 10.0 * (resid_normal + 1e-9));
    }

    #[test]
    #[should_panic(expected = "season_len")]
    fn holt_winters_rejects_tiny_season() {
        let _ = HoltWinters::new(0.5, 0.5, 0.5, 1);
    }
}
