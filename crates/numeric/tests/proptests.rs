//! Property-based tests for the numeric substrate.

use opprentice_numeric::matrix::{solve, Matrix};
use opprentice_numeric::stats::{mean, median, quantile, std_dev, Welford};
use opprentice_numeric::svd::svd;
use opprentice_numeric::wavelet::mra_haar;
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    /// Welford's streaming moments agree with the batch formulas.
    #[test]
    fn welford_matches_batch(xs in finite_vec(200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let scale = std_dev(&xs).unwrap().max(1.0);
        prop_assert!((w.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-6 * scale.max(mean(&xs).unwrap().abs()));
        prop_assert!((w.std_dev().unwrap() - std_dev(&xs).unwrap()).abs() < 1e-6 * scale);
    }

    /// The median is bounded by min and max and splits the data evenly.
    #[test]
    fn median_is_central(xs in finite_vec(200)) {
        let med = median(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(med >= lo && med <= hi);
        let below = xs.iter().filter(|&&x| x < med).count();
        let above = xs.iter().filter(|&&x| x > med).count();
        prop_assert!(below <= xs.len() / 2);
        prop_assert!(above <= xs.len() / 2);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantile_monotone(xs in finite_vec(100), qs in prop::collection::vec(0.0f64..=1.0, 2..10)) {
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let vals: Vec<f64> = sorted_q.iter().map(|&q| quantile(&xs, q).unwrap()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
    }

    /// Full-rank SVD reconstruction reproduces the matrix.
    #[test]
    fn svd_reconstructs(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in any::<u32>(),
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| (((i as u64 + 1) * (seed as u64 + 1)).wrapping_mul(2654435761) % 1000) as f64 / 100.0 - 5.0)
            .collect();
        let a = Matrix::from_rows(rows, cols, data);
        let d = svd(&a);
        let r = d.reconstruct(rows.min(cols));
        for i in 0..rows {
            for j in 0..cols {
                prop_assert!((a.get(i, j) - r.get(i, j)).abs() < 1e-6,
                    "({i},{j}): {} vs {}", a.get(i, j), r.get(i, j));
            }
        }
        // Singular values sorted descending and non-negative.
        for w in d.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(d.sigma.iter().all(|&s| s >= 0.0));
    }

    /// Haar MRA bands always sum back to the signal, any length.
    #[test]
    fn mra_perfect_reconstruction(xs in finite_vec(257), levels in 1usize..6) {
        let mra = mra_haar(&xs, levels);
        let sum = mra.band(1, mra.levels(), true);
        let scale = xs.iter().map(|x| x.abs()).fold(1.0, f64::max);
        for (i, (s, x)) in sum.iter().zip(&xs).enumerate() {
            prop_assert!((s - x).abs() < 1e-8 * scale, "index {i}: {s} vs {x}");
        }
    }

    /// solve() returns a genuine solution when it returns at all.
    #[test]
    fn solve_satisfies_system(
        n in 1usize..6,
        seed in any::<u32>(),
    ) {
        let data: Vec<f64> = (0..n * n)
            .map(|i| (((i as u64 + 7) * (seed as u64 + 3)).wrapping_mul(0x9E3779B97F4A7C15) % 2000) as f64 / 100.0 - 10.0)
            .collect();
        let a = Matrix::from_rows(n, n, data);
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        if let Some(x) = solve(&a, &b) {
            let ax = a.matvec(&x);
            let scale = a.frobenius_norm().max(1.0) * x.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for i in 0..n {
                prop_assert!((ax[i] - b[i]).abs() < 1e-6 * scale, "row {i}: {} vs {}", ax[i], b[i]);
            }
        }
    }
}
