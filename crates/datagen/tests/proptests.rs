//! Property-based tests for the synthetic KPI generator and the simulated
//! operator.

use opprentice_datagen::model::KpiSpec;
use opprentice_datagen::SimulatedOperator;
use opprentice_timeseries::Labels;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = KpiSpec> {
    (
        1u64..u64::MAX,  // seed
        2usize..5,       // weeks
        10.0f64..5000.0, // base
        0.0f64..0.9,     // daily amplitude
        0.0f64..0.15,    // noise
        0.0f64..0.12,    // anomaly ratio
        0.1f64..2.0,     // anomaly scale
        0.0f64..0.5,     // drift
        0.0f64..0.01,    // missing ratio
        prop::sample::select(vec![600u32, 1800, 3600]),
    )
        .prop_map(
            |(seed, weeks, base, daily_amp, noise, ratio, scale, drift, missing, interval)| {
                KpiSpec {
                    name: "prop".into(),
                    interval,
                    weeks,
                    base,
                    daily_amp,
                    weekly_amp: 0.1,
                    noise_sigma: noise,
                    burst_rate: 0.0,
                    burst_sigma: 1.0,
                    burst_scale: 0.0,
                    anomaly_ratio: ratio,
                    anomaly_scale: scale,
                    spike_bias: 0.0,
                    anomaly_drift: drift,
                    mean_anomaly_len: 6.0,
                    extreme_label_quantile: None,
                    missing_ratio: missing,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants of every generated KPI.
    #[test]
    fn generated_kpi_is_structurally_sound(spec in spec_strategy()) {
        let kpi = spec.generate();
        prop_assert_eq!(kpi.series.len(), spec.total_points());
        prop_assert_eq!(kpi.truth.len(), kpi.series.len());
        // Values non-negative or missing.
        prop_assert!(kpi.series.values().iter().all(|v| v.is_nan() || *v >= 0.0));
        // Windows sorted, disjoint, matching the point labels.
        for w in kpi.windows.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        let rebuilt = Labels::from_windows(kpi.series.len(), &kpi.windows);
        prop_assert_eq!(&rebuilt, &kpi.truth);
        // Ratio lands near the target. The injector can overshoot by the
        // final window's length, which matters on tiny series — scale the
        // slack accordingly.
        let ratio = kpi.truth.anomaly_ratio();
        let slack = 0.05 + 8.0 * spec.mean_anomaly_len / kpi.series.len() as f64;
        prop_assert!(ratio <= spec.anomaly_ratio + slack, "ratio {ratio}");
    }

    /// Identical specs generate identical KPIs; different seeds differ.
    #[test]
    fn generation_deterministic_in_seed(spec in spec_strategy()) {
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(&a.series, &b.series);
        prop_assert_eq!(&a.truth, &b.truth);
        let mut other = spec.clone();
        other.seed = spec.seed.wrapping_add(1);
        let c = other.generate();
        // Same length, different content (with overwhelming probability).
        prop_assert_eq!(c.series.len(), a.series.len());
        if spec.noise_sigma > 0.01 {
            prop_assert_ne!(&c.series, &a.series);
        }
    }

    /// The perfect operator is the identity on labels; the noisy one stays
    /// close and preserves label-vector length.
    #[test]
    fn operator_respects_truth(spec in spec_strategy()) {
        let kpi = spec.generate();
        let perfect = SimulatedOperator::perfect().label(&kpi);
        prop_assert_eq!(&perfect.labels, &kpi.truth);
        let noisy = SimulatedOperator::default().label(&kpi);
        prop_assert_eq!(noisy.labels.len(), kpi.truth.len());
        let disagree = (0..kpi.truth.len())
            .filter(|&i| noisy.labels.is_anomaly(i) != kpi.truth.is_anomaly(i))
            .count();
        prop_assert!(disagree <= kpi.truth.anomaly_count() + kpi.series.len() / 10);
        // Labeling time is positive and finite.
        prop_assert!(noisy.total_minutes >= 0.0 && noisy.total_minutes.is_finite());
    }

    /// Missing ratio tracks the spec.
    #[test]
    fn missing_ratio_tracks_spec(spec in spec_strategy()) {
        let kpi = spec.generate();
        let measured = kpi.series.missing_ratio();
        prop_assert!(measured <= spec.missing_ratio * 3.0 + 0.01, "{measured} vs {}", spec.missing_ratio);
    }
}
