//! The three studied KPIs of Table 1, as calibrated generator specs.
//!
//! | KPI | interval | length | seasonality | Cv | anomaly ratio |
//! |-----|----------|--------|-------------|------|---------------|
//! | PV  | 1 min    | 25 wk  | strong      | 0.48 | 7.8% |
//! | #SR | 1 min    | 19 wk  | weak        | 2.1  | 2.8% |
//! | SRT | 60 min   | 16 wk  | moderate    | 0.07 | 7.4% |
//!
//! PV (search page views) is a high-volume, strongly periodic series; #SR
//! (number of slow responses) is spiky with a huge dispersion; SRT (80th
//! percentile of search response time) is a tight, mildly periodic series.
//! The calibration tests in this module assert the generated data actually
//! lands in those bands.
//!
//! Because the evaluation host may be much smaller than the paper's testbed,
//! [`fast`] rescales a 1-minute spec to a 5-minute interval while keeping
//! the anomaly windows the same *duration* in wall-clock terms. The
//! experiments in `opprentice-bench` use the fast scale by default and the
//! paper scale under `--full` (see DESIGN.md §1).

use crate::model::KpiSpec;

/// Search page views: strong seasonality, Cv ≈ 0.48, 7.8% anomalies.
pub fn pv() -> KpiSpec {
    KpiSpec {
        name: "PV".into(),
        interval: 60,
        weeks: 25,
        base: 1000.0,
        daily_amp: 0.85,
        weekly_amp: 0.2,
        noise_sigma: 0.05,
        burst_rate: 0.0,
        burst_sigma: 1.0,
        burst_scale: 0.0,
        anomaly_ratio: 0.078,
        anomaly_scale: 0.6,
        spike_bias: 0.0,
        anomaly_drift: 0.35,
        mean_anomaly_len: 30.0,
        extreme_label_quantile: None,
        missing_ratio: 0.001,
        seed: 0x5056_0001,
    }
}

/// Number of slow responses: weak seasonality, Cv ≈ 2.1, 2.8% anomalies.
pub fn sr() -> KpiSpec {
    KpiSpec {
        name: "#SR".into(),
        interval: 60,
        weeks: 19,
        base: 50.0,
        daily_amp: 0.15,
        weekly_amp: 0.05,
        noise_sigma: 0.3,
        burst_rate: 0.07,
        burst_sigma: 0.9,
        burst_scale: 6.0,
        anomaly_ratio: 0.012,
        anomaly_scale: 8.0,
        spike_bias: 0.8,
        anomaly_drift: 0.35,
        mean_anomaly_len: 15.0,
        extreme_label_quantile: Some(0.985),
        missing_ratio: 0.002,
        seed: 0x5352_0002,
    }
}

/// 80th-percentile search response time: moderate seasonality, Cv ≈ 0.07,
/// 7.4% anomalies, 60-minute interval.
pub fn srt() -> KpiSpec {
    KpiSpec {
        name: "SRT".into(),
        interval: 3600,
        weeks: 16,
        base: 500.0,
        daily_amp: 0.15,
        weekly_amp: 0.03,
        noise_sigma: 0.025,
        burst_rate: 0.0,
        burst_sigma: 1.0,
        burst_scale: 0.0,
        anomaly_ratio: 0.074,
        anomaly_scale: 0.16,
        spike_bias: 0.0,
        anomaly_drift: 0.35,
        mean_anomaly_len: 4.0,
        extreme_label_quantile: None,
        missing_ratio: 0.001,
        seed: 0x5354_0003,
    }
}

/// The three studied KPIs, in the paper's order.
pub fn all() -> Vec<KpiSpec> {
    vec![pv(), sr(), srt()]
}

/// Rescales a spec to a coarser interval for resource-constrained runs,
/// keeping anomaly-window *durations* and all relative shape parameters.
/// Specs already at or above `interval` are returned unchanged.
pub fn fast(spec: &KpiSpec, interval: u32) -> KpiSpec {
    if spec.interval >= interval {
        return spec.clone();
    }
    let factor = f64::from(interval) / f64::from(spec.interval);
    let mut out = spec.clone();
    out.interval = interval;
    out.mean_anomaly_len = (spec.mean_anomaly_len / factor).max(2.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprentice_timeseries::stats::{self, Seasonality};

    #[test]
    fn table1_intervals_and_lengths() {
        assert_eq!(pv().interval, 60);
        assert_eq!(pv().weeks, 25);
        assert_eq!(sr().interval, 60);
        assert_eq!(sr().weeks, 19);
        assert_eq!(srt().interval, 3600);
        assert_eq!(srt().weeks, 16);
    }

    #[test]
    fn pv_calibration() {
        // Fast scale keeps the distributional shape; assert on it to keep
        // the test quick. Cv band around 0.48, strong seasonality.
        let kpi = fast(&pv(), 300).generate();
        let cv = stats::coefficient_of_variation(&kpi.series).unwrap();
        assert!((0.3..0.7).contains(&cv), "PV Cv {cv}");
        assert_eq!(
            stats::seasonality_band(&kpi.series),
            Some(Seasonality::Strong)
        );
        let ratio = kpi.truth.anomaly_ratio();
        assert!((ratio - 0.078).abs() < 0.02, "PV anomaly ratio {ratio}");
    }

    #[test]
    fn sr_calibration() {
        let kpi = fast(&sr(), 300).generate();
        let cv = stats::coefficient_of_variation(&kpi.series).unwrap();
        assert!((1.4..2.8).contains(&cv), "#SR Cv {cv}");
        assert_eq!(
            stats::seasonality_band(&kpi.series),
            Some(Seasonality::Weak)
        );
        let ratio = kpi.truth.anomaly_ratio();
        assert!((ratio - 0.028).abs() < 0.015, "#SR anomaly ratio {ratio}");
    }

    #[test]
    fn srt_calibration() {
        let kpi = srt().generate(); // already coarse (60-minute interval)
        let cv = stats::coefficient_of_variation(&kpi.series).unwrap();
        assert!((0.04..0.12).contains(&cv), "SRT Cv {cv}");
        assert_eq!(
            stats::seasonality_band(&kpi.series),
            Some(Seasonality::Moderate)
        );
        let ratio = kpi.truth.anomaly_ratio();
        assert!((ratio - 0.074).abs() < 0.02, "SRT anomaly ratio {ratio}");
    }

    #[test]
    fn fast_preserves_duration_of_anomalies() {
        let full = pv();
        let f = fast(&full, 300);
        assert_eq!(f.interval, 300);
        // 30 points at 1 min = 30 min = 6 points at 5 min.
        assert!((f.mean_anomaly_len - 6.0).abs() < 1e-9);
        // Coarsening an already-coarse spec is a no-op.
        let unchanged = fast(&srt(), 300);
        assert_eq!(unchanged.interval, srt().interval);
    }

    #[test]
    fn full_scale_pv_generates() {
        let kpi = pv().generate();
        assert_eq!(kpi.series.len(), 25 * 7 * 1440);
        assert_eq!(kpi.series.whole_weeks(), 25);
    }
}
