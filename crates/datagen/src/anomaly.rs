//! Injection of the paper's anomaly archetypes with exact ground truth.
//!
//! §2.1: "KPI time series data can also present several unexpected patterns
//! (e.g., jitters, slow ramp-ups, sudden spikes and dips) in different
//! severity levels, such as a sudden drop by 20% or 50%." The injector
//! reproduces exactly that vocabulary, drawing windows until a target
//! anomalous-point ratio is reached, so the training set contains the
//! diverse anomaly kinds Opprentice's incremental retraining is meant to
//! accumulate.

use crate::randutil;
use opprentice_timeseries::{AnomalyWindow, Labels};
use rand::Rng;

/// The anomaly archetypes named in §2.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Sudden upward spike.
    SpikeUp,
    /// Sudden dip ("a sudden drop by 20% or 50%").
    Dip,
    /// A sustained shift of the level.
    LevelShift,
    /// A slow ramp-up over the window.
    SlowRamp,
    /// A burst of jitter (rapid oscillation) — what the search engine's own
    /// "MA of diff" detector was built to find (§5.2).
    Jitter,
}

impl AnomalyKind {
    /// All archetypes, in a fixed order.
    pub const ALL: [AnomalyKind; 5] = [
        AnomalyKind::SpikeUp,
        AnomalyKind::Dip,
        AnomalyKind::LevelShift,
        AnomalyKind::SlowRamp,
        AnomalyKind::Jitter,
    ];
}

/// Parameters of one injection pass.
#[derive(Debug, Clone)]
pub struct InjectionPlan {
    /// Target fraction of anomalous points.
    pub target_ratio: f64,
    /// Mean window length in points (exponentially distributed, min 1).
    pub mean_len: f64,
    /// The KPI's base level — additive magnitudes are relative to it
    /// (already multiplied by the spec's `anomaly_scale`).
    pub base: f64,
    /// Relative depth scale for multiplicative dips, in `(0, 1]`. A tight
    /// KPI like SRT has shallow dips; a volume KPI like PV can drop by half.
    pub rel_scale: f64,
    /// Points per week — defines the granularity of the slow severity
    /// drift below. Zero disables drift.
    pub points_per_week: usize,
    /// Probability of forcing an injected anomaly to be an upward spike,
    /// applied before the regular kind selection. Volume-of-bad-events
    /// KPIs like #SR are dominated by spike anomalies (which is why the
    /// simple static threshold is their strongest basic detector, Fig. 9b).
    pub spike_bias: f64,
    /// Strength of the week-to-week anomaly-severity drift in `[0, 1)`.
    ///
    /// §4.5.2 of the paper observes that "the underlying problems that
    /// cause KPI anomalies might last for some time before they are really
    /// fixed, so the neighboring weeks are more likely to have similar
    /// anomalies and require similar cThlds". The injector reproduces that
    /// persistence: each week carries a severity multiplier following a
    /// slow AR(1) random walk, so anomaly magnitudes (and hence the best
    /// cThld) are autocorrelated across neighboring weeks.
    pub weekly_drift: f64,
}

/// Applies one anomaly of the given kind in-place over `window`.
/// `magnitude` is a relative severity in roughly `[0.2, 1.0]`.
fn apply_kind<R: Rng>(
    kind: AnomalyKind,
    values: &mut [f64],
    base: f64,
    rel_scale: f64,
    magnitude: f64,
    rng: &mut R,
) {
    let n = values.len();
    match kind {
        AnomalyKind::SpikeUp => {
            for v in values.iter_mut() {
                *v += base * magnitude * (1.5 + randutil::normal(rng).abs());
            }
        }
        AnomalyKind::Dip => {
            // "a sudden drop by 20% or 50%": multiplicative drop, scaled to
            // the KPI's anomaly depth.
            let factor = (1.0 - magnitude * rel_scale).clamp(0.05, 0.97);
            for v in values.iter_mut() {
                *v *= factor;
            }
        }
        AnomalyKind::LevelShift => {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            for v in values.iter_mut() {
                *v += sign * base * magnitude;
            }
        }
        AnomalyKind::SlowRamp => {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            for (i, v) in values.iter_mut().enumerate() {
                let progress = (i + 1) as f64 / n as f64;
                *v += sign * base * magnitude * 1.5 * progress;
            }
        }
        AnomalyKind::Jitter => {
            for (i, v) in values.iter_mut().enumerate() {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                *v += sign * base * magnitude * (0.8 + 0.4 * rng.gen::<f64>());
            }
        }
    }
    for v in values.iter_mut() {
        *v = v.max(0.0);
    }
}

/// Injects anomalies into `values` until `plan.target_ratio` of the points
/// are anomalous. Returns the injected windows (sorted, disjoint) and the
/// per-point ground truth.
pub fn inject<R: Rng>(
    values: &mut [f64],
    plan: &InjectionPlan,
    rng: &mut R,
) -> (Vec<AnomalyWindow>, Labels) {
    let n = values.len();
    let mut truth = Labels::all_normal(n);
    let mut windows: Vec<AnomalyWindow> = Vec::new();
    let target_points = (plan.target_ratio * n as f64).round() as usize;
    let mut injected = 0usize;
    let mut attempts = 0usize;

    // Weekly regime multipliers: a slow log-space AR(1) walk, so anomaly
    // regimes persist across neighboring weeks (see `weekly_drift`). The
    // factor modulates both the *severity* and the *density* of anomalies
    // in a week — underlying problems that linger produce both more and
    // similarly-sized anomalies until fixed.
    let n_weeks = if plan.points_per_week > 0 {
        n.div_ceil(plan.points_per_week)
    } else {
        1
    };
    let mut week_factor = vec![1.0f64; n_weeks];
    if plan.weekly_drift > 0.0 && plan.points_per_week > 0 {
        let rho = 0.85f64;
        let mut log_f = 0.0f64;
        for wf in week_factor.iter_mut() {
            log_f = rho * log_f + plan.weekly_drift * randutil::normal(rng);
            *wf = log_f.exp().clamp(0.3, 3.0);
        }
    }
    // Per-week anomalous-point budgets proportional to the regime factor.
    let factor_sum: f64 = week_factor.iter().sum();
    let week_budget: Vec<usize> = week_factor
        .iter()
        .map(|f| ((target_points as f64) * f / factor_sum).round() as usize)
        .collect();
    let mut week_used = vec![0usize; n_weeks];

    // A dominant anomaly kind per week, persisting via a sticky Markov
    // chain — recurring root causes produce the *same kind* of anomaly for
    // several weeks before being fixed (§4.5.2's persistence argument).
    let mut week_kind: Vec<AnomalyKind> = Vec::with_capacity(n_weeks);
    let mut cur_kind = AnomalyKind::ALL[rng.gen_range(0..AnomalyKind::ALL.len())];
    for _ in 0..n_weeks {
        if rng.gen::<f64>() < 0.3 {
            cur_kind = AnomalyKind::ALL[rng.gen_range(0..AnomalyKind::ALL.len())];
        }
        week_kind.push(cur_kind);
    }

    while injected < target_points && attempts < 100 * (target_points + 1) {
        attempts += 1;
        let len = randutil::duration(rng, plan.mean_len).min(n / 4 + 1);
        let start = rng.gen_range(0..n.saturating_sub(len).max(1));
        let window = AnomalyWindow::new(start, (start + len).min(n).max(start + 1));
        // Keep windows disjoint with a 1-point gap so ground-truth windows
        // stay individually recoverable.
        let padded = AnomalyWindow::new(
            window.start.saturating_sub(1),
            (window.end + 1).min(n).max(window.start + 1),
        );
        if windows.iter().any(|w| w.overlaps(&padded)) {
            continue;
        }
        // Respect the weekly density budget (with slack late in the pass so
        // the global target is still reachable).
        let week = window.start.checked_div(plan.points_per_week).unwrap_or(0);
        let early = attempts < 30 * (target_points + 1);
        if plan.weekly_drift > 0.0 && early && week_used[week] >= week_budget[week] + window.len() {
            continue;
        }

        // Spike-dominated KPIs first; otherwise the week's dominant kind
        // most of the time; any kind else.
        let kind = if rng.gen::<f64>() < plan.spike_bias {
            AnomalyKind::SpikeUp
        } else if plan.weekly_drift > 0.0 && rng.gen::<f64>() < 0.6 {
            week_kind[week.min(week_kind.len() - 1)]
        } else {
            AnomalyKind::ALL[rng.gen_range(0..AnomalyKind::ALL.len())]
        };
        // Severity levels: mixture of mild and severe, per §2.1, modulated
        // by the persistent weekly regime.
        let base_mag = if rng.gen::<f64>() < 0.5 {
            rng.gen_range(0.2..0.5)
        } else {
            rng.gen_range(0.5..1.0)
        };
        let magnitude = (base_mag * week_factor[week.min(week_factor.len() - 1)]).clamp(0.1, 2.0);
        week_used[week] += window.len();
        apply_kind(
            kind,
            &mut values[window.start..window.end],
            plan.base,
            plan.rel_scale,
            magnitude,
            rng,
        );
        for i in window.start..window.end {
            truth.mark(i);
        }
        injected += window.len();
        windows.push(window);
    }

    windows.sort_by_key(|w| w.start);
    (windows, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat(n: usize) -> Vec<f64> {
        vec![100.0; n]
    }

    fn run_inject(
        n: usize,
        ratio: f64,
        mean_len: f64,
        seed: u64,
    ) -> (Vec<f64>, Vec<AnomalyWindow>, Labels) {
        let mut values = flat(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = InjectionPlan {
            target_ratio: ratio,
            mean_len,
            base: 100.0,
            rel_scale: 1.0,
            points_per_week: 0,
            spike_bias: 0.0,
            weekly_drift: 0.0,
        };
        let (w, l) = inject(&mut values, &plan, &mut rng);
        (values, w, l)
    }

    #[test]
    fn hits_target_ratio() {
        let (_, _, labels) = run_inject(20_000, 0.05, 10.0, 1);
        let r = labels.anomaly_ratio();
        assert!((r - 0.05).abs() < 0.01, "ratio {r}");
    }

    #[test]
    fn windows_are_disjoint_and_sorted() {
        let (_, windows, _) = run_inject(20_000, 0.08, 15.0, 2);
        assert!(windows.len() > 10);
        for pair in windows.windows(2) {
            assert!(pair[0].end <= pair[1].start, "{pair:?}");
        }
    }

    #[test]
    fn labels_match_windows() {
        let (_, windows, labels) = run_inject(10_000, 0.06, 8.0, 3);
        let rebuilt = Labels::from_windows(10_000, &windows);
        assert_eq!(labels, rebuilt);
    }

    #[test]
    fn anomalous_points_actually_deviate() {
        let (values, windows, _) = run_inject(10_000, 0.05, 10.0, 4);
        // On a flat base of 100, every anomaly kind moves the value.
        let mut moved = 0usize;
        let mut total = 0usize;
        for w in &windows {
            for v in &values[w.start..w.end] {
                total += 1;
                if (v - 100.0).abs() > 5.0 {
                    moved += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(moved as f64 / total as f64 > 0.8, "{moved}/{total} moved");
    }

    #[test]
    fn normal_points_untouched() {
        let (values, _, labels) = run_inject(10_000, 0.05, 10.0, 5);
        for (i, v) in values.iter().enumerate() {
            if !labels.is_anomaly(i) {
                assert_eq!(*v, 100.0, "normal point {i} changed");
            }
        }
    }

    #[test]
    fn values_stay_non_negative() {
        let (values, _, _) = run_inject(10_000, 0.2, 20.0, 6);
        assert!(values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn each_kind_changes_a_flat_window() {
        let mut rng = StdRng::seed_from_u64(9);
        for kind in AnomalyKind::ALL {
            let mut vals = vec![100.0; 20];
            apply_kind(kind, &mut vals, 100.0, 1.0, 0.5, &mut rng);
            let max_dev = vals.iter().map(|v| (v - 100.0).abs()).fold(0.0, f64::max);
            assert!(max_dev > 10.0, "{kind:?} barely moved the data: {max_dev}");
        }
    }

    #[test]
    fn dip_reduces_values() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut vals = vec![100.0; 10];
        apply_kind(AnomalyKind::Dip, &mut vals, 100.0, 1.0, 0.5, &mut rng);
        assert!(vals.iter().all(|&v| v < 100.0 && v > 0.0));
    }

    #[test]
    fn ramp_is_monotone_in_magnitude() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut vals = vec![100.0; 30];
        apply_kind(AnomalyKind::SlowRamp, &mut vals, 100.0, 1.0, 0.8, &mut rng);
        let first_dev = (vals[0] - 100.0).abs();
        let last_dev = (vals[29] - 100.0).abs();
        assert!(
            last_dev > 5.0 * first_dev.max(0.1),
            "{first_dev} -> {last_dev}"
        );
    }

    #[test]
    fn zero_ratio_injects_nothing() {
        let (values, windows, labels) = run_inject(1000, 0.0, 10.0, 12);
        assert!(windows.is_empty());
        assert_eq!(labels.anomaly_count(), 0);
        assert!(values.iter().all(|&v| v == 100.0));
    }
}
