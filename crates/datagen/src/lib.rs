//! Synthetic KPI data calibrated to the Opprentice paper's Table 1.
//!
//! The paper evaluates on three proprietary KPIs of a top global search
//! engine — search page views (PV), number of slow responses (#SR) and the
//! 80th-percentile search response time (SRT). Those traces cannot be
//! redistributed, so this crate builds the closest synthetic equivalent
//! (see DESIGN.md §1 for the substitution argument):
//!
//! * [`KpiSpec`] — a parametric generator of seasonal KPI series (daily and
//!   weekly profile, Gaussian and heavy-tailed noise, missing points),
//! * [`anomaly`] — an injector of the paper's anomaly archetypes ("jitters,
//!   slow ramp-ups, sudden spikes and dips", §2.1) with exact ground truth,
//! * [`presets`] — `pv()`, `sr()`, `srt()` calibrated to Table 1's interval,
//!   length, seasonality band, coefficient of variation and §5.1's anomaly
//!   ratios (7.8%, 2.8%, 7.4%),
//! * [`operator`] — the simulated operator of the labeling tool (§4.2):
//!   window labels with boundary noise, plus the labeling-time cost model
//!   behind Fig. 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod model;
pub mod operator;
pub mod presets;
mod randutil;

pub use anomaly::{AnomalyKind, InjectionPlan};
pub use model::{KpiSpec, LabeledKpi};
pub use operator::{LabelingSession, SimulatedOperator};
