//! Small sampling helpers on top of `rand` (the sanctioned dependency list
//! excludes `rand_distr`, so the Gaussian and log-normal samplers live here).

use rand::Rng;

/// Standard normal via Box–Muller.
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Log-normal with the given log-space parameters.
pub fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Geometric-ish positive duration with the given mean (exponential rounded
/// up), at least 1.
pub fn duration<R: Rng>(rng: &mut R, mean: f64) -> usize {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    ((-u.ln()) * mean).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| log_normal(&mut rng, 0.0, 1.3))
            .collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let med = {
            let mut s = xs.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(mean > 1.5 * med, "mean {mean} med {med}");
    }

    #[test]
    fn duration_is_positive_with_roughly_right_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds: Vec<usize> = (0..20_000).map(|_| duration(&mut rng, 10.0)).collect();
        assert!(ds.iter().all(|&d| d >= 1));
        let mean = ds.iter().sum::<usize>() as f64 / ds.len() as f64;
        assert!((mean - 10.5).abs() < 1.0, "mean {mean}");
    }
}
