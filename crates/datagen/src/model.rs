//! The parametric KPI generator.
//!
//! A generated KPI is `baseline(t) · seasonal(t) + noise(t) + bursts(t)`,
//! with the paper's anomaly archetypes injected afterwards (see
//! [`crate::anomaly`]). The knobs map directly onto Table 1's columns:
//! `daily_amp`/`weekly_amp` control the seasonality band, `noise_sigma` and
//! the burst parameters control the coefficient of variation, and
//! `anomaly_ratio`/`mean_anomaly_len` control §5.1's labeled-anomaly
//! fraction.

use crate::anomaly::{self, InjectionPlan};
use crate::randutil;
use opprentice_timeseries::{AnomalyWindow, Labels, TimeSeries, SECONDS_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generated KPI with exact ground truth.
#[derive(Debug, Clone)]
pub struct LabeledKpi {
    /// Human-readable KPI name ("PV", "#SR", "SRT", …).
    pub name: String,
    /// The series itself (`NaN` marks missing points).
    pub series: TimeSeries,
    /// Exact per-point ground truth from the injector.
    pub truth: Labels,
    /// The injected anomalous windows (one per injection event).
    pub windows: Vec<AnomalyWindow>,
}

impl LabeledKpi {
    /// Splits the KPI at `week` boundaries: `(first_n_weeks, rest)` — used
    /// for the paper's "first 8 weeks are the initial training set" setup.
    pub fn split_at_week(&self, week: usize) -> ((TimeSeries, Labels), (TimeSeries, Labels)) {
        let cut = week * self.series.points_per_week();
        let cut = cut.min(self.series.len());
        (
            (self.series.slice(0..cut), self.truth.slice(0..cut)),
            (
                self.series.slice(cut..self.series.len()),
                self.truth.slice(cut..self.series.len()),
            ),
        )
    }
}

/// Full specification of a synthetic KPI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KpiSpec {
    /// KPI name.
    pub name: String,
    /// Sampling interval in seconds (Table 1: 60 for PV/#SR, 3600 for SRT).
    pub interval: u32,
    /// Length in whole weeks (Table 1: 25 / 19 / 16).
    pub weeks: usize,
    /// Mean level of the series.
    pub base: f64,
    /// Relative amplitude of the daily profile (0 = none, 0.6 = strong).
    pub daily_amp: f64,
    /// Relative weekday/weekend modulation.
    pub weekly_amp: f64,
    /// Gaussian noise sigma, relative to `base`.
    pub noise_sigma: f64,
    /// Duty cycle of background heavy-tail burst *episodes* (models #SR's
    /// spiky, high-Cv nature). Bursts arrive as multi-point episodes with a
    /// per-episode magnitude, because real slow-response surges persist for
    /// several minutes rather than a single sample.
    pub burst_rate: f64,
    /// Log-space sigma of burst magnitudes.
    pub burst_sigma: f64,
    /// Relative scale of burst magnitudes (multiplied by `base`).
    pub burst_scale: f64,
    /// Target fraction of anomalous points (§5.1: 0.078 / 0.028 / 0.074).
    pub anomaly_ratio: f64,
    /// Scale of *additive* anomaly magnitudes relative to `base`. Tight
    /// KPIs (SRT, Cv 0.07) have operator-noticeable anomalies that are small
    /// in absolute terms; spiky KPIs (#SR) need anomalies that stand above
    /// the background bursts.
    pub anomaly_scale: f64,
    /// Probability that an injected anomaly is forced to be an upward
    /// spike (see [`crate::anomaly::InjectionPlan::spike_bias`]).
    pub spike_bias: f64,
    /// Week-to-week anomaly-severity drift strength (see
    /// [`crate::anomaly::InjectionPlan::weekly_drift`]).
    pub anomaly_drift: f64,
    /// Mean anomalous-window length in points.
    pub mean_anomaly_len: f64,
    /// When set, values above this quantile of the generated series are
    /// *also* labeled anomalous (merged into the ground truth). Models
    /// bursty KPIs like #SR where operators, labeling "based on the data
    /// curve itself" (§6), flag extreme spikes regardless of their origin —
    /// which is exactly why the simple static threshold is the strongest
    /// basic detector on #SR in the paper (Fig. 9b).
    pub extreme_label_quantile: Option<f64>,
    /// Fraction of points dropped as missing ("dirty data", §6).
    pub missing_ratio: f64,
    /// RNG seed — generation is fully deterministic given the spec.
    pub seed: u64,
}

impl KpiSpec {
    /// Points per day at this spec's interval.
    pub fn points_per_day(&self) -> usize {
        (SECONDS_PER_DAY / i64::from(self.interval)) as usize
    }

    /// Total points generated.
    pub fn total_points(&self) -> usize {
        self.points_per_day() * 7 * self.weeks
    }

    /// Generates the KPI: seasonal baseline + noise, then anomaly injection,
    /// then missing-point dropout. Deterministic in the spec.
    pub fn generate(&self) -> LabeledKpi {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.total_points();
        let per_day = self.points_per_day() as f64;

        // Smooth daily profile: two harmonics with a seed-stable phase.
        let phase1 = rng.gen::<f64>() * std::f64::consts::TAU;
        let phase2 = rng.gen::<f64>() * std::f64::consts::TAU;
        // Weekday factors: weekend dip scaled by weekly_amp.
        let weekday_factor: Vec<f64> = (0..7)
            .map(|d| {
                if d >= 5 {
                    1.0 - self.weekly_amp
                } else {
                    1.0 + 0.2 * self.weekly_amp
                }
            })
            .collect();

        // Burst episodes: a two-state process whose duty cycle matches
        // `burst_rate`; each episode carries one log-normal magnitude.
        let p_exit = 0.12f64;
        let p_enter = if self.burst_rate > 0.0 && self.burst_rate < 1.0 {
            (self.burst_rate * p_exit / (1.0 - self.burst_rate)).min(1.0)
        } else {
            0.0
        };
        let mut in_burst = false;
        let mut burst_level = 0.0f64;

        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let day_pos = (i as f64 % per_day) / per_day;
            let day_idx = (i / self.points_per_day()) % 7;
            let season = 1.0
                + self.daily_amp
                    * (0.7 * (std::f64::consts::TAU * day_pos + phase1).sin()
                        + 0.3 * (2.0 * std::f64::consts::TAU * day_pos + phase2).sin());
            let mut v = self.base * season * weekday_factor[day_idx];
            v += self.base * self.noise_sigma * randutil::normal(&mut rng);
            if self.burst_rate > 0.0 {
                if in_burst {
                    if rng.gen::<f64>() < p_exit {
                        in_burst = false;
                    }
                } else if rng.gen::<f64>() < p_enter {
                    in_burst = true;
                    burst_level = randutil::log_normal(&mut rng, 0.0, self.burst_sigma);
                }
                if in_burst {
                    let wobble = 0.8 + 0.4 * rng.gen::<f64>();
                    v += self.base * self.burst_scale * burst_level * wobble;
                }
            }
            values.push(v.max(0.0));
        }

        // Inject anomalies with exact ground truth.
        let plan = InjectionPlan {
            target_ratio: self.anomaly_ratio,
            mean_len: self.mean_anomaly_len,
            base: self.base * self.anomaly_scale,
            rel_scale: self.anomaly_scale.min(1.0),
            points_per_week: self.points_per_day() * 7,
            spike_bias: self.spike_bias,
            weekly_drift: self.anomaly_drift,
        };
        let (mut windows, mut truth) = anomaly::inject(&mut values, &plan, &mut rng);

        // Bursty KPIs: extreme values are anomalies to the operator's eye,
        // whatever produced them. An operator labels the *whole* elevated
        // episode once its peak crosses the line, so each above-threshold
        // run is expanded outward while neighbors stay clearly elevated.
        if let Some(q) = self.extreme_label_quantile {
            let threshold =
                opprentice_numeric::stats::quantile(&values, q).expect("non-empty series");
            let elevated = 0.6 * threshold;
            let mut i = 0;
            while i < n {
                if values[i] > threshold {
                    let mut lo = i;
                    while lo > 0 && values[lo - 1] > elevated {
                        lo -= 1;
                    }
                    let mut hi = i;
                    while hi + 1 < n && values[hi + 1] > elevated {
                        hi += 1;
                    }
                    for j in lo..=hi {
                        truth.mark(j);
                    }
                    i = hi + 1;
                } else {
                    i += 1;
                }
            }
            windows = truth.to_windows();
        }

        // Dirty data: drop points at random (missing points stay labeled as
        // whatever the window says; evaluation skips them).
        if self.missing_ratio > 0.0 {
            for v in values.iter_mut() {
                if rng.gen::<f64>() < self.missing_ratio {
                    *v = f64::NAN;
                }
            }
        }

        LabeledKpi {
            name: self.name.clone(),
            series: TimeSeries::from_values(0, self.interval, values),
            truth,
            windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprentice_timeseries::stats;

    fn small_spec() -> KpiSpec {
        KpiSpec {
            name: "test".into(),
            interval: 300,
            weeks: 3,
            base: 100.0,
            daily_amp: 0.5,
            weekly_amp: 0.2,
            noise_sigma: 0.05,
            burst_rate: 0.0,
            burst_sigma: 1.0,
            burst_scale: 1.0,
            anomaly_ratio: 0.05,
            anomaly_scale: 1.0,
            spike_bias: 0.0,
            anomaly_drift: 0.0,
            mean_anomaly_len: 12.0,
            extreme_label_quantile: None,
            missing_ratio: 0.002,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.series, b.series);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.windows, b.windows);
    }

    #[test]
    fn length_matches_spec() {
        let spec = small_spec();
        let kpi = spec.generate();
        assert_eq!(kpi.series.len(), spec.total_points());
        assert_eq!(kpi.truth.len(), kpi.series.len());
        assert_eq!(kpi.series.points_per_day(), 288);
    }

    #[test]
    fn anomaly_ratio_near_target() {
        let kpi = small_spec().generate();
        let ratio = kpi.truth.anomaly_ratio();
        assert!((ratio - 0.05).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn seasonality_visible_in_generated_data() {
        let kpi = small_spec().generate();
        let s = stats::seasonality_strength(&kpi.series).unwrap();
        assert!(s > 0.6, "seasonality {s}");
    }

    #[test]
    fn values_are_non_negative() {
        let kpi = small_spec().generate();
        assert!(kpi.series.values().iter().all(|v| v.is_nan() || *v >= 0.0));
    }

    #[test]
    fn missing_ratio_near_target() {
        let kpi = small_spec().generate();
        let r = kpi.series.missing_ratio();
        assert!(r > 0.0005 && r < 0.006, "missing {r}");
    }

    #[test]
    fn split_at_week_partitions() {
        let kpi = small_spec().generate();
        let ((tr_s, tr_l), (te_s, te_l)) = kpi.split_at_week(2);
        assert_eq!(tr_s.len(), 2 * kpi.series.points_per_week());
        assert_eq!(tr_s.len() + te_s.len(), kpi.series.len());
        assert_eq!(tr_l.len(), tr_s.len());
        assert_eq!(te_l.len(), te_s.len());
        // Test slice keeps absolute time.
        assert_eq!(te_s.start(), kpi.series.timestamp_at(tr_s.len()));
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec2 = small_spec();
        spec2.seed = 8;
        assert_ne!(small_spec().generate().series, spec2.generate().series);
    }
}
