//! The simulated operator: window labeling with human noise, plus the
//! labeling-time accounting behind Fig. 14.
//!
//! §4.2: operators "left click and drag the mouse to label the window of
//! anomalies", and "the boundaries of an anomalous window are often extended
//! or narrowed when labeling. However, machine learning is well known for
//! being robust to noises." The simulator reproduces both facts: each ground
//! truth window is labeled with jittered boundaries, and occasionally a mild
//! window is missed entirely.
//!
//! Labeling time is modeled as navigation time (scrolling through the data)
//! plus a per-window action cost — which is exactly why window labeling is
//! cheap: "operators each time label a window of anomalies rather than
//! labeling individual anomalous data points one by one" (§5.7).

use crate::model::LabeledKpi;
use crate::randutil;
use opprentice_timeseries::{AnomalyWindow, Labels};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Labeling effort and per-month window counts for one month of data —
/// the axes of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthReport {
    /// Month index (0-based, 30-day months).
    pub month: usize,
    /// Number of windows the operator labeled in this month.
    pub windows: usize,
    /// Labeling time spent on this month, in minutes.
    pub minutes: f64,
}

/// The outcome of one labeling pass over a KPI.
#[derive(Debug, Clone)]
pub struct LabelingSession {
    /// The operator's (noisy) point labels.
    pub labels: Labels,
    /// The windows as actually labeled (jittered, possibly missing some).
    pub windows: Vec<AnomalyWindow>,
    /// Total labeling time in minutes.
    pub total_minutes: f64,
    /// Per-month breakdown (Fig. 14's scatter points).
    pub months: Vec<MonthReport>,
}

/// A configurable simulated operator.
#[derive(Debug, Clone)]
pub struct SimulatedOperator {
    /// Standard deviation of window-boundary error, in *minutes* of data
    /// time (converted to points by the KPI's interval) — humans misplace
    /// boundaries by wall-clock slop, not by sample counts.
    pub boundary_jitter_minutes: f64,
    /// Probability of overlooking an entire window.
    pub miss_prob: f64,
    /// Seconds per label action (click-drag of one window).
    pub seconds_per_window: f64,
    /// Seconds of navigation per day of data reviewed.
    pub nav_seconds_per_day: f64,
    /// RNG seed; labeling is deterministic given the operator and KPI.
    pub seed: u64,
}

impl Default for SimulatedOperator {
    fn default() -> Self {
        Self {
            boundary_jitter_minutes: 4.0,
            miss_prob: 0.02,
            seconds_per_window: 1.5,
            nav_seconds_per_day: 2.0,
            seed: 0xB0A7,
        }
    }
}

impl SimulatedOperator {
    /// A perfectly accurate (but still window-based) operator — useful to
    /// isolate the effect of labeling noise in ablations.
    pub fn perfect() -> Self {
        Self {
            boundary_jitter_minutes: 0.0,
            miss_prob: 0.0,
            ..Self::default()
        }
    }

    /// Labels the KPI's ground-truth windows the way a human would: window
    /// by window, with boundary jitter and occasional misses, accumulating
    /// labeling time.
    pub fn label(&self, kpi: &LabeledKpi) -> LabelingSession {
        let mut rng = StdRng::seed_from_u64(self.seed ^ kpi.series.len() as u64);
        let n = kpi.series.len();
        let points_per_month = kpi.series.points_per_day() * 30;
        let n_months = n.div_ceil(points_per_month).max(1);

        let jitter_points = self.boundary_jitter_minutes * 60.0 / f64::from(kpi.series.interval());
        let mut labeled_windows = Vec::new();
        let mut windows_per_month = vec![0usize; n_months];

        for w in &kpi.windows {
            if rng.gen::<f64>() < self.miss_prob {
                continue;
            }
            let jitter = |rng: &mut StdRng| (randutil::normal(rng) * jitter_points).round() as i64;
            let start = (w.start as i64 + jitter(&mut rng)).clamp(0, n as i64 - 1) as usize;
            let end = (w.end as i64 + jitter(&mut rng)).clamp(start as i64 + 1, n as i64) as usize;
            let lw = AnomalyWindow::new(start, end);
            windows_per_month[lw.start / points_per_month] += 1;
            labeled_windows.push(lw);
        }

        let mut months = Vec::with_capacity(n_months);
        let mut total_seconds = 0.0;
        for (m, &wins) in windows_per_month.iter().enumerate() {
            let month_points = points_per_month.min(n - m * points_per_month);
            let days = month_points as f64 / kpi.series.points_per_day() as f64;
            let secs = days * self.nav_seconds_per_day + wins as f64 * self.seconds_per_window;
            total_seconds += secs;
            months.push(MonthReport {
                month: m,
                windows: wins,
                minutes: secs / 60.0,
            });
        }

        LabelingSession {
            labels: Labels::from_windows(n, &labeled_windows),
            windows: labeled_windows,
            total_minutes: total_seconds / 60.0,
            months,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn test_kpi() -> LabeledKpi {
        presets::fast(&presets::pv(), 300).generate()
    }

    #[test]
    fn perfect_operator_reproduces_ground_truth() {
        let kpi = test_kpi();
        let session = SimulatedOperator::perfect().label(&kpi);
        assert_eq!(session.labels, kpi.truth);
        assert_eq!(session.windows.len(), kpi.windows.len());
    }

    #[test]
    fn noisy_labels_mostly_agree_with_truth() {
        let kpi = test_kpi();
        let session = SimulatedOperator::default().label(&kpi);
        let n = kpi.truth.len();
        let agree = (0..n)
            .filter(|&i| session.labels.is_anomaly(i) == kpi.truth.is_anomaly(i))
            .count();
        let agreement = agree as f64 / n as f64;
        assert!(agreement > 0.93, "agreement {agreement}");
        // But it should not be a perfect copy (jitter is real).
        assert_ne!(session.labels, kpi.truth);
    }

    #[test]
    fn labeling_time_under_six_minutes_per_month() {
        // §5.7: "the labeling time of one-month data is less than 6 minutes".
        for spec in presets::all() {
            let kpi = presets::fast(&spec, 300).generate();
            let session = SimulatedOperator::default().label(&kpi);
            for m in &session.months {
                assert!(
                    m.minutes < 6.0,
                    "{}: month {} took {:.1} min",
                    kpi.name,
                    m.month,
                    m.minutes
                );
            }
        }
    }

    #[test]
    fn labeling_time_grows_with_window_count() {
        let kpi = test_kpi();
        let session = SimulatedOperator::default().label(&kpi);
        // Compare a low-window month against a high-window month.
        let mut months = session.months.clone();
        months.sort_by_key(|m| m.windows);
        let (lo, hi) = (months.first().unwrap(), months.last().unwrap());
        if hi.windows > lo.windows {
            assert!(hi.minutes > lo.minutes, "{lo:?} vs {hi:?}");
        }
    }

    #[test]
    fn month_reports_cover_all_windows() {
        let kpi = test_kpi();
        let session = SimulatedOperator::default().label(&kpi);
        let total: usize = session.months.iter().map(|m| m.windows).sum();
        assert_eq!(total, session.windows.len());
    }

    #[test]
    fn labeling_is_deterministic() {
        let kpi = test_kpi();
        let a = SimulatedOperator::default().label(&kpi);
        let b = SimulatedOperator::default().label(&kpi);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.total_minutes, b.total_minutes);
    }
}
