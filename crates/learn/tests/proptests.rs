//! Property-based tests for the learning substrate.

use opprentice_learn::feature_select::mutual_information;
use opprentice_learn::metrics::{auc_pr, auc_pr_of, f_score, pr_curve};
use opprentice_learn::tree::{DecisionTree, TreeParams};
use opprentice_learn::{Classifier, Dataset, RandomForest, RandomForestParams};
use proptest::prelude::*;

fn scored_labels() -> impl Strategy<Value = Vec<(f64, bool)>> {
    prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..200)
        .prop_filter("needs a positive", |v| v.iter().any(|(_, l)| *l))
}

proptest! {
    /// PR curves: thresholds strictly descending, recall non-decreasing,
    /// final recall 1, precision in (0, 1], AUCPR in [0, 1].
    #[test]
    fn pr_curve_invariants(data in scored_labels()) {
        let scores: Vec<Option<f64>> = data.iter().map(|(s, _)| Some(*s)).collect();
        let labels: Vec<bool> = data.iter().map(|(_, l)| *l).collect();
        let curve = pr_curve(&scores, &labels);
        prop_assert!(!curve.is_empty());
        for w in curve.windows(2) {
            prop_assert!(w[0].threshold > w[1].threshold);
            prop_assert!(w[0].recall <= w[1].recall);
        }
        prop_assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
        for p in &curve {
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!((0.0..=1.0).contains(&p.recall));
        }
        let auc = auc_pr(&curve);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&auc));
    }

    /// A strictly better scorer never has lower AUCPR: moving every
    /// positive's score up cannot hurt.
    #[test]
    fn auc_improves_when_positives_score_higher(data in scored_labels()) {
        let labels: Vec<bool> = data.iter().map(|(_, l)| *l).collect();
        let base: Vec<Option<f64>> = data.iter().map(|(s, _)| Some(*s)).collect();
        let boosted: Vec<Option<f64>> = data
            .iter()
            .map(|(s, l)| Some(if *l { s + 2.0 } else { *s }))
            .collect();
        prop_assert!(auc_pr_of(&boosted, &labels) + 1e-12 >= auc_pr_of(&base, &labels));
    }

    /// F-Score is symmetric, bounded by its arguments and by 1.
    #[test]
    fn f_score_properties(r in 0.0f64..=1.0, p in 0.0f64..=1.0) {
        let f = f_score(r, p);
        prop_assert!((f_score(p, r) - f).abs() < 1e-12);
        prop_assert!(f <= 1.0 + 1e-12);
        prop_assert!(f <= (r.max(p)) + 1e-12);
        prop_assert!(f >= 0.0);
        if r > 0.0 && p > 0.0 {
            prop_assert!(f >= r.min(p) * 2.0 / 2.0 - 1e-12); // harmonic mean >= min/1 bound sanity
        }
    }

    /// Mutual information is non-negative and bounded by the label entropy.
    #[test]
    fn mi_bounds(data in prop::collection::vec((0.0f64..100.0, any::<bool>()), 10..300)) {
        let values: Vec<f64> = data.iter().map(|(v, _)| *v).collect();
        let labels: Vec<bool> = data.iter().map(|(_, l)| *l).collect();
        let mi = mutual_information(&values, &labels);
        prop_assert!(mi >= 0.0);
        let p = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        let h = if p == 0.0 || p == 1.0 { 0.0 } else { -p * p.ln() - (1.0 - p) * (1.0 - p).ln() };
        prop_assert!(mi <= h + 1e-9, "MI {mi} exceeds H(Y) {h}");
    }

    /// A fully grown tree is consistent on its own training data whenever
    /// the samples are separable (no two identical rows with different
    /// labels in this construction).
    #[test]
    fn tree_fits_training_data(
        rows in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..80),
    ) {
        let mut d = Dataset::new(2);
        for (a, b) in &rows {
            d.push(&[*a, *b], a + b > 100.0);
        }
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        for i in 0..d.len() {
            prop_assert_eq!(t.predict_proba(d.row(i)) >= 0.5, d.label(i), "row {}", i);
        }
    }

    /// Forest probabilities live in [0, 1] for arbitrary queries.
    #[test]
    fn forest_probability_bounds(
        rows in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 20..60),
        probe in prop::collection::vec(-100.0f64..100.0, 2..=2),
    ) {
        let mut d = Dataset::new(2);
        for (i, (a, b)) in rows.iter().enumerate() {
            d.push(&[*a, *b], i % 3 == 0);
        }
        let mut f = RandomForest::new(RandomForestParams { n_trees: 7, ..Default::default() });
        f.fit(&d);
        let p = f.predict_proba(&probe);
        prop_assert!((0.0..=1.0).contains(&p));
        // Persistence round-trip agrees everywhere we probe.
        let restored = RandomForest::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(restored.predict_proba(&probe), p);
    }

    /// The model decoder is total: arbitrary bytes never panic, they
    /// either decode or return an error. This is the load-bearing property
    /// for reading model files off disk after a crash.
    #[test]
    fn forest_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = RandomForest::from_bytes(&bytes);
    }

    /// Same, with a valid magic + version prefix so the fuzz bytes reach
    /// the params/count/node decoding paths instead of dying at the header.
    #[test]
    fn forest_decoder_never_panics_past_header(
        mut bytes in prop::collection::vec(any::<u8>(), 6..600),
    ) {
        bytes[..4].copy_from_slice(b"OPRF");
        bytes[4..6].copy_from_slice(&3u16.to_le_bytes());
        let _ = RandomForest::from_bytes(&bytes);
    }

    /// The serving-path differential guarantee: a compiled forest produces
    /// bit-identical probabilities to the tree-walk path over random
    /// datasets, seeds and probes — single-row and batched alike.
    #[test]
    fn compiled_forest_matches_tree_walk(
        rows in prop::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 30..120),
        probes in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 3..=3), 1..40),
        n_trees in 1usize..12,
        seed in any::<u64>(),
        exact in any::<bool>(),
    ) {
        let mut d = Dataset::new(3);
        for (a, b, c) in &rows {
            d.push(&[*a, *b, *c], a + b > 10.0);
        }
        let mut f = RandomForest::new(RandomForestParams {
            n_trees,
            seed,
            n_bins: if exact { None } else { Some(16) },
            ..Default::default()
        });
        f.fit(&d);
        let compiled = f.compile();
        for p in &probes {
            let walk = f.predict_proba(p);
            let fast = compiled.predict(p);
            prop_assert_eq!(walk.to_bits(), fast.to_bits(),
                "walk {} vs compiled {}", walk, fast);
        }
        let batch = compiled.predict_batch(&probes);
        for (p, got) in probes.iter().zip(&batch) {
            prop_assert_eq!(f.predict_proba(p).to_bits(), got.to_bits());
        }
        // The round trip through persistence compiles identically too.
        let restored = RandomForest::from_bytes(&f.to_bytes()).unwrap().compile();
        for p in &probes {
            prop_assert_eq!(restored.predict(p).to_bits(), compiled.predict(p).to_bits());
        }
    }

    /// Dataset subsetting and column selection commute with row access.
    #[test]
    fn dataset_views_consistent(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3..=3), 2..40),
    ) {
        let mut d = Dataset::new(3);
        for (i, r) in rows.iter().enumerate() {
            d.push(r, i % 2 == 0);
        }
        let idx: Vec<usize> = (0..d.len()).step_by(2).collect();
        let sub = d.subset(&idx);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(sub.row(k), d.row(i));
            prop_assert_eq!(sub.label(k), d.label(i));
        }
        let proj = d.select_features(&[2, 0]);
        for i in 0..d.len() {
            prop_assert_eq!(proj.row(i), &[d.row(i)[2], d.row(i)[0]]);
        }
    }
}
