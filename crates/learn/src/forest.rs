//! Random forests (Breiman [28]) — the learning algorithm Opprentice runs.
//!
//! §4.4.2: "a random forest adds some elements of randomness. First, each
//! tree is trained on subsets sampled from the original training set.
//! Second, instead of evaluating all the features at each level, the trees
//! only consider a random subset of the features each time. All the trees
//! are fully grown in this way without pruning. The random forest then
//! combines those trees by majority vote … if 40 trees out of 100 classify
//! the point into an anomaly, its anomaly probability is 40%."
//!
//! Training parallelizes across trees with scoped threads (the paper notes
//! "training of random forests is also able to be parallelized", §5.8); on
//! a single-core host it degrades to sequential work.
//!
//! **Determinism.** Tree `t` draws its bootstrap sample and split
//! randomness from RNG streams derived *only* from the master seed and `t`
//! (`seed · φ64 + t`, golden-ratio mixing), never from which worker thread
//! built it or in what order. Parallel training is therefore bit-identical
//! to sequential training — [`RandomForest::fit_with_threads`] with any
//! thread count produces the same forest, which `tests/train_differential.rs`
//! proves structurally (tree bytes, probabilities, compiled arena).

use crate::binned::{fit_binned, BinnedDataset};
use crate::tree::{fit_on_indices, DecisionTree, TreeParams};
use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest hyperparameters. The paper stresses that forests "have
/// only two parameters and are not very sensitive to them" [38]: the tree
/// count and the per-node feature subset size.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Features per node (`None` = √m, the standard default).
    pub max_features: Option<usize>,
    /// Bootstrap sample size as a fraction of the training set.
    pub sample_fraction: f64,
    /// Depth cap (`None` = fully grown, the paper's configuration).
    pub max_depth: Option<usize>,
    /// Histogram split resolution: `Some(bins)` pre-discretizes features
    /// into quantile bins (fast, the default); `None` uses exact CART
    /// splits (slow, for small data or verification).
    pub n_bins: Option<usize>,
    /// Master seed; the forest is deterministic given it.
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_trees: 60,
            max_features: None,
            sample_fraction: 1.0,
            max_depth: None,
            n_bins: Some(64),
            seed: 42,
        }
    }
}

/// A trained random forest.
pub struct RandomForest {
    params: RandomForestParams,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(params: RandomForestParams) -> Self {
        Self {
            params,
            trees: Vec::new(),
        }
    }

    /// Anomaly probability: the mean of the trees' leaf probabilities —
    /// scikit-learn's `predict_proba` semantics, which the original
    /// prototype used. With fully grown trees the leaves are (near) pure,
    /// so this coincides with the paper's "fraction of trees classifying
    /// the point into an anomaly" up to leaf impurity.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "forest not fitted");
        let total: f64 = self.trees.iter().map(|t| t.predict_proba(features)).sum();
        total / self.trees.len() as f64
    }

    /// The strict majority-vote fraction of §4.4.2's description ("if 40
    /// trees out of 100 classify the point into an anomaly, its anomaly
    /// probability is 40%").
    pub fn vote_fraction(&self, features: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "forest not fitted");
        let votes = self
            .trees
            .iter()
            .filter(|t| t.predict_proba(features) >= 0.5)
            .count();
        votes as f64 / self.trees.len() as f64
    }

    /// Number of trained trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// The trained trees (read-only).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The hyperparameters this forest was created with.
    pub fn params(&self) -> &RandomForestParams {
        &self.params
    }

    /// Assembles a forest from already-built trees and the hyperparameters
    /// they were trained with (persistence restore). Keeping the real
    /// params means a restored forest refits exactly like the original.
    pub(crate) fn from_trees(params: RandomForestParams, trees: Vec<DecisionTree>) -> Self {
        Self { params, trees }
    }

    /// Trains the forest on `data` with an explicit worker-thread count
    /// (clamped to `1..=n_trees`).
    ///
    /// The trained forest is **bit-identical for every thread count**: tree
    /// `t` seeds its bootstrap and split RNGs purely from `(master seed, t)`,
    /// so thread scheduling cannot leak into the model. `threads == 1` runs
    /// a plain sequential loop on the calling thread with no spawning at
    /// all — the reference every parallel run is differentially tested
    /// against. [`Classifier::fit`] delegates here with one thread per
    /// available core.
    pub fn fit_with_threads(&mut self, data: &Dataset, threads: usize) {
        assert!(!data.is_empty(), "empty training set");
        let n = data.len();
        let m = data.n_features();
        let max_features = self
            .params
            .max_features
            .unwrap_or_else(|| (m as f64).sqrt().round().max(1.0) as usize);
        let sample_n = ((n as f64 * self.params.sample_fraction).round() as usize).clamp(1, n);

        let binned = self
            .params
            .n_bins
            .map(|b| BinnedDataset::from_dataset(data, b));
        let n_trees = self.params.n_trees;
        let threads = threads.clamp(1, n_trees.max(1));

        let params = &self.params;
        let binned_ref = binned.as_ref();
        // Everything random about tree `t` derives from this seed alone.
        let build = |t: usize| -> DecisionTree {
            let tree_seed = params
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(t as u64);
            let mut rng = StdRng::seed_from_u64(tree_seed);
            // Bootstrap: sample with replacement.
            let mut indices: Vec<usize> = (0..sample_n).map(|_| rng.gen_range(0..n)).collect();
            let tp = TreeParams {
                max_features: Some(max_features),
                max_depth: params.max_depth,
                min_samples_split: 2,
                seed: tree_seed ^ 0xA5A5_5A5A,
            };
            match binned_ref {
                Some(b) => fit_binned(tp, b, &mut indices),
                None => fit_on_indices(tp, data, &mut indices),
            }
        };

        if threads == 1 {
            self.trees = (0..n_trees).map(build).collect();
            return;
        }

        let chunk = n_trees.div_ceil(threads);
        let mut trees: Vec<(usize, DecisionTree)> = Vec::with_capacity(n_trees);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t0 in (0..n_trees).step_by(chunk) {
                let hi = (t0 + chunk).min(n_trees);
                let build = &build;
                handles
                    .push(scope.spawn(move || (t0..hi).map(|t| (t, build(t))).collect::<Vec<_>>()));
            }
            for h in handles {
                trees.extend(h.join().expect("tree-training thread panicked"));
            }
        });
        trees.sort_by_key(|(t, _)| *t);
        self.trees = trees.into_iter().map(|(_, t)| t).collect();
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        // Honour the process-wide OPPRENTICE_THREADS budget — the same
        // knob the extraction worker pool uses. Tree construction is
        // bit-identical for any thread count (per-tree seeding).
        self.fit_with_threads(data, opprentice_numeric::parallel::configured_threads());
    }

    fn score(&self, features: &[f64]) -> f64 {
        self.predict_proba(features)
    }

    fn name(&self) -> &'static str {
        "random forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy concept: anomaly iff f0 + f1 > 10, plus irrelevant features.
    fn noisy_dataset(n: usize, n_noise: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(2 + n_noise);
        for _ in 0..n {
            let f0: f64 = rng.gen_range(0.0..10.0);
            let f1: f64 = rng.gen_range(0.0..10.0);
            let mut row = vec![f0, f1];
            for _ in 0..n_noise {
                row.push(rng.gen_range(0.0..10.0));
            }
            d.push(&row, f0 + f1 > 10.0);
        }
        d
    }

    fn accuracy(c: &dyn Classifier, d: &Dataset) -> f64 {
        let correct = (0..d.len())
            .filter(|&i| (c.score(d.row(i)) >= 0.5) == d.label(i))
            .count();
        correct as f64 / d.len() as f64
    }

    #[test]
    fn forest_generalizes_on_held_out_data() {
        let train = noisy_dataset(800, 4, 1);
        let test = noisy_dataset(400, 4, 2);
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 30,
            ..Default::default()
        });
        f.fit(&train);
        let acc = accuracy(&f, &test);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn vote_fraction_is_quantized_and_tracks_probability() {
        let train = noisy_dataset(300, 0, 3);
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 10,
            ..Default::default()
        });
        f.fit(&train);
        let v = f.vote_fraction(&[5.0, 5.001]);
        // Votes must be a multiple of 1/10.
        assert!((v * 10.0 - (v * 10.0).round()).abs() < 1e-9, "v {v}");
        // Mean-leaf probability stays in [0, 1] and agrees in direction.
        let p_hi = f.predict_proba(&[9.0, 9.0]);
        let p_lo = f.predict_proba(&[1.0, 1.0]);
        assert!((0.0..=1.0).contains(&p_hi) && (0.0..=1.0).contains(&p_lo));
        assert!(p_hi > p_lo);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = noisy_dataset(200, 2, 4);
        let mut a = RandomForest::new(RandomForestParams {
            n_trees: 8,
            seed: 7,
            ..Default::default()
        });
        let mut b = RandomForest::new(RandomForestParams {
            n_trees: 8,
            seed: 7,
            ..Default::default()
        });
        a.fit(&train);
        b.fit(&train);
        let probe = noisy_dataset(50, 2, 5);
        for i in 0..probe.len() {
            assert_eq!(a.predict_proba(probe.row(i)), b.predict_proba(probe.row(i)));
        }
    }

    #[test]
    fn explicit_thread_counts_all_give_the_same_forest() {
        let train = noisy_dataset(250, 3, 13);
        let probe = noisy_dataset(60, 3, 14);
        let params = RandomForestParams {
            n_trees: 9,
            seed: 17,
            ..Default::default()
        };
        let mut reference = RandomForest::new(params.clone());
        reference.fit_with_threads(&train, 1);
        for threads in [2, 3, 4, 8, 64] {
            let mut f = RandomForest::new(params.clone());
            f.fit_with_threads(&train, threads);
            assert_eq!(f.tree_count(), reference.tree_count());
            for i in 0..probe.len() {
                assert_eq!(
                    f.predict_proba(probe.row(i)),
                    reference.predict_proba(probe.row(i)),
                    "threads={threads} point {i}"
                );
            }
        }
        // The default `fit` (auto thread count) matches the reference too.
        let mut auto = RandomForest::new(params);
        auto.fit(&train);
        for i in 0..probe.len() {
            assert_eq!(
                auto.predict_proba(probe.row(i)),
                reference.predict_proba(probe.row(i))
            );
        }
    }

    #[test]
    fn different_seeds_give_different_forests() {
        let train = noisy_dataset(200, 2, 4);
        let mut a = RandomForest::new(RandomForestParams {
            n_trees: 8,
            seed: 7,
            ..Default::default()
        });
        let mut b = RandomForest::new(RandomForestParams {
            n_trees: 8,
            seed: 8,
            ..Default::default()
        });
        a.fit(&train);
        b.fit(&train);
        let probe = noisy_dataset(100, 2, 6);
        let diff = (0..probe.len())
            .filter(|&i| a.predict_proba(probe.row(i)) != b.predict_proba(probe.row(i)))
            .count();
        assert!(diff > 0, "forests identical across seeds");
    }

    #[test]
    fn robust_to_many_irrelevant_features() {
        // The §5.3.2 story in miniature: accuracy holds up as noise
        // features are added.
        let clean_train = noisy_dataset(600, 0, 10);
        let clean_test = noisy_dataset(300, 0, 11);
        let noisy_train = noisy_dataset(600, 30, 10);
        let noisy_test = noisy_dataset(300, 30, 11);

        let mut f1 = RandomForest::new(RandomForestParams {
            n_trees: 30,
            ..Default::default()
        });
        f1.fit(&clean_train);
        let acc_clean = accuracy(&f1, &clean_test);

        let mut f2 = RandomForest::new(RandomForestParams {
            n_trees: 30,
            ..Default::default()
        });
        f2.fit(&noisy_train);
        let acc_noisy = accuracy(&f2, &noisy_test);

        assert!(
            acc_noisy > acc_clean - 0.07,
            "clean {acc_clean} noisy {acc_noisy}"
        );
    }

    #[test]
    fn tree_count_matches_params() {
        let train = noisy_dataset(100, 0, 12);
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 5,
            ..Default::default()
        });
        f.fit(&train);
        assert_eq!(f.tree_count(), 5);
    }

    #[test]
    #[should_panic(expected = "forest not fitted")]
    fn predict_before_fit_panics() {
        let f = RandomForest::new(RandomForestParams::default());
        let _ = f.predict_proba(&[1.0]);
    }
}

#[cfg(test)]
mod binned_vs_exact_tests {
    use super::*;
    use crate::metrics::auc_pr_of;
    use tests_support::noisy_dataset;

    mod tests_support {
        use super::super::Dataset;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        pub fn noisy_dataset(n: usize, n_noise: usize, seed: u64) -> Dataset {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = Dataset::new(2 + n_noise);
            for _ in 0..n {
                let f0: f64 = rng.gen_range(0.0..10.0);
                let f1: f64 = rng.gen_range(0.0..10.0);
                let mut row = vec![f0, f1];
                for _ in 0..n_noise {
                    row.push(rng.gen_range(0.0..10.0));
                }
                d.push(&row, f0 + f1 > 10.0);
            }
            d
        }
    }

    #[test]
    fn binned_forest_matches_exact_forest_accuracy() {
        let train = noisy_dataset(600, 5, 21);
        let test = noisy_dataset(400, 5, 22);
        let auc = |n_bins: Option<usize>| {
            let mut f = RandomForest::new(RandomForestParams {
                n_trees: 20,
                n_bins,
                ..Default::default()
            });
            f.fit(&train);
            let scores: Vec<Option<f64>> = (0..test.len())
                .map(|i| Some(f.score(test.row(i))))
                .collect();
            auc_pr_of(&scores, test.labels())
        };
        let exact = auc(None);
        let binned = auc(Some(64));
        assert!(exact > 0.9, "exact {exact}");
        assert!(binned > exact - 0.05, "binned {binned} vs exact {exact}");
    }
}
