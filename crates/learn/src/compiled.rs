//! Compiled (flattened) forest inference — the serving hot path.
//!
//! [`crate::forest::RandomForest::predict_proba`] walks a `Vec<Node>` of
//! enum variants per tree: every step pattern-matches a tag and chases a
//! child index laid out in training (depth-first) order. That is fine for
//! evaluation but wasteful for a server scoring every incoming point: the
//! match is an unpredictable branch and the node layout scatters each
//! root-to-leaf path across the allocation.
//!
//! [`CompiledForest`] flattens a trained forest into one contiguous node
//! arena shared by all trees. Each node packs into a single 16-byte record
//! (half the size of the training-time enum node), so one descent step
//! touches exactly one cache line:
//!
//! * `feature: u32` — split feature index, or [`LEAF`] for leaves,
//! * `first_child: u32` — arena index of the `< threshold` child; the
//!   `>=` child is always the next slot, so descending a level is the
//!   branch-free `idx = first_child + (x >= threshold)`,
//! * `threshold: f64` — split threshold; for leaves this slot holds the
//!   leaf's anomaly probability (leaves are encoded inline — no separate
//!   leaf table, no enum tag).
//!
//! Trees are laid out breadth-first, so the top of every tree — the nodes
//! every single prediction touches — sits in a few consecutive cache
//! lines. Predictions are bit-identical to the tree-walk path: the same
//! `x < threshold` comparison picks the same child, the same leaf
//! probabilities accumulate in the same tree order, and the same division
//! produces the same `f64`.

use crate::forest::RandomForest;
use crate::tree::Node;

/// Sentinel in [`PackedNode::feature`] marking a leaf slot.
const LEAF: u32 = u32::MAX;

/// One flattened node: 16 bytes, so a 64-byte cache line holds four.
/// Equality compares thresholds as `f64` values (always finite here) — used
/// by the differential suite to prove two compiled arenas identical.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PackedNode {
    /// Split feature index; `LEAF` marks leaves.
    feature: u32,
    /// Arena index of the `< threshold` child; the `>=` child is
    /// `first_child + 1`. Unused (0) for leaves.
    first_child: u32,
    /// Split threshold; leaf probability for leaf slots.
    threshold: f64,
}

/// A trained [`RandomForest`] flattened for fast inference.
///
/// Build one with [`RandomForest::compile`]; it borrows nothing and can be
/// sent to another thread. Compiling is cheap (one pass over the nodes) and
/// done once per retrain, not per prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledForest {
    /// All trees' nodes, each tree laid out breadth-first.
    nodes: Vec<PackedNode>,
    /// Root slot of each tree, in training order.
    roots: Vec<u32>,
}

impl CompiledForest {
    /// Flattens the trees of a fitted forest.
    ///
    /// # Panics
    ///
    /// Panics if the forest has no trees.
    pub(crate) fn from_forest(forest: &RandomForest) -> CompiledForest {
        assert!(forest.tree_count() > 0, "forest not fitted");
        let total: usize = forest.trees().iter().map(|t| t.node_count()).sum();
        let mut compiled = CompiledForest {
            nodes: Vec::with_capacity(total),
            roots: Vec::with_capacity(forest.tree_count()),
        };
        for tree in forest.trees() {
            let root = compiled.compile_tree(tree.nodes());
            compiled.roots.push(root);
        }
        compiled
    }

    /// Lays out one tree breadth-first so each split's children occupy
    /// adjacent slots. Returns the root's arena index.
    fn compile_tree(&mut self, nodes: &[Node]) -> u32 {
        let root = self.alloc(1);
        // (index into `nodes`, assigned arena slot) — a FIFO gives the
        // breadth-first order; the arena grows exactly nodes.len() slots.
        let mut queue = std::collections::VecDeque::from([(0usize, root)]);
        while let Some((ni, slot)) = queue.pop_front() {
            match nodes[ni] {
                Node::Leaf { prob } => {
                    self.nodes[slot as usize] = PackedNode {
                        feature: LEAF,
                        first_child: 0,
                        threshold: prob,
                    };
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let base = self.alloc(2);
                    self.nodes[slot as usize] = PackedNode {
                        feature: feature as u32,
                        first_child: base,
                        threshold,
                    };
                    queue.push_back((left, base));
                    queue.push_back((right, base + 1));
                }
            }
        }
        root
    }

    /// Reserves `n` zeroed adjacent slots, returning the first index.
    fn alloc(&mut self, n: usize) -> u32 {
        let at = self.nodes.len() as u32;
        self.nodes.resize(
            self.nodes.len() + n,
            PackedNode {
                feature: LEAF,
                first_child: 0,
                threshold: 0.0,
            },
        );
        at
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total arena slots (equals the forest's total node count).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Walks one tree to its leaf probability.
    // The negated comparison is deliberate: it is the exact complement the
    // tree-walk branch takes, including for NaN (see below).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn leaf_prob(&self, root: u32, features: &[f64]) -> f64 {
        let mut node = self.nodes[root as usize];
        while node.feature != LEAF {
            // `!(x < t)` rather than `x >= t` so NaN features take the same
            // (right) branch the tree-walk `if x < t { left } else { right }`
            // takes — bit-identical on *any* input, not just finite ones.
            let right = !(features[node.feature as usize] < node.threshold) as u32;
            node = self.nodes[(node.first_child + right) as usize];
        }
        node.threshold
    }

    /// Anomaly probability of one sample — bit-identical to
    /// [`RandomForest::predict_proba`] on the source forest.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let total: f64 = self
            .roots
            .iter()
            .map(|&root| self.leaf_prob(root, features))
            .sum();
        total / self.roots.len() as f64
    }

    /// Anomaly probabilities of a batch of samples.
    ///
    /// Rows are scored one at a time, trees inner: a row's features (~1 KiB
    /// at 133 features) stay L1-resident across every tree, while the arena
    /// streams through once per row. (A trees-outer row-blocked variant was
    /// measured and lost on realistic arena sizes — the shared top-of-tree
    /// nodes are few, and re-streaming a block of wide rows per tree costs
    /// more than it saves.) Every output is bit-identical to
    /// [`CompiledForest::predict`] (and hence to the tree walk) on the same
    /// row.
    pub fn predict_batch<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<f64> {
        rows.iter().map(|row| self.predict(row.as_ref())).collect()
    }
}

impl RandomForest {
    /// Flattens the fitted forest into a [`CompiledForest`] for serving.
    ///
    /// # Panics
    ///
    /// Panics if the forest has not been fitted.
    pub fn compile(&self) -> CompiledForest {
        CompiledForest::from_forest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestParams;
    use crate::{Classifier, Dataset};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_dataset(n: usize, n_noise: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(2 + n_noise);
        for _ in 0..n {
            let f0: f64 = rng.gen_range(0.0..10.0);
            let f1: f64 = rng.gen_range(0.0..10.0);
            let mut row = vec![f0, f1];
            for _ in 0..n_noise {
                row.push(rng.gen_range(0.0..10.0));
            }
            d.push(&row, f0 + f1 > 10.0);
        }
        d
    }

    #[test]
    fn compiled_matches_tree_walk_bit_for_bit() {
        let train = noisy_dataset(400, 3, 9);
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 17,
            seed: 11,
            ..Default::default()
        });
        f.fit(&train);
        let compiled = f.compile();
        assert_eq!(compiled.tree_count(), 17);
        let probes = noisy_dataset(200, 3, 10);
        for i in 0..probes.len() {
            let walk = f.predict_proba(probes.row(i));
            let fast = compiled.predict(probes.row(i));
            assert_eq!(walk.to_bits(), fast.to_bits(), "row {i}");
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let train = noisy_dataset(300, 0, 12);
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 8,
            ..Default::default()
        });
        f.fit(&train);
        let compiled = f.compile();
        let probes = noisy_dataset(64, 0, 13);
        let rows: Vec<&[f64]> = (0..probes.len()).map(|i| probes.row(i)).collect();
        let batch = compiled.predict_batch(&rows);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), compiled.predict(row).to_bits());
        }
    }

    #[test]
    fn arena_size_matches_source_forest() {
        let train = noisy_dataset(200, 1, 14);
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 5,
            ..Default::default()
        });
        f.fit(&train);
        let compiled = f.compile();
        let total: usize = f.trees().iter().map(|t| t.node_count()).sum();
        assert_eq!(compiled.node_count(), total);
    }

    #[test]
    fn single_leaf_trees_compile() {
        // A constant-label dataset grows pure single-leaf trees.
        let mut d = Dataset::new(1);
        for i in 0..8 {
            d.push(&[i as f64], false);
        }
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 3,
            ..Default::default()
        });
        f.fit(&d);
        let compiled = f.compile();
        assert_eq!(compiled.predict(&[5.0]), 0.0);
        assert_eq!(compiled.predict(&[5.0]), f.predict_proba(&[5.0]));
    }

    #[test]
    #[should_panic(expected = "forest not fitted")]
    fn compiling_unfitted_forest_panics() {
        let f = RandomForest::new(RandomForestParams::default());
        let _ = f.compile();
    }
}
