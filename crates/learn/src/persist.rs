//! Compact binary persistence for trained models.
//!
//! A deployed Opprentice instance retrains weekly (§4.1) but must survive
//! process restarts without waiting a week — so trained forests can be
//! saved and restored. The format is a small custom binary layout (the
//! workspace deliberately avoids general serialization frameworks for model
//! weights):
//!
//! ```text
//! magic "OPRF" | version u16 = 3
//! params:    n_trees u32 | sample_fraction f64 | seed u64
//!            opt u8 (bit0 max_features, bit1 max_depth, bit2 n_bins) | [u32 each]
//! tree_count u32
//! per tree:  n_nodes u32
//! per node:  tag u8 — 0 = leaf { prob f64 }
//!                     1 = split { feature u32, threshold f64, left u32, right u32 }
//! ```
//!
//! All integers are little-endian. Loading validates the magic, version,
//! params, tags and node links. Version history: v1 persisted only the
//! trees (restores silently got default hyperparameters); v2 is the
//! session-snapshot container in `opprentice-core`, which shares the
//! `OPRF` magic — forest files skip it so the two decoders reject each
//! other's bytes with a clear version error; v3 adds the hyperparameter
//! block so a restored forest refits exactly like the original.

use crate::forest::{RandomForest, RandomForestParams};
use crate::tree::{from_nodes, DecisionTree, Node, TreeParams};
use bytes::{Buf, BufMut};

const MAGIC: &[u8; 4] = b"OPRF";
const VERSION: u16 = 3;

/// Errors produced when decoding a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The magic bytes did not match.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// An unknown node tag was encountered.
    BadTag(u8),
    /// A split node referenced a node index out of range.
    BadLink(u32),
    /// A tree contained no nodes.
    EmptyTree,
    /// Bytes remained after the last tree.
    TrailingBytes(usize),
    /// A hyperparameter field held a value outside its legal domain.
    BadParam(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "buffer truncated"),
            PersistError::BadMagic => write!(f, "bad magic bytes"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::BadTag(t) => write!(f, "unknown node tag {t}"),
            PersistError::BadLink(i) => write!(f, "node link {i} out of range"),
            PersistError::EmptyTree => write!(f, "tree with no nodes"),
            PersistError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last tree"),
            PersistError::BadParam(name) => write!(f, "hyperparameter `{name}` out of domain"),
        }
    }
}

impl std::error::Error for PersistError {}

fn encode_params(p: &RandomForestParams, out: &mut Vec<u8>) {
    out.put_u32_le(p.n_trees as u32);
    out.put_f64_le(p.sample_fraction);
    out.put_u64_le(p.seed);
    let opt = u8::from(p.max_features.is_some())
        | u8::from(p.max_depth.is_some()) << 1
        | u8::from(p.n_bins.is_some()) << 2;
    out.put_u8(opt);
    for field in [p.max_features, p.max_depth, p.n_bins]
        .into_iter()
        .flatten()
    {
        out.put_u32_le(field as u32);
    }
}

fn decode_params(buf: &mut &[u8]) -> Result<RandomForestParams, PersistError> {
    if buf.remaining() < 4 + 8 + 8 + 1 {
        return Err(PersistError::Truncated);
    }
    let n_trees = buf.get_u32_le() as usize;
    let sample_fraction = buf.get_f64_le();
    if !(sample_fraction.is_finite() && sample_fraction > 0.0) {
        return Err(PersistError::BadParam("sample_fraction"));
    }
    let seed = buf.get_u64_le();
    let opt = buf.get_u8();
    if opt > 0b111 {
        return Err(PersistError::BadParam("optional-params bitmap"));
    }
    let mut opt_field = |bit: u8| -> Result<Option<usize>, PersistError> {
        if opt & (1 << bit) == 0 {
            return Ok(None);
        }
        if buf.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        Ok(Some(buf.get_u32_le() as usize))
    };
    Ok(RandomForestParams {
        n_trees,
        max_features: opt_field(0)?,
        sample_fraction,
        max_depth: opt_field(1)?,
        n_bins: opt_field(2)?,
        seed,
    })
}

fn encode_tree(tree: &DecisionTree, out: &mut Vec<u8>) {
    let nodes = tree.nodes();
    out.put_u32_le(nodes.len() as u32);
    for node in nodes {
        match node {
            Node::Leaf { prob } => {
                out.put_u8(0);
                out.put_f64_le(*prob);
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                out.put_u8(1);
                out.put_u32_le(*feature as u32);
                out.put_f64_le(*threshold);
                out.put_u32_le(*left as u32);
                out.put_u32_le(*right as u32);
            }
        }
    }
}

fn decode_tree(buf: &mut &[u8]) -> Result<DecisionTree, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    let n_nodes = buf.get_u32_le() as usize;
    if n_nodes == 0 {
        return Err(PersistError::EmptyTree);
    }
    // The smallest node (a leaf) takes 9 bytes, so a hostile count larger
    // than the bytes could possibly hold must not reach the allocator.
    if n_nodes as u64 * 9 > buf.remaining() as u64 {
        return Err(PersistError::Truncated);
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        if buf.remaining() < 1 {
            return Err(PersistError::Truncated);
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < 8 {
                    return Err(PersistError::Truncated);
                }
                nodes.push(Node::leaf(buf.get_f64_le()));
            }
            1 => {
                if buf.remaining() < 4 + 8 + 4 + 4 {
                    return Err(PersistError::Truncated);
                }
                let feature = buf.get_u32_le() as usize;
                let threshold = buf.get_f64_le();
                let left = buf.get_u32_le();
                let right = buf.get_u32_le();
                for link in [left, right] {
                    if link as usize >= n_nodes {
                        return Err(PersistError::BadLink(link));
                    }
                }
                nodes.push(Node::split(
                    feature,
                    threshold,
                    left as usize,
                    right as usize,
                ));
            }
            t => return Err(PersistError::BadTag(t)),
        }
    }
    Ok(from_nodes(TreeParams::default(), nodes))
}

impl RandomForest {
    /// Serializes the trained trees to the compact binary format.
    ///
    /// # Panics
    ///
    /// Panics if the forest has not been fitted.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.tree_count() > 0, "forest not fitted");
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.put_u16_le(VERSION);
        encode_params(self.params(), &mut out);
        out.put_u32_le(self.tree_count() as u32);
        for tree in self.trees() {
            encode_tree(tree, &mut out);
        }
        out
    }

    /// Restores a forest from [`RandomForest::to_bytes`] output. The
    /// restored forest scores identically to the original and carries the
    /// original hyperparameters, so refitting it reproduces the original
    /// training exactly.
    pub fn from_bytes(mut buf: &[u8]) -> Result<RandomForest, PersistError> {
        if buf.remaining() < 4 + 2 {
            return Err(PersistError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let params = decode_params(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        let n_trees = buf.get_u32_le() as usize;
        // The smallest tree (count + one leaf) takes 13 bytes; bound the
        // allocation by what the buffer could possibly hold.
        if n_trees as u64 * 13 > buf.remaining() as u64 {
            return Err(PersistError::Truncated);
        }
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            trees.push(decode_tree(&mut buf)?);
        }
        if buf.has_remaining() {
            return Err(PersistError::TrailingBytes(buf.remaining()));
        }
        Ok(RandomForest::from_trees(params, trees))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestParams;
    use crate::{Classifier, Dataset};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_forest() -> (RandomForest, Dataset) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut d = Dataset::new(3);
        for _ in 0..400 {
            let row = [
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
            ];
            d.push(&row, row[0] + row[1] > 10.0);
        }
        let mut f = RandomForest::new(RandomForestParams {
            n_trees: 9,
            ..Default::default()
        });
        f.fit(&d);
        (f, d)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (forest, data) = trained_forest();
        let bytes = forest.to_bytes();
        let restored = RandomForest::from_bytes(&bytes).unwrap();
        assert_eq!(restored.tree_count(), forest.tree_count());
        for i in 0..data.len() {
            assert_eq!(
                forest.predict_proba(data.row(i)),
                restored.predict_proba(data.row(i)),
                "row {i}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let (forest, _) = trained_forest();
        let mut bytes = forest.to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            RandomForest::from_bytes(&bytes).err(),
            Some(PersistError::BadMagic)
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let (forest, _) = trained_forest();
        let mut bytes = forest.to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            RandomForest::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let (forest, _) = trained_forest();
        let bytes = forest.to_bytes();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                RandomForest::from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
    }

    #[test]
    fn corrupt_tag_rejected() {
        let (forest, _) = trained_forest();
        let mut bytes = forest.to_bytes();
        // First node tag lives right after magic + version + params block
        // (fixed fields + opt byte + one optional u32: the default n_bins)
        // + tree count + first tree's node count.
        let idx = 4 + 2 + (4 + 8 + 8 + 1 + 4) + 4 + 4;
        bytes[idx] = 7;
        assert_eq!(
            RandomForest::from_bytes(&bytes).err(),
            Some(PersistError::BadTag(7))
        );
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert_eq!(PersistError::Truncated.to_string(), "buffer truncated");
        assert!(PersistError::BadLink(9).to_string().contains('9'));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (forest, _) = trained_forest();
        let mut bytes = forest.to_bytes();
        bytes.push(0xAB);
        assert_eq!(
            RandomForest::from_bytes(&bytes).err(),
            Some(PersistError::TrailingBytes(1))
        );
    }

    /// Magic + version + a minimal valid params block (no optional fields).
    fn header_with_params() -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"OPRF");
        bytes.put_u16_le(3);
        bytes.put_u32_le(1); // params.n_trees
        bytes.put_f64_le(1.0); // sample_fraction
        bytes.put_u64_le(42); // seed
        bytes.put_u8(0); // no optional fields
        bytes
    }

    #[test]
    fn hostile_tree_count_cannot_allocate() {
        // Header claims u32::MAX trees but carries no tree bytes: must be
        // rejected before any allocation sized by the count.
        let mut bytes = header_with_params();
        bytes.put_u32_le(u32::MAX);
        assert_eq!(
            RandomForest::from_bytes(&bytes).err(),
            Some(PersistError::Truncated)
        );
    }

    #[test]
    fn hostile_node_count_cannot_allocate() {
        // One tree claiming u32::MAX nodes, backed by a single leaf.
        let mut bytes = header_with_params();
        bytes.put_u32_le(1);
        bytes.put_u32_le(u32::MAX);
        bytes.put_u8(0);
        bytes.put_f64_le(0.5);
        assert_eq!(
            RandomForest::from_bytes(&bytes).err(),
            Some(PersistError::Truncated)
        );
    }

    #[test]
    fn hyperparameters_round_trip() {
        // Every non-default field survives persistence, so a restored
        // forest refits exactly like the original (the v1 format silently
        // reset restores to default hyperparameters).
        let params = RandomForestParams {
            n_trees: 5,
            max_features: Some(2),
            sample_fraction: 0.75,
            max_depth: Some(9),
            n_bins: None,
            seed: 0xDEAD_BEEF,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dataset::new(2);
        for _ in 0..120 {
            let row = [rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)];
            d.push(&row, row[0] > 5.0);
        }
        let mut f = RandomForest::new(params.clone());
        f.fit(&d);
        let restored = RandomForest::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(restored.params(), &params);

        // Refitting the restored forest reproduces the original training.
        let mut refit = RandomForest::new(restored.params().clone());
        refit.fit(&d);
        for i in 0..d.len() {
            assert_eq!(refit.predict_proba(d.row(i)), f.predict_proba(d.row(i)));
        }
    }

    #[test]
    fn bad_sample_fraction_rejected() {
        let (forest, _) = trained_forest();
        let mut bytes = forest.to_bytes();
        // sample_fraction sits right after magic + version + n_trees.
        let at = 4 + 2 + 4;
        bytes[at..at + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(
            RandomForest::from_bytes(&bytes).err(),
            Some(PersistError::BadParam("sample_fraction"))
        );
    }
}
