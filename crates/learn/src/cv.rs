//! Contiguous k-fold splits.
//!
//! §4.5.2's baseline cThld predictor: "a historical training set is divided
//! into k subsets of the same length. In each test (k tests in total), a
//! classifier is trained using k−1 of the subsets and tested on the rest
//! one with a cThld candidate." Folds are *contiguous* because the data is
//! a time series — shuffling points across time would leak seasonal
//! context between train and test.

/// One train/test split: row ranges into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Row indices of the training portion.
    pub train: Vec<usize>,
    /// Row indices of the held-out portion (one contiguous block).
    pub test: std::ops::Range<usize>,
}

/// Splits `n` samples into `k` contiguous folds. Earlier folds absorb the
/// remainder, so fold sizes differ by at most one.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn k_fold(n: usize, k: usize) -> Vec<Fold> {
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "more folds than samples");
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let test = start..start + len;
        let train = (0..n).filter(|i| !test.contains(i)).collect();
        folds.push(Fold { train, test });
        start += len;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_the_data() {
        let folds = k_fold(103, 5);
        assert_eq!(folds.len(), 5);
        let mut covered = [false; 103];
        for f in &folds {
            for i in f.test.clone() {
                assert!(!covered[i], "index {i} in two test folds");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = k_fold(103, 5);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 20 || s == 21));
    }

    #[test]
    fn train_and_test_are_disjoint_and_complete() {
        for f in k_fold(50, 5) {
            assert_eq!(f.train.len() + f.test.len(), 50);
            for &i in &f.train {
                assert!(!f.test.contains(&i));
            }
        }
    }

    #[test]
    fn test_blocks_are_contiguous_and_ordered() {
        let folds = k_fold(60, 4);
        for w in folds.windows(2) {
            assert_eq!(w[0].test.end, w[1].test.start);
        }
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_rejected() {
        let _ = k_fold(3, 5);
    }
}
