//! Mutual-information feature ranking.
//!
//! §5.3.2: "The features are added in the order of their mutual information
//! [51], a common metric of feature selection." Each feature is discretized
//! into quantile bins and its MI with the binary label computed; the
//! Fig. 10 experiment trains every learner on the top-k features for
//! growing k.

use crate::Dataset;

/// Number of quantile bins used to discretize a feature.
const BINS: usize = 16;

/// Mutual information (nats) between quantile-binned `values` and the
/// binary `labels`.
pub fn mutual_information(values: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(values.len(), labels.len(), "length mismatch");
    let n = values.len();
    if n == 0 {
        return 0.0;
    }

    // Quantile bin edges.
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let edges: Vec<f64> = (1..BINS).map(|b| sorted[b * n / BINS]).collect();
    let bin_of = |v: f64| edges.partition_point(|&e| e <= v);

    let mut joint = [[0usize; 2]; BINS];
    let mut label_count = [0usize; 2];
    for (&v, &l) in values.iter().zip(labels) {
        joint[bin_of(v)][l as usize] += 1;
        label_count[l as usize] += 1;
    }

    let nf = n as f64;
    let mut mi = 0.0;
    for row in &joint {
        let bin_total = (row[0] + row[1]) as f64;
        if bin_total == 0.0 {
            continue;
        }
        for y in 0..2 {
            let c = row[y] as f64;
            if c == 0.0 || label_count[y] == 0 {
                continue;
            }
            let p_xy = c / nf;
            let p_x = bin_total / nf;
            let p_y = label_count[y] as f64 / nf;
            mi += p_xy * (p_xy / (p_x * p_y)).ln();
        }
    }
    mi.max(0.0)
}

/// Ranks all feature columns by mutual information with the labels,
/// descending. Returns `(column, mi)` pairs.
pub fn rank_features(data: &Dataset) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = (0..data.n_features())
        .map(|c| (c, mutual_information(&data.column(c), data.labels())))
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite MI")
            .then(a.0.cmp(&b.0))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_informative_feature_has_high_mi() {
        let labels: Vec<bool> = (0..1000).map(|i| i % 5 == 0).collect();
        let values: Vec<f64> = labels.iter().map(|&l| if l { 10.0 } else { 0.0 }).collect();
        let mi = mutual_information(&values, &labels);
        // Upper bound is H(Y) = 0.2 ln(1/0.2) + 0.8 ln(1/0.8) ≈ 0.5 nats.
        assert!(mi > 0.4, "mi {mi}");
    }

    #[test]
    fn independent_feature_has_near_zero_mi() {
        let labels: Vec<bool> = (0..2000).map(|i| i % 5 == 0).collect();
        let values: Vec<f64> = (0..2000)
            .map(|i| ((i * 2654435761usize) % 997) as f64)
            .collect();
        let mi = mutual_information(&values, &labels);
        assert!(mi < 0.02, "mi {mi}");
    }

    #[test]
    fn constant_feature_has_zero_mi() {
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let mi = mutual_information(&[3.0; 100], &labels);
        assert!(mi.abs() < 1e-12);
    }

    #[test]
    fn ranking_puts_informative_feature_first() {
        let mut d = Dataset::new(3);
        for i in 0..500 {
            let label = i % 4 == 0;
            let informative = if label { 5.0 } else { 0.0 };
            let noisy = ((i * 7919) % 100) as f64;
            let partial = if label { 3.0 } else { ((i * 31) % 6) as f64 };
            d.push(&[noisy, informative, partial], label);
        }
        let ranked = rank_features(&d);
        assert_eq!(ranked[0].0, 1, "{ranked:?}");
        assert_eq!(ranked[2].0, 0, "{ranked:?}");
        assert!(ranked[0].1 > ranked[1].1 && ranked[1].1 > ranked[2].1);
    }

    #[test]
    fn mi_is_symmetric_under_label_flip() {
        let labels: Vec<bool> = (0..400).map(|i| i % 3 == 0).collect();
        let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
        let values: Vec<f64> = (0..400).map(|i| (i % 7) as f64).collect();
        let a = mutual_information(&values, &labels);
        let b = mutual_information(&values, &flipped);
        assert!((a - b).abs() < 1e-12);
    }
}
