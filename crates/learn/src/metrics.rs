//! Precision/recall machinery (§2.2, §4.5.1, §5.3).
//!
//! "We use recall (# of true anomalous points detected / # of true anomalous
//! points) and precision (# of true anomalous points detected / # of
//! anomalous points detected) to measure the detection accuracy … A PR curve
//! plots precision against recall for every possible cThld … we use the area
//! under the PR curve (AUCPR) as the accuracy measure."

/// One operating point on a PR curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// The score threshold that produces this point (predict anomaly when
    /// `score >= threshold`).
    pub threshold: f64,
    /// Recall at this threshold.
    pub recall: f64,
    /// Precision at this threshold.
    pub precision: f64,
}

/// Recall and precision of binary predictions against ground truth.
/// Precision of zero predictions is defined as 1 (no false alarms).
pub fn precision_recall(predicted: &[bool], truth: &[bool]) -> (f64, f64) {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&p, &t) in predicted.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    (recall, precision)
}

/// The F-Score (harmonic mean) of a PR point: `2·p·r / (p + r)`.
pub fn f_score(recall: f64, precision: f64) -> f64 {
    if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    }
}

/// Builds the PR curve of anomaly scores against ground truth: one point per
/// distinct score threshold, ordered from the highest threshold (low recall)
/// to the lowest (recall 1). Samples without a score (`None`, e.g. detector
/// warm-up) are excluded from both counts, matching §4.3.2's skip rule.
pub fn pr_curve(scores: &[Option<f64>], truth: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    let mut pairs: Vec<(f64, bool)> = scores
        .iter()
        .zip(truth)
        .filter_map(|(s, &t)| s.map(|s| (s, t)))
        .collect();
    let total_pos = pairs.iter().filter(|(_, t)| *t).count() as f64;
    if pairs.is_empty() || total_pos == 0.0 {
        return Vec::new();
    }
    // Descending by score: lowering the threshold admits points in order.
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));

    let mut out = Vec::new();
    let mut tp = 0.0;
    let mut predicted = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let threshold = pairs[i].0;
        // Admit every sample tied at this score.
        while i < pairs.len() && pairs[i].0 == threshold {
            predicted += 1.0;
            if pairs[i].1 {
                tp += 1.0;
            }
            i += 1;
        }
        out.push(PrPoint {
            threshold,
            recall: tp / total_pos,
            precision: tp / predicted,
        });
    }
    out
}

/// Area under the PR curve [50], computed as average precision (the
/// step-function integral over recall). Returns 0 for an empty curve.
pub fn auc_pr(curve: &[PrPoint]) -> f64 {
    let mut area = 0.0;
    let mut prev_recall = 0.0;
    for p in curve {
        area += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    area
}

/// Convenience: AUCPR directly from scores and truth.
pub fn auc_pr_of(scores: &[Option<f64>], truth: &[bool]) -> f64 {
    auc_pr(&pr_curve(scores, truth))
}

/// The maximum precision among curve points with `recall >= min_recall` —
/// Table 4's "maximum precision when recall ≥ 0.66". `None` when the curve
/// never reaches the recall bar.
pub fn max_precision_at_recall(curve: &[PrPoint], min_recall: f64) -> Option<f64> {
    curve
        .iter()
        .filter(|p| p.recall >= min_recall)
        .map(|p| p.precision)
        .max_by(|a, b| a.partial_cmp(b).expect("finite precision"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some(v: &[f64]) -> Vec<Option<f64>> {
        v.iter().map(|&x| Some(x)).collect()
    }

    #[test]
    fn precision_recall_basics() {
        let predicted = [true, true, false, false];
        let truth = [true, false, true, false];
        let (r, p) = precision_recall(&predicted, &truth);
        assert_eq!(r, 0.5);
        assert_eq!(p, 0.5);
    }

    #[test]
    fn no_predictions_has_perfect_precision() {
        let (r, p) = precision_recall(&[false, false], &[true, false]);
        assert_eq!(r, 0.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn f_score_harmonic_mean() {
        assert_eq!(f_score(1.0, 1.0), 1.0);
        assert_eq!(f_score(0.0, 1.0), 0.0);
        assert!((f_score(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let scores = some(&[0.9, 0.8, 0.1, 0.2]);
        let truth = [true, true, false, false];
        let curve = pr_curve(&scores, &truth);
        assert!((auc_pr(&curve) - 1.0).abs() < 1e-12);
        // The top point: recall 0.5, precision 1.
        assert_eq!(curve[0].recall, 0.5);
        assert_eq!(curve[0].precision, 1.0);
    }

    #[test]
    fn inverted_scores_give_low_auc() {
        let scores = some(&[0.1, 0.2, 0.9, 0.8]);
        let truth = [true, true, false, false];
        let auc = auc_pr_of(&scores, &truth);
        assert!(auc < 0.5, "auc {auc}");
    }

    #[test]
    fn random_scores_auc_near_prevalence() {
        // With uninformative scores, AUCPR ≈ positive prevalence.
        let n = 20_000;
        let scores: Vec<Option<f64>> = (0..n)
            .map(|i| Some(((i * 2654435761usize) % 1000) as f64))
            .collect();
        let truth: Vec<bool> = (0..n).map(|i| (i * 40503) % 10 == 0).collect();
        let auc = auc_pr_of(&scores, &truth);
        assert!((auc - 0.1).abs() < 0.03, "auc {auc}");
    }

    #[test]
    fn ties_are_admitted_together() {
        let scores = some(&[0.5, 0.5, 0.5]);
        let truth = [true, false, true];
        let curve = pr_curve(&scores, &truth);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].recall, 1.0);
        assert!((curve[0].precision - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn warm_up_points_are_excluded() {
        let scores = vec![None, Some(0.9), Some(0.1)];
        let truth = [true, true, false];
        let curve = pr_curve(&scores, &truth);
        // Only one positive is scored; full recall reachable.
        assert_eq!(curve.last().unwrap().recall, 1.0);
    }

    #[test]
    fn empty_or_positive_free_curve_is_empty() {
        assert!(pr_curve(&[], &[]).is_empty());
        let scores = some(&[0.1, 0.2]);
        assert!(pr_curve(&scores, &[false, false]).is_empty());
    }

    #[test]
    fn recall_is_monotone_along_curve() {
        let scores = some(&[0.9, 0.1, 0.5, 0.7, 0.3, 0.8]);
        let truth = [true, false, true, false, true, true];
        let curve = pr_curve(&scores, &truth);
        for w in curve.windows(2) {
            assert!(w[0].recall <= w[1].recall);
            assert!(w[0].threshold > w[1].threshold);
        }
        assert_eq!(curve.last().unwrap().recall, 1.0);
    }

    #[test]
    fn max_precision_at_recall_table4_semantics() {
        let curve = vec![
            PrPoint {
                threshold: 0.9,
                recall: 0.3,
                precision: 1.0,
            },
            PrPoint {
                threshold: 0.5,
                recall: 0.7,
                precision: 0.8,
            },
            PrPoint {
                threshold: 0.1,
                recall: 1.0,
                precision: 0.4,
            },
        ];
        assert_eq!(max_precision_at_recall(&curve, 0.66), Some(0.8));
        assert_eq!(max_precision_at_recall(&curve, 0.99), Some(0.4));
        assert_eq!(max_precision_at_recall(&curve, 2.0), None);
    }
}
