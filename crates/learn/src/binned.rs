//! Histogram-binned tree construction for random forests.
//!
//! Exact CART re-sorts each feature at every node — O(k · n log n) per
//! level — which is too slow for weekly retraining over months of KPI data
//! on a small host. The standard remedy (as in gradient-boosting systems)
//! is to pre-discretize each feature into quantile bins once per training
//! set; a split candidate is then a bin boundary and each node costs
//! O(k · n + k · bins). Split thresholds are mapped back to raw feature
//! values, so trained trees classify ordinary `f64` rows.
//!
//! Accuracy impact is negligible here: severities are features, and a
//! 64-quantile resolution vastly exceeds what a detector threshold needs.

use crate::tree::{from_nodes, DecisionTree, Node, TreeParams};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dataset pre-discretized into per-feature quantile bins.
#[derive(Debug, Clone)]
pub(crate) struct BinnedDataset {
    n_features: usize,
    /// Row-major bin codes; `code = #edges <= value`.
    codes: Vec<u16>,
    /// Per feature: ascending distinct bin edges. A split "code <= b" is
    /// equivalent to "value < edges[b]".
    edges: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl BinnedDataset {
    /// Bins `data` into at most `n_bins` quantile bins per feature.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins < 2` or `n_bins > u16::MAX as usize`.
    pub(crate) fn from_dataset(data: &Dataset, n_bins: usize) -> Self {
        assert!((2..=u16::MAX as usize).contains(&n_bins), "bad bin count");
        let n = data.len();
        let m = data.n_features();
        let mut edges: Vec<Vec<f64>> = Vec::with_capacity(m);
        for f in 0..m {
            let mut col = data.column(f);
            col.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            let mut e: Vec<f64> = (1..n_bins).map(|b| col[b * n / n_bins]).collect();
            e.dedup();
            // Drop edges equal to the global minimum: they can never split.
            while e.first().is_some_and(|&x| x <= col[0]) {
                e.remove(0);
            }
            edges.push(e);
        }
        let mut codes = Vec::with_capacity(n * m);
        for i in 0..n {
            let row = data.row(i);
            for f in 0..m {
                codes.push(edges[f].partition_point(|&e| e <= row[f]) as u16);
            }
        }
        Self {
            n_features: m,
            codes,
            edges,
            labels: data.labels().to_vec(),
        }
    }

    pub(crate) fn n_features(&self) -> usize {
        self.n_features
    }

    pub(crate) fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    #[inline]
    pub(crate) fn code(&self, i: usize, f: usize) -> u16 {
        self.codes[i * self.n_features + f]
    }

    /// Number of candidate split boundaries for feature `f`.
    pub(crate) fn n_edges(&self, f: usize) -> usize {
        self.edges[f].len()
    }

    /// The raw-value threshold of split boundary `b` of feature `f`.
    pub(crate) fn threshold(&self, f: usize, b: usize) -> f64 {
        self.edges[f][b]
    }
}

/// Finds the gini-optimal `(feature, boundary)` among `features`, scanning
/// bin histograms. Returns `None` when nothing separates the node.
pub(crate) fn best_binned_split(
    data: &BinnedDataset,
    indices: &[usize],
    features: &[usize],
    scratch: &mut Vec<[f64; 2]>,
) -> Option<(usize, usize)> {
    let n = indices.len() as f64;
    let total_pos = indices.iter().filter(|&&i| data.label(i)).count() as f64;
    let mut best: Option<(f64, usize, usize)> = None;

    for &f in features {
        let n_edges = data.n_edges(f);
        if n_edges == 0 {
            continue;
        }
        scratch.clear();
        scratch.resize(n_edges + 1, [0.0; 2]);
        for &i in indices {
            scratch[data.code(i, f) as usize][data.label(i) as usize] += 1.0;
        }
        let mut left_n = 0.0;
        let mut left_pos = 0.0;
        // Candidate b: left = codes 0..=b, i.e. value < edges[b].
        for (b, bucket) in scratch.iter().enumerate().take(n_edges) {
            left_n += bucket[0] + bucket[1];
            left_pos += bucket[1];
            if left_n == 0.0 || left_n == n {
                continue;
            }
            let right_n = n - left_n;
            let right_pos = total_pos - left_pos;
            let gini = |cnt: f64, pos: f64| {
                let p = pos / cnt;
                2.0 * p * (1.0 - p)
            };
            let weighted =
                (left_n / n) * gini(left_n, left_pos) + (right_n / n) * gini(right_n, right_pos);
            if best.is_none_or(|(w, _, _)| weighted < w) {
                best = Some((weighted, f, b));
            }
        }
    }
    best.map(|(_, f, b)| (f, b))
}

/// Recursive histogram-based tree builder matching the exact builder's
/// stopping rules (purity, `min_samples_split`, depth cap, no usable split).
#[allow(clippy::too_many_arguments)] // recursion state; a struct would add no clarity
fn build(
    data: &BinnedDataset,
    params: &TreeParams,
    nodes: &mut Vec<Node>,
    indices: &mut [usize],
    depth: usize,
    rng: &mut StdRng,
    feature_pool: &mut Vec<usize>,
    scratch: &mut Vec<[f64; 2]>,
) -> usize {
    let n = indices.len();
    let positives = indices.iter().filter(|&&i| data.label(i)).count();
    let prob = positives as f64 / n as f64;

    let depth_capped = params.max_depth.is_some_and(|d| depth >= d);
    if positives == 0 || positives == n || n < params.min_samples_split || depth_capped {
        nodes.push(Node::leaf(prob));
        return nodes.len() - 1;
    }

    let m = data.n_features();
    let k = params.max_features.unwrap_or(m).clamp(1, m);
    if k < m {
        feature_pool.shuffle(rng);
    }
    let chosen: Vec<usize> = feature_pool.iter().copied().take(k).collect();

    match best_binned_split(data, indices, &chosen, scratch) {
        None => {
            nodes.push(Node::leaf(prob));
            nodes.len() - 1
        }
        Some((feature, boundary)) => {
            let mut mid = 0usize;
            for i in 0..n {
                if data.code(indices[i], feature) as usize <= boundary {
                    indices.swap(i, mid);
                    mid += 1;
                }
            }
            if mid == 0 || mid == n {
                // The chosen boundary did not separate this node (can happen
                // when every sample sits on one side of every edge).
                nodes.push(Node::leaf(prob));
                return nodes.len() - 1;
            }
            let threshold = data.threshold(feature, boundary);
            let placeholder = nodes.len();
            nodes.push(Node::leaf(prob)); // replaced below
            let (left_ids, right_ids) = indices.split_at_mut(mid);
            let left = build(
                data,
                params,
                nodes,
                left_ids,
                depth + 1,
                rng,
                feature_pool,
                scratch,
            );
            let right = build(
                data,
                params,
                nodes,
                right_ids,
                depth + 1,
                rng,
                feature_pool,
                scratch,
            );
            nodes[placeholder] = Node::split(feature, threshold, left, right);
            placeholder
        }
    }
}

/// Fits a tree on pre-binned data over the given row indices — the
/// histogram entry point used by the random forest.
pub(crate) fn fit_binned(
    params: TreeParams,
    data: &BinnedDataset,
    indices: &mut [usize],
) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut nodes = Vec::new();
    let mut feature_pool: Vec<usize> = (0..data.n_features()).collect();
    let mut scratch = Vec::new();
    build(
        data,
        &params,
        &mut nodes,
        indices,
        0,
        &mut rng,
        &mut feature_pool,
        &mut scratch,
    );
    from_nodes(params, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..100 {
            d.push(&[i as f64, (i % 7) as f64], i >= 60);
        }
        d
    }

    #[test]
    fn codes_are_monotone_in_value() {
        let d = toy();
        let b = BinnedDataset::from_dataset(&d, 16);
        for i in 1..d.len() {
            assert!(b.code(i, 0) >= b.code(i - 1, 0));
        }
    }

    #[test]
    fn threshold_consistent_with_codes() {
        let d = toy();
        let b = BinnedDataset::from_dataset(&d, 16);
        // For every sample and boundary: code <= b  <=>  value < threshold.
        for i in 0..d.len() {
            let v = d.row(i)[0];
            for bd in 0..b.n_edges(0) {
                let by_code = b.code(i, 0) as usize <= bd;
                let by_value = v < b.threshold(0, bd);
                assert_eq!(by_code, by_value, "i={i} b={bd}");
            }
        }
    }

    #[test]
    fn best_split_separates_the_classes() {
        let d = toy();
        let b = BinnedDataset::from_dataset(&d, 32);
        let indices: Vec<usize> = (0..d.len()).collect();
        let mut scratch = Vec::new();
        let (f, bd) = best_binned_split(&b, &indices, &[0, 1], &mut scratch).unwrap();
        assert_eq!(f, 0);
        let t = b.threshold(f, bd);
        assert!((55.0..=65.0).contains(&t), "threshold {t}");
    }

    #[test]
    fn constant_feature_has_no_edges() {
        let mut d = Dataset::new(1);
        for _ in 0..50 {
            d.push(&[5.0], false);
        }
        let b = BinnedDataset::from_dataset(&d, 8);
        assert_eq!(b.n_edges(0), 0);
        let indices: Vec<usize> = (0..50).collect();
        let mut scratch = Vec::new();
        assert_eq!(best_binned_split(&b, &indices, &[0], &mut scratch), None);
    }

    #[test]
    fn binned_tree_is_pure_on_training_data() {
        let d = toy();
        let b = BinnedDataset::from_dataset(&d, 64);
        let mut indices: Vec<usize> = (0..d.len()).collect();
        let t = fit_binned(TreeParams::default(), &b, &mut indices);
        for i in 0..d.len() {
            assert_eq!(t.predict_proba(d.row(i)) >= 0.5, d.label(i), "row {i}");
        }
    }

    #[test]
    fn binned_tree_respects_depth_cap() {
        let d = toy();
        let b = BinnedDataset::from_dataset(&d, 64);
        let mut indices: Vec<usize> = (0..d.len()).collect();
        let t = fit_binned(
            TreeParams {
                max_depth: Some(2),
                ..Default::default()
            },
            &b,
            &mut indices,
        );
        assert!(t.depth() <= 2);
    }

    #[test]
    fn duplicate_heavy_feature_dedups_edges() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push(&[if i < 90 { 0.0 } else { 1.0 }], i >= 90);
        }
        let b = BinnedDataset::from_dataset(&d, 16);
        assert!(b.n_edges(0) >= 1);
        let indices: Vec<usize> = (0..100).collect();
        let mut scratch = Vec::new();
        let (_, bd) = best_binned_split(&b, &indices, &[0], &mut scratch).unwrap();
        let t = b.threshold(0, bd);
        assert!(t > 0.0 && t <= 1.0, "threshold {t}");
    }
}
