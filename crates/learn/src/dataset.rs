//! The training/test set container: a dense feature matrix with binary
//! labels. Rows are data points (§4.3.1: Opprentice trains and classifies
//! individual points, not windows), columns are detector configurations.

/// A dense, row-major supervised dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    n_features: usize,
    features: Vec<f64>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset with `n_features` columns.
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0`.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        Self {
            n_features,
            features: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Builds a dataset from row-major features and labels.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or non-finite features.
    pub fn from_rows(n_features: usize, features: Vec<f64>, labels: Vec<bool>) -> Self {
        assert!(n_features > 0, "need at least one feature");
        assert_eq!(features.len(), labels.len() * n_features, "shape mismatch");
        assert!(features.iter().all(|f| f.is_finite()), "non-finite feature");
        Self {
            n_features,
            features,
            labels,
        }
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_features` or a feature is not finite.
    pub fn push(&mut self, row: &[f64], label: bool) {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        assert!(row.iter().all(|f| f.is_finite()), "non-finite feature");
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature row of sample `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The label of sample `i`.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Count of anomalous samples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// A new dataset holding the given rows (by index, order preserved).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        for &i in indices {
            out.push(self.row(i), self.label(i));
        }
        out
    }

    /// A new dataset with only the selected feature columns (in the given
    /// order) — used by the Fig. 10 incremental-features experiment.
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        assert!(!columns.is_empty(), "need at least one column");
        assert!(
            columns.iter().all(|&c| c < self.n_features),
            "column out of range"
        );
        let mut features = Vec::with_capacity(self.len() * columns.len());
        for i in 0..self.len() {
            let row = self.row(i);
            features.extend(columns.iter().map(|&c| row[c]));
        }
        Dataset {
            n_features: columns.len(),
            features,
            labels: self.labels.clone(),
        }
    }

    /// Concatenates another dataset's samples after this one's.
    ///
    /// # Panics
    ///
    /// Panics if the feature counts differ.
    pub fn extend(&mut self, other: &Dataset) {
        assert_eq!(self.n_features, other.n_features, "feature count mismatch");
        self.features.extend_from_slice(&other.features);
        self.labels.extend_from_slice(&other.labels);
    }

    /// The contiguous sub-dataset `range`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Dataset {
        Dataset {
            n_features: self.n_features,
            features: self.features[range.start * self.n_features..range.end * self.n_features]
                .to_vec(),
            labels: self.labels[range].to_vec(),
        }
    }

    /// Column `c` copied out.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.len()).map(|i| self.row(i)[c]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 10.0], false);
        d.push(&[2.0, 20.0], true);
        d.push(&[3.0, 30.0], false);
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[2.0, 20.0]);
        assert!(d.label(1));
        assert_eq!(d.positives(), 1);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_width_rejected() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], false);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let mut d = Dataset::new(1);
        d.push(&[f64::NAN], false);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[3.0, 30.0]);
        assert_eq!(s.row(1), &[1.0, 10.0]);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = toy();
        let p = d.select_features(&[1]);
        assert_eq!(p.n_features(), 1);
        assert_eq!(p.row(2), &[30.0]);
        assert_eq!(p.labels(), d.labels());
    }

    #[test]
    fn extend_concatenates() {
        let mut d = toy();
        let e = toy();
        d.extend(&e);
        assert_eq!(d.len(), 6);
        assert_eq!(d.row(5), &[3.0, 30.0]);
    }

    #[test]
    fn slice_is_contiguous_range() {
        let d = toy();
        let s = d.slice(1..3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[2.0, 20.0]);
    }

    #[test]
    fn column_extraction() {
        let d = toy();
        assert_eq!(d.column(1), vec![10.0, 20.0, 30.0]);
    }
}
