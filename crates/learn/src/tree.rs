//! CART decision trees with gini impurity (§4.4.2's preliminaries).
//!
//! "The tree is greedily built top-down. At each level, it determines the
//! best feature and its split point to separate the data into distinct
//! classes as much as possible … The tree grows in this way until every
//! leaf node is pure (fully grown)."
//!
//! For random forests the builder additionally evaluates only a random
//! subset of features per node ("instead of evaluating all the features at
//! each level, the trees only consider a random subset of the features each
//! time"), and trees stay fully grown without pruning. As a standalone
//! baseline (§5.3.2) the tree uses all features and is also fully grown —
//! exactly the overfitting-prone configuration the paper contrasts with
//! forests.

use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree-building parameters.
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Features evaluated per node (`None` = all — the plain CART baseline).
    pub max_features: Option<usize>,
    /// Depth cap (`None` = fully grown).
    pub max_depth: Option<usize>,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// RNG seed for feature subsetting.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_features: None,
            max_depth: None,
            min_samples_split: 2,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        /// Fraction of anomalous training samples in the leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the `< threshold` child.
        left: usize,
        /// Index of the `>= threshold` child.
        right: usize,
    },
}

impl Node {
    /// A leaf with the given anomaly probability.
    pub(crate) fn leaf(prob: f64) -> Self {
        Node::Leaf { prob }
    }

    /// An internal split node.
    pub(crate) fn split(feature: usize, threshold: f64, left: usize, right: usize) -> Self {
        Node::Split {
            feature,
            threshold,
            left,
            right,
        }
    }
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    params: TreeParams,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Creates an untrained tree with the given parameters.
    pub fn new(params: TreeParams) -> Self {
        Self {
            params,
            nodes: Vec::new(),
        }
    }

    /// Anomaly probability of one sample: the anomaly fraction of the leaf
    /// the sample falls into.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "tree not fitted");
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if features[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena (for persistence).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Maximum depth of the trained tree.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Renders the tree as indented if-then rules, naming features with
    /// `feature_names` — the Fig. 5 "decision tree example" output.
    pub fn render(&self, feature_names: &[String]) -> String {
        fn walk(nodes: &[Node], i: usize, names: &[String], indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match &nodes[i] {
                Node::Leaf { prob } => {
                    let verdict = if *prob >= 0.5 { "Anomaly" } else { "Normal" };
                    out.push_str(&format!("{pad}=> {verdict} (p={prob:.2})\n"));
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let name = names
                        .get(*feature)
                        .cloned()
                        .unwrap_or_else(|| format!("f{feature}"));
                    out.push_str(&format!("{pad}if severity[{name}] < {threshold:.3}:\n"));
                    walk(nodes, *left, names, indent + 1, out);
                    out.push_str(&format!("{pad}else:\n"));
                    walk(nodes, *right, names, indent + 1, out);
                }
            }
        }
        let mut out = String::new();
        if !self.nodes.is_empty() {
            walk(&self.nodes, 0, feature_names, 0, &mut out);
        }
        out
    }

    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let positives = indices.iter().filter(|&&i| data.label(i)).count();
        let n = indices.len();
        let prob = positives as f64 / n as f64;

        let depth_capped = self.params.max_depth.is_some_and(|d| depth >= d);
        if positives == 0 || positives == n || n < self.params.min_samples_split || depth_capped {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        }

        match best_split(data, indices, self.params.max_features, rng) {
            None => {
                self.nodes.push(Node::Leaf { prob });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                // Partition indices in place: left = < threshold.
                let mut mid = 0usize;
                for i in 0..n {
                    if data.row(indices[i])[feature] < threshold {
                        indices.swap(i, mid);
                        mid += 1;
                    }
                }
                debug_assert!(mid > 0 && mid < n, "degenerate split");
                let placeholder = self.nodes.len();
                self.nodes.push(Node::Leaf { prob }); // replaced below
                let (left_ids, right_ids) = indices.split_at_mut(mid);
                let left = self.build(data, left_ids, depth + 1, rng);
                let right = self.build(data, right_ids, depth + 1, rng);
                self.nodes[placeholder] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                placeholder
            }
        }
    }
}

/// Finds the gini-optimal `(feature, threshold)` over a random feature
/// subset. Returns `None` when no feature separates the samples.
fn best_split(
    data: &Dataset,
    indices: &[usize],
    max_features: Option<usize>,
    rng: &mut StdRng,
) -> Option<(usize, f64)> {
    let m = data.n_features();
    let mut feature_order: Vec<usize> = (0..m).collect();
    let k = max_features.unwrap_or(m).clamp(1, m);
    if k < m {
        feature_order.shuffle(rng);
    }

    let n = indices.len() as f64;
    let total_pos = indices.iter().filter(|&&i| data.label(i)).count() as f64;

    let mut best: Option<(f64, usize, f64)> = None; // (weighted gini, feature, threshold)
    let mut pairs: Vec<(f64, bool)> = Vec::with_capacity(indices.len());

    for &feature in feature_order.iter().take(k) {
        pairs.clear();
        pairs.extend(
            indices
                .iter()
                .map(|&i| (data.row(i)[feature], data.label(i))),
        );
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));

        let mut left_n = 0.0;
        let mut left_pos = 0.0;
        for w in 0..pairs.len() - 1 {
            left_n += 1.0;
            if pairs[w].1 {
                left_pos += 1.0;
            }
            // Split only between distinct values.
            if pairs[w].0 == pairs[w + 1].0 {
                continue;
            }
            let right_n = n - left_n;
            let right_pos = total_pos - left_pos;
            let gini = |cnt: f64, pos: f64| {
                let p = pos / cnt;
                2.0 * p * (1.0 - p)
            };
            let weighted =
                (left_n / n) * gini(left_n, left_pos) + (right_n / n) * gini(right_n, right_pos);
            if best.is_none_or(|(b, _, _)| weighted < b) {
                let threshold = (pairs[w].0 + pairs[w + 1].0) / 2.0;
                best = Some((weighted, feature, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut indices: Vec<usize> = (0..data.len()).collect();
        self.build(data, &mut indices, 0, &mut rng);
    }

    fn score(&self, features: &[f64]) -> f64 {
        self.predict_proba(features)
    }

    fn name(&self) -> &'static str {
        "decision tree"
    }
}

/// Fits a tree on (a bootstrap of) the dataset using the given row indices —
/// the exact-split entry point used by the random forest.
pub(crate) fn fit_on_indices(
    params: TreeParams,
    data: &Dataset,
    indices: &mut [usize],
) -> DecisionTree {
    let mut tree = DecisionTree::new(params);
    let mut rng = StdRng::seed_from_u64(tree.params.seed);
    tree.build(data, indices, 0, &mut rng);
    tree
}

/// Assembles a tree from pre-built nodes (used by the histogram builder).
pub(crate) fn from_nodes(params: TreeParams, nodes: Vec<Node>) -> DecisionTree {
    DecisionTree { params, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy set: anomaly iff feature0 > 5.
    fn separable() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            let x = i as f64;
            d.push(&[x, (i % 3) as f64], x > 5.0);
        }
        d
    }

    #[test]
    fn learns_a_separable_concept() {
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&separable());
        assert_eq!(t.predict_proba(&[2.0, 0.0]), 0.0);
        assert_eq!(t.predict_proba(&[9.0, 0.0]), 1.0);
    }

    #[test]
    fn fully_grown_tree_is_pure_on_training_data() {
        let d = separable();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        for i in 0..d.len() {
            let p = t.predict_proba(d.row(i));
            assert_eq!(p >= 0.5, d.label(i), "row {i}");
        }
    }

    #[test]
    fn depth_cap_respected() {
        let d = separable();
        let mut t = DecisionTree::new(TreeParams {
            max_depth: Some(1),
            ..Default::default()
        });
        t.fit(&d);
        assert!(t.depth() <= 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(1);
        for i in 0..5 {
            d.push(&[i as f64], false);
        }
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_proba(&[100.0]), 0.0);
    }

    #[test]
    fn constant_features_yield_prior_leaf() {
        let mut d = Dataset::new(1);
        d.push(&[1.0], true);
        d.push(&[1.0], false);
        d.push(&[1.0], false);
        d.push(&[1.0], false);
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        assert!((t.predict_proba(&[1.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn xor_concept_needs_depth_two() {
        // XOR of two binary features: not linearly separable, but a depth-2
        // tree nails it.
        let mut d = Dataset::new(2);
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..5 {
                d.push(&[a, b], (a > 0.5) != (b > 0.5));
            }
        }
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        assert_eq!(t.predict_proba(&[0.0, 1.0]), 1.0);
        assert_eq!(t.predict_proba(&[1.0, 1.0]), 0.0);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn render_mentions_feature_names() {
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&separable());
        let txt = t.render(&["TSD".to_string(), "diff".to_string()]);
        assert!(txt.contains("severity[TSD]"), "{txt}");
        assert!(txt.contains("Anomaly"));
        assert!(txt.contains("Normal"));
    }

    #[test]
    fn feature_subset_of_one_still_learns_something() {
        let mut t = DecisionTree::new(TreeParams {
            max_features: Some(1),
            seed: 3,
            ..Default::default()
        });
        let d = separable();
        t.fit(&d);
        // With only f0 informative and random subsets, the tree may need
        // several levels, but training accuracy must still be perfect
        // (fully grown).
        for i in 0..d.len() {
            assert_eq!(t.predict_proba(d.row(i)) >= 0.5, d.label(i));
        }
    }

    #[test]
    #[should_panic(expected = "tree not fitted")]
    fn predict_before_fit_panics() {
        let t = DecisionTree::new(TreeParams::default());
        let _ = t.predict_proba(&[0.0]);
    }
}
