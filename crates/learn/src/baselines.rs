//! The §5.3.2 baseline learners: Gaussian naive Bayes, logistic regression
//! and linear SVM. (The fourth baseline, the plain decision tree, lives in
//! [`crate::tree`].)
//!
//! The paper's point with these: "some learning algorithms such as naive
//! Bayes, logistic regression, decision tree, and linear SVM, will perform
//! badly when coping with [irrelevant and redundant features]" — Fig. 10
//! shows their AUCPR degrading as more detector features are added while
//! random forests hold steady.

use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-feature standardization fitted on the training set — the linear
/// baselines need comparable feature scales (severities span orders of
/// magnitude across detectors).
#[derive(Debug, Clone, Default)]
struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    fn fit(data: &Dataset) -> Self {
        let m = data.n_features();
        let n = data.len() as f64;
        let mut mean = vec![0.0; m];
        for i in 0..data.len() {
            for (j, v) in data.row(i).iter().enumerate() {
                mean[j] += v;
            }
        }
        for v in &mut mean {
            *v /= n;
        }
        let mut var = vec![0.0; m];
        for i in 0..data.len() {
            for (j, v) in data.row(i).iter().enumerate() {
                var[j] += (v - mean[j]) * (v - mean[j]);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-9)).collect();
        Self { mean, std }
    }

    fn transform(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        // Winsorize at +/-10 sigma: detector severities are extremely
        // heavy-tailed (a single burst can sit thousands of sigmas out) and
        // un-clipped values overflow the linear models' weights.
        out.extend(
            row.iter()
                .enumerate()
                .map(|(j, v)| ((v - self.mean[j]) / self.std[j]).clamp(-10.0, 10.0)),
        );
    }
}

/// Gaussian naive Bayes: per-class, per-feature Gaussians; the score is the
/// anomaly-vs-normal log-likelihood ratio (plus log prior odds).
#[derive(Debug, Clone, Default)]
pub struct GaussianNaiveBayes {
    stats: Option<NbStats>,
}

#[derive(Debug, Clone)]
struct NbStats {
    log_prior_ratio: f64,
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
}

impl GaussianNaiveBayes {
    /// Creates an untrained model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for GaussianNaiveBayes {
    #[allow(clippy::needless_range_loop)] // j indexes parallel mean/var arrays
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        let m = data.n_features();
        let mut count = [0usize; 2];
        let mut mean = [vec![0.0; m], vec![0.0; m]];
        for i in 0..data.len() {
            let c = data.label(i) as usize;
            count[c] += 1;
            for (j, v) in data.row(i).iter().enumerate() {
                mean[c][j] += v;
            }
        }
        for c in 0..2 {
            for j in 0..m {
                mean[c][j] /= count[c].max(1) as f64;
            }
        }
        let mut var = [vec![0.0; m], vec![0.0; m]];
        for i in 0..data.len() {
            let c = data.label(i) as usize;
            for (j, v) in data.row(i).iter().enumerate() {
                var[c][j] += (v - mean[c][j]) * (v - mean[c][j]);
            }
        }
        for c in 0..2 {
            for j in 0..m {
                var[c][j] = (var[c][j] / count[c].max(1) as f64).max(1e-9);
            }
        }
        // Laplace-smoothed prior odds so a one-class training set stays finite.
        let log_prior_ratio = ((count[1] as f64 + 1.0) / (count[0] as f64 + 1.0)).ln();
        self.stats = Some(NbStats {
            log_prior_ratio,
            mean,
            var,
        });
    }

    fn score(&self, features: &[f64]) -> f64 {
        let s = self.stats.as_ref().expect("model not fitted");
        let mut llr = s.log_prior_ratio;
        for (j, &x) in features.iter().enumerate() {
            let term = |c: usize| {
                let d = x - s.mean[c][j];
                -0.5 * (s.var[c][j].ln() + d * d / s.var[c][j])
            };
            llr += term(1) - term(0);
        }
        llr
    }

    fn name(&self) -> &'static str {
        "naive Bayes"
    }
}

/// Logistic regression trained by SGD on standardized features.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Initial learning rate (decayed per epoch).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
    scaler: Scaler,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self {
            epochs: 6,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 1,
            scaler: Scaler::default(),
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl LogisticRegression {
    /// Creates a model with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        let m = data.n_features();
        self.scaler = Scaler::fit(data);
        self.weights = vec![0.0; m];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = Vec::with_capacity(m);
        for epoch in 0..self.epochs {
            let lr = self.learning_rate / (1.0 + epoch as f64);
            order.shuffle(&mut rng);
            for &i in &order {
                self.scaler.transform(data.row(i), &mut x);
                let z: f64 =
                    self.bias + self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - data.label(i) as usize as f64;
                for (w, v) in self.weights.iter_mut().zip(&x) {
                    *w -= lr * (err * v + self.l2 * *w);
                }
                self.bias -= lr * err;
            }
        }
    }

    fn score(&self, features: &[f64]) -> f64 {
        assert!(!self.weights.is_empty(), "model not fitted");
        let mut x = Vec::with_capacity(features.len());
        self.scaler.transform(features, &mut x);
        self.bias + self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "logistic regression"
    }
}

/// Linear SVM trained with the Pegasos subgradient method on standardized
/// features; the score is the signed margin.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Regularization strength λ.
    pub lambda: f64,
    /// Shuffle seed.
    pub seed: u64,
    scaler: Scaler,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self {
            epochs: 6,
            lambda: 1e-4,
            seed: 2,
            scaler: Scaler::default(),
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl LinearSvm {
    /// Creates a model with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        let m = data.n_features();
        self.scaler = Scaler::fit(data);
        self.weights = vec![0.0; m];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = Vec::with_capacity(m);
        let mut t = 1usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let lr = 1.0 / (self.lambda * t as f64);
                let y = if data.label(i) { 1.0 } else { -1.0 };
                self.scaler.transform(data.row(i), &mut x);
                let z: f64 =
                    self.bias + self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>();
                for w in &mut self.weights {
                    *w *= 1.0 - lr * self.lambda;
                }
                if y * z < 1.0 {
                    for (w, v) in self.weights.iter_mut().zip(&x) {
                        *w += lr * y * v;
                    }
                    self.bias += lr * y * 0.1; // unregularized, damped bias
                }
                t += 1;
            }
        }
    }

    fn score(&self, features: &[f64]) -> f64 {
        assert!(!self.weights.is_empty(), "model not fitted");
        let mut x = Vec::with_capacity(features.len());
        self.scaler.transform(features, &mut x);
        self.bias + self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "linear SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc_pr_of;
    use rand::Rng;

    /// Linearly separable-ish data with Gaussian class-conditionals.
    fn gaussian_classes(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(3);
        for _ in 0..n {
            let label = rng.gen::<f64>() < 0.3;
            let shift = if label { 2.0 } else { 0.0 };
            let row = [
                shift + rng.gen_range(-1.0..1.0),
                shift * 0.5 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0), // irrelevant
            ];
            d.push(&row, label);
        }
        d
    }

    fn auc_of(c: &mut dyn Classifier, train: &Dataset, test: &Dataset) -> f64 {
        c.fit(train);
        let scores: Vec<Option<f64>> = (0..test.len())
            .map(|i| Some(c.score(test.row(i))))
            .collect();
        auc_pr_of(&scores, test.labels())
    }

    #[test]
    fn naive_bayes_learns_gaussian_classes() {
        let train = gaussian_classes(2000, 1);
        let test = gaussian_classes(1000, 2);
        let auc = auc_of(&mut GaussianNaiveBayes::new(), &train, &test);
        assert!(auc > 0.9, "auc {auc}");
    }

    #[test]
    fn logistic_regression_learns_linear_boundary() {
        let train = gaussian_classes(2000, 3);
        let test = gaussian_classes(1000, 4);
        let auc = auc_of(&mut LogisticRegression::new(), &train, &test);
        assert!(auc > 0.9, "auc {auc}");
    }

    #[test]
    fn linear_svm_learns_linear_boundary() {
        let train = gaussian_classes(2000, 5);
        let test = gaussian_classes(1000, 6);
        let auc = auc_of(&mut LinearSvm::new(), &train, &test);
        assert!(auc > 0.9, "auc {auc}");
    }

    #[test]
    fn scores_are_monotone_in_the_informative_feature() {
        let train = gaussian_classes(2000, 7);
        let mut lr = LogisticRegression::new();
        lr.fit(&train);
        assert!(lr.score(&[3.0, 1.5, 0.0]) > lr.score(&[-1.0, -0.5, 0.0]));
        let mut svm = LinearSvm::new();
        svm.fit(&train);
        assert!(svm.score(&[3.0, 1.5, 0.0]) > svm.score(&[-1.0, -0.5, 0.0]));
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&train);
        assert!(nb.score(&[3.0, 1.5, 0.0]) > nb.score(&[-1.0, -0.5, 0.0]));
    }

    #[test]
    fn all_normal_training_set_is_survivable() {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            d.push(&[i as f64, 1.0], false);
        }
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d);
        assert!(nb.score(&[1.0, 1.0]).is_finite());
        let mut lr = LogisticRegression::new();
        lr.fit(&d);
        assert!(lr.score(&[1.0, 1.0]).is_finite());
    }

    #[test]
    fn fitting_is_deterministic() {
        let train = gaussian_classes(500, 8);
        let mut a = LogisticRegression::new();
        let mut b = LogisticRegression::new();
        a.fit(&train);
        b.fit(&train);
        assert_eq!(a.score(&[1.0, 1.0, 1.0]), b.score(&[1.0, 1.0, 1.0]));
    }
}
