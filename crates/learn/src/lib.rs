//! Hand-rolled supervised learning for the Opprentice reproduction.
//!
//! The original prototype used scikit-learn (§5); the Rust ecosystem has no
//! canonical equivalent, so this crate implements the required learners from
//! scratch:
//!
//! * [`tree`] — CART decision trees (gini impurity, fully grown by default,
//!   per-node random feature subsets) — §4.4.2's "preliminaries",
//! * [`forest`] — Breiman random forests: bootstrap aggregation over fully
//!   grown randomized trees, anomaly probability = vote fraction — the
//!   algorithm Opprentice actually uses,
//! * [`compiled`] — trained forests flattened into a contiguous,
//!   cache-friendly node arena for fast (bit-identical) serving-path
//!   inference,
//! * [`baselines`] — the §5.3.2 comparison algorithms: decision tree,
//!   Gaussian naive Bayes, logistic regression and linear SVM, all behind
//!   one [`Classifier`] trait,
//! * [`metrics`] — precision/recall, PR curves and AUCPR (the paper's
//!   accuracy measures, §2.2 and §5.3),
//! * [`feature_select`] — mutual-information feature ranking (used to order
//!   features in the Fig. 10 robustness experiment),
//! * [`cv`] — contiguous k-fold splits for the 5-fold cThld baseline
//!   (§4.5.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod binned;
pub mod compiled;
pub mod cv;
pub mod dataset;
pub mod feature_select;
pub mod forest;
pub mod metrics;
pub mod persist;
pub mod tree;

pub use compiled::CompiledForest;
pub use dataset::Dataset;
pub use forest::{RandomForest, RandomForestParams};
pub use metrics::{auc_pr, pr_curve, PrPoint};

/// A binary anomaly classifier producing a monotone anomaly score.
///
/// The score scale is classifier-specific (a probability for forests, a
/// margin for SVMs, a log-odds for logistic regression); only its ordering
/// matters for PR curves and AUCPR, and a classification threshold (cThld)
/// picks an operating point on it.
pub trait Classifier: Send {
    /// Fits the classifier on a training set.
    fn fit(&mut self, data: &Dataset);

    /// Anomaly score of one sample (higher = more anomalous).
    fn score(&self, features: &[f64]) -> f64;

    /// Scores a whole dataset (row per sample).
    fn score_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.score(data.row(i))).collect()
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}
