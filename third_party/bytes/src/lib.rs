//! Hermetic stand-in for the `bytes` crate (1.x API subset).
//!
//! Only the plain-slice cursor reads and `Vec<u8>` writes used by this
//! workspace's binary codecs are provided. Semantics match the real crate:
//! getters advance the cursor and panic when the buffer is too short
//! (callers bound-check with [`Buf::remaining`] first).

#![forbid(unsafe_code)]

/// Sequential little-endian reads over a shrinking `&[u8]` cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// `true` while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Drops `n` bytes from the front. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out, advancing. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential little-endian writes onto a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(u64::MAX - 1);
        out.put_f64_le(1.5);
        out.put_i64_le(-42);
        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 8 + 8);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), u64::MAX - 1);
        assert_eq!(buf.get_f64_le(), 1.5);
        assert_eq!(buf.get_i64_le(), -42);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn short_read_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }

    #[test]
    fn advance_moves_cursor() {
        let mut buf: &[u8] = &[1, 2, 3, 4];
        buf.advance(3);
        assert_eq!(buf.get_u8(), 4);
    }
}
