//! Hermetic stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace builds in offline containers with no crates.io access, so
//! the handful of `rand` APIs it uses are reimplemented here and wired in
//! via `[patch.crates-io]`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic given a seed, with statistical quality far
//! beyond what the workspace's tests and data generators need.
//!
//! Implemented surface: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::
//! seed_from_u64`, `rngs::StdRng`, `seq::SliceRandom::shuffle`. Anything
//! outside that subset is intentionally absent.

#![forbid(unsafe_code)]

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly "by default" (the `Standard` distribution of
/// the real crate): `rng.gen::<T>()`.
pub trait StandardSample {
    /// Draws one value from the type's standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable over an interval. Mirrors the real crate's
/// shape: the single blanket [`SampleRange`] impl below keys inference off
/// this trait, so `rng.gen_range(0.2..0.5)` infers `f64` from the literals.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    ///
    /// Panics if the interval is empty, matching the real crate.
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// A half-open or inclusive range a value can be drawn from:
/// `rng.gen_range(lo..hi)` / `rng.gen_range(lo..=hi)`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire); bias is
/// at most 2^-64 per draw, far below anything observable here.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    (lo as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    lo + <$t as StandardSample>::standard_sample(rng) * (hi - lo)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let v = lo + <$t as StandardSample>::standard_sample(rng) * (hi - lo);
                    // Guard against rounding up to the excluded endpoint.
                    if v < hi { v } else { <$t>::from_bits(hi.to_bits() - 1) }
                }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`] (including `&mut R`).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Deterministic given the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method this workspace uses).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3u32..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
