//! Hermetic stand-in for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on a few plain data
//! types but never actually serializes them (no format crate is present),
//! so the derives only need to mint the marker impls. Generic types fall
//! back to emitting nothing — no workspace type deriving serde is generic.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name following `struct`/`enum` and reports whether a
/// generic parameter list follows it.
fn type_name(input: TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        _ => TokenStream::new(),
    }
}

/// Derives the no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Derives the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        _ => TokenStream::new(),
    }
}
