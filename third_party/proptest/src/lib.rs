//! Hermetic stand-in for `proptest` (1.x API subset).
//!
//! A miniature property-testing engine covering exactly what this
//! workspace's `proptests.rs` files use: the `proptest!` macro (with
//! optional `#![proptest_config]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, range and tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::select`, `prop::option::of`,
//! `Just`, `.prop_map` and `.prop_filter`.
//!
//! Differences from the real crate, by design: no shrinking (a failing
//! case reports its assertion message and the deterministic seed instead of
//! a minimized input), and case generation is seeded from the test name, so
//! every run of a given test explores the same sequence.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A value generator. `Err(Reject)` means "this draw was filtered out —
    //  try again"; the runner bounds total rejections.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, pred }
        }
    }

    /// A rejected draw (from `prop_filter`), with the filter's description.
    #[derive(Debug, Clone)]
    pub struct Reject(pub &'static str);

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> Result<O, Reject> {
            self.inner.new_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
            let v = self.inner.new_value(rng)?;
            if (self.pred)(&v) {
                Ok(v)
            } else {
                Err(Reject(self.whence))
            }
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> Result<T, Reject> {
            Ok(self.0.clone())
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        (float: $($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    Ok(if v < self.end { v } else { self.start })
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    Ok(lo + (rng.unit_f64() as $t) * (hi - lo))
                }
            }
        )*};
        (int: $($t:ty => $wide:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    Ok((self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return Ok(rng.next_u64() as $t);
                    }
                    Ok((lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(float: f32, f64);
    impl_range_strategy!(
        int: u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                    let ($($name,)+) = self;
                    Ok(($($name.new_value(rng)?,)+))
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy of a type.

    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
            Ok(T::arbitrary(rng))
        }
    }

    /// The canonical strategy of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: core::marker::PhantomData }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.new_value(rng)?);
            }
            Ok(out)
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    //! Sampling from explicit choices.

    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
            let i = rng.below(self.choices.len() as u64) as usize;
            Ok(self.choices[i].clone())
        }
    }

    /// Picks uniformly from a non-empty list of choices.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from empty choices");
        Select { choices }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
            // Match the real crate's default: Some three times out of four.
            if rng.below(4) == 0 {
                Ok(None)
            } else {
                Ok(Some(self.inner.new_value(rng)?))
            }
        }
    }

    /// `Some` of the inner strategy most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! The per-test runner: config, RNG, and case errors.

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Maximum filtered-out draws before the test aborts.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// The case asked to be discarded.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A discard with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Outcome of one case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The runner's deterministic RNG (xoshiro256++, seeded from the test
    /// name so each test replays the same cases every run).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded deterministically from the test's name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut x = h;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module tree (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __rejects: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __config.cases {
                    match ( $( $crate::strategy::Strategy::new_value(&($strat), &mut __rng) ),+ , ) {
                        ( $( ::core::result::Result::Ok($arg) ),+ , ) => {
                            let __result: $crate::test_runner::TestCaseResult =
                                (move || {
                                    $body
                                    ::core::result::Result::Ok(())
                                })();
                            if let ::core::result::Result::Err(e) = __result {
                                panic!(
                                    "proptest `{}` falsified at case {}: {}",
                                    stringify!($name), __case, e
                                );
                            }
                            __case += 1;
                        }
                        _ => {
                            __rejects += 1;
                            assert!(
                                __rejects <= __config.max_global_rejects,
                                "proptest `{}`: too many filtered draws ({})",
                                stringify!($name), __rejects
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0i64..1000).prop_filter("even only", |v| v % 2 == 0)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 5u32..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((5..10).contains(&n));
        }

        #[test]
        fn filters_apply(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn maps_apply(v in prop::collection::vec(1u32..5, 3..6).prop_map(|v| v.len())) {
            prop_assert!((3..6).contains(&v));
        }

        #[test]
        fn select_and_option(
            interval in prop::sample::select(vec![60u32, 300, 3600]),
            maybe in prop::option::of(0i64..10),
        ) {
            prop_assert!([60, 300, 3600].contains(&interval));
            if let Some(v) = maybe {
                prop_assert!((0..10).contains(&v));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(_x in any::<bool>()) {
            // Runs exactly 7 cases; nothing to assert beyond not hanging.
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("falsified"), "{msg}");
    }
}
