//! Hermetic stand-in for `criterion` (0.5 API subset).
//!
//! A deliberately small wall-clock benchmark runner: it warms up, runs a
//! fixed number of timed samples, and prints mean/min per-iteration times.
//! No statistics engine, no HTML reports — just enough to keep
//! `cargo bench` meaningful in an offline container. The real crate slots
//! back in by dropping the `[patch.crates-io]` entry.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` sizes its batches. The stub runs one routine call per
/// batch regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Drives the timed routine of one benchmark.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.results.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.results.push(t.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (report-flush point in the real crate; no-op here).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Overrides the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut results = Vec::new();
        let samples = self.sample_size;
        f(&mut Bencher { samples, results: &mut results });
        if results.is_empty() {
            println!("{id:<44} no samples");
            return;
        }
        let total: Duration = results.iter().sum();
        let mean = total / results.len() as u32;
        let min = results.iter().min().copied().unwrap_or_default();
        println!("{id:<44} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)", results.len());
    }

    /// Compatibility shim for `criterion_group!`'s configuration hook.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export matching the real crate's signature.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
