//! Hermetic stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few data types for
//! downstream consumers but ships no serialization format, so marker traits
//! are all the build needs. The real crate slots back in without source
//! changes once network access exists (drop the `[patch.crates-io]` entry).

#![forbid(unsafe_code)]

/// Marker for types that would be serializable with the real `serde`.
pub trait Serialize {}

/// Marker for types that would be deserializable with the real `serde`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
