//! Hermetic stand-in for `parking_lot` (0.12 API subset).
//!
//! Thin wrappers over `std::sync` primitives exposing the poison-free
//! `parking_lot` signatures (`lock()` returns the guard directly). A
//! poisoned std lock means a panicking thread died mid-critical-section;
//! like the real crate, we hand the data back instead of propagating the
//! poison.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 0);
    }
}
