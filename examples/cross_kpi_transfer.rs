//! §6 "Detection across the same types of KPIs": train the classifier on
//! one labeled KPI and reuse it, unmodified, on another KPI of the same
//! type (e.g. the PV originated from a different ISP) — so operators "only
//! have to label one or just a few KPIs".
//!
//! The paper notes the prerequisite: "the anomaly features extracted by
//! basic detectors should be normalized" to survive scale differences.
//! This example demonstrates both halves: transfer *fails* on raw
//! severities when the target KPI runs at 4x the volume, and works once
//! features are normalized by each KPI's own scale.
//!
//! Run: `cargo run --release --example cross_kpi_transfer`

use opprentice_repro::datagen::presets;
use opprentice_repro::learn::metrics::auc_pr_of;
use opprentice_repro::learn::{Classifier, Dataset, RandomForest, RandomForestParams};
use opprentice_repro::opprentice::extract_features;
use opprentice_repro::opprentice::features::FeatureMatrix;
use opprentice_repro::timeseries::Labels;

/// Builds a dataset, optionally dividing every severity by that feature's
/// own 99th-percentile scale on this KPI (per-KPI normalization).
fn dataset(matrix: &FeatureMatrix, labels: &Labels, normalize: bool) -> Dataset {
    let m = matrix.n_features();
    let scales: Vec<f64> = if normalize {
        (0..m)
            .map(|c| {
                let mut xs: Vec<f64> = (0..matrix.len())
                    .filter(|&i| matrix.usable(i))
                    .map(|i| matrix.row(i)[c])
                    .collect();
                xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let q = xs[(xs.len() as f64 * 0.99) as usize % xs.len()];
                if q > 0.0 {
                    q
                } else {
                    1.0
                }
            })
            .collect()
    } else {
        vec![1.0; m]
    };
    let mut ds = Dataset::new(m);
    for i in 0..matrix.len() {
        if matrix.usable(i) {
            let row: Vec<f64> = matrix
                .row(i)
                .iter()
                .zip(&scales)
                .map(|(v, s)| v / s)
                .collect();
            ds.push(&row, labels.is_anomaly(i));
        }
    }
    ds
}

fn main() {
    // Source: the standard PV. Target: "PV from another ISP" — same shape,
    // different seed and 4x the traffic volume.
    let source_spec = presets::fast(&presets::pv(), 300);
    let mut target_spec = source_spec.clone();
    target_spec.seed ^= 0xDEAD_BEEF;
    target_spec.base *= 4.0;
    target_spec.weeks = 10;

    let source = source_spec.generate();
    let target = target_spec.generate();
    println!(
        "source: {} (base {})  target: same type, base {}\n",
        source.name, source_spec.base, target_spec.base
    );

    let source_matrix = extract_features(&source.series);
    let target_matrix = extract_features(&target.series);

    for normalize in [false, true] {
        let train = dataset(&source_matrix, &source.truth, normalize);
        let test = dataset(&target_matrix, &target.truth, normalize);
        let mut forest = RandomForest::new(RandomForestParams {
            n_trees: 30,
            ..Default::default()
        });
        forest.fit(&train);
        let scores: Vec<Option<f64>> = (0..test.len())
            .map(|i| Some(forest.score(test.row(i))))
            .collect();
        let auc = auc_pr_of(&scores, test.labels());
        println!(
            "{:<28} transfer AUCPR on the 4x-volume sibling KPI: {auc:.3}",
            if normalize {
                "normalized features:"
            } else {
                "raw severities:"
            }
        );
    }
    println!(
        "\nAs §6 predicts, per-KPI feature normalization is what makes the classifier reusable."
    );
}
