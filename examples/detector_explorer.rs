//! Explore the 14 basic detectors directly: run every Table 3 family over
//! one KPI and rank the families by how well their best configuration
//! separates the labeled anomalies (AUCPR).
//!
//! This is the "traditional" workflow Opprentice replaces — useful for
//! understanding what each detector sees, and exactly the §5.3.1
//! observation that the best basic detector depends on the KPI.
//!
//! Run: `cargo run --release --example detector_explorer [PV|#SR|SRT]`

use opprentice_repro::datagen::presets;
use opprentice_repro::detectors::registry::registry;
use opprentice_repro::detectors::run_detector;
use opprentice_repro::learn::metrics::auc_pr_of;
use std::collections::BTreeMap;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "PV".to_string());
    let spec = presets::all()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(&which))
        .unwrap_or_else(presets::pv);
    let spec = presets::fast(&spec, 300);
    let kpi = spec.generate();
    println!(
        "Detector explorer on {} ({} points)\n",
        kpi.name,
        kpi.series.len()
    );

    // Run all 133 configurations; keep the best AUCPR per detector family.
    let mut best: BTreeMap<&'static str, (String, f64)> = BTreeMap::new();
    for mut cfg in registry(kpi.series.interval()) {
        let severities = run_detector(cfg.detector.as_mut(), &kpi.series);
        let auc = auc_pr_of(&severities, kpi.truth.flags());
        let name = cfg.detector.name();
        let entry = best
            .entry(name)
            .or_insert_with(|| (cfg.detector.config(), f64::MIN));
        if auc > entry.1 {
            *entry = (cfg.detector.config(), auc);
        }
    }

    let mut ranked: Vec<_> = best.into_iter().collect();
    ranked.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).expect("finite AUCPR"));
    println!(
        "{:<22} {:<28} {:>7}",
        "detector family", "best configuration", "AUCPR"
    );
    for (name, (config, auc)) in &ranked {
        println!("{name:<22} {config:<28} {auc:>7.3}");
    }
    println!(
        "\nTry the other KPIs — the winner changes (the paper's point about\nwhy detector selection cannot be done once and for all):"
    );
    println!("  cargo run --release --example detector_explorer '#SR'");
    println!("  cargo run --release --example detector_explorer SRT");
}
