//! Operational concern: surviving a restart. A deployed Opprentice retrains
//! weekly, but the process should not lose its classifier between restarts.
//! This example trains a forest, saves it to the compact binary format,
//! reloads it, and verifies the restored model scores identically.
//!
//! Run: `cargo run --release --example model_persistence`

use opprentice_repro::datagen::{presets, SimulatedOperator};
use opprentice_repro::learn::{Classifier, RandomForest, RandomForestParams};
use opprentice_repro::opprentice::extract_features;

fn main() {
    let mut spec = presets::srt();
    spec.weeks = 8;
    let kpi = spec.generate();
    let session = SimulatedOperator::default().label(&kpi);
    let matrix = extract_features(&kpi.series);
    let (train, _) = matrix.dataset(&session.labels, 0..matrix.len());

    let mut forest = RandomForest::new(RandomForestParams {
        n_trees: 40,
        ..Default::default()
    });
    forest.fit(&train);

    // Save.
    let bytes = forest.to_bytes();
    let path = std::env::temp_dir().join("opprentice_model.bin");
    std::fs::write(&path, &bytes).expect("write model");
    println!(
        "saved {} trees ({} bytes) to {}",
        forest.tree_count(),
        bytes.len(),
        path.display()
    );

    // Restore (e.g. after a crash or deploy).
    let restored_bytes = std::fs::read(&path).expect("read model");
    let restored = RandomForest::from_bytes(&restored_bytes).expect("valid model file");
    println!("restored {} trees", restored.tree_count());

    // Identical verdicts, point for point.
    let mut checked = 0usize;
    for i in (0..matrix.len()).step_by(7) {
        assert_eq!(
            forest.score(matrix.row(i)),
            restored.score(matrix.row(i)),
            "row {i}"
        );
        checked += 1;
    }
    println!("verified {checked} scores identical — safe to resume detection immediately");
    std::fs::remove_file(&path).ok();
}
