//! Quickstart: train Opprentice on a labeled KPI history and detect
//! anomalies in live data — the whole §3 story in one file.
//!
//! Run: `cargo run --release --example quickstart`

use opprentice_repro::datagen::{presets, SimulatedOperator};
use opprentice_repro::learn::RandomForestParams;
use opprentice_repro::opprentice::{Opprentice, OpprenticeConfig, Preference};

fn main() {
    // 1. A KPI to monitor. Real deployments read this from SNMP, syslogs
    //    or access logs (§2.1); here we synthesize one calibrated to the
    //    paper's SRT (60-minute search response time, Table 1).
    let mut spec = presets::srt();
    spec.weeks = 11;
    let kpi = spec.generate();
    // Hold the last week back as the "live" stream.
    let ppw = kpi.series.points_per_week();
    let cut = 10 * ppw;
    println!(
        "KPI {}: {} points at {}s interval",
        kpi.name,
        kpi.series.len(),
        kpi.series.interval()
    );

    // 2. The operators' only manual work: labeling anomaly windows with
    //    the tool of §4.2 (simulated here, including human boundary noise).
    let session = SimulatedOperator::default().label(&kpi);
    println!(
        "operator labeled {} windows ({} points) in {:.1} minutes of tool time",
        session.windows.len(),
        session.labels.anomaly_count(),
        session.total_minutes
    );

    // 3. Opprentice does the rest: 133 detector configurations extract
    //    features, a random forest learns the anomaly concept, and the
    //    cThld is auto-configured to the accuracy preference.
    let config = OpprenticeConfig {
        preference: Preference {
            recall: 0.66,
            precision: 0.66,
        },
        forest: RandomForestParams {
            n_trees: 40,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut opp = Opprentice::new(kpi.series.interval(), config);
    opp.ingest_history(&kpi.series.slice(0..cut), &session.labels.slice(0..cut))
        .expect("fresh pipeline accepts history");
    assert!(opp.retrain(), "need at least one labeled anomaly to train");
    println!("trained; cThld = {:.3}", opp.current_cthld());

    // 4. Online detection: stream the live week point by point. The last
    //    point we stream is a genuinely normal value; then we inject a
    //    latency spike on top of the real continuation.
    let mut last = None;
    let mut last_normal_value = 0.0;
    for i in cut..kpi.series.len() {
        let v = kpi.series.get(i);
        last = opp.observe(kpi.series.timestamp_at(i), v);
        if !session.labels.is_anomaly(i) {
            if let Some(v) = v {
                last_normal_value = v;
            }
        }
    }
    let normal = last.expect("trained");
    let next_ts = kpi.series.timestamp_at(kpi.series.len() - 1) + i64::from(kpi.series.interval());
    let spike = opp
        .observe(next_ts, Some(last_normal_value + 300.0))
        .expect("trained");
    println!(
        "last streamed point: p(anomaly) = {:.2} -> {}",
        normal.probability,
        verdict(normal.is_anomaly)
    );
    println!(
        "injected latency spike: p(anomaly) = {:.2} -> {}",
        spike.probability,
        verdict(spike.is_anomaly)
    );
    assert!(spike.probability > normal.probability);
    assert!(spike.is_anomaly);
}

fn verdict(anomaly: bool) -> &'static str {
    if anomaly {
        "ALERT"
    } else {
        "ok"
    }
}
