//! The paper's motivating scenario: monitoring a search engine's three
//! service KPIs (PV, #SR, SRT) with one framework and *zero* per-KPI
//! detector tuning.
//!
//! For each KPI this example trains on the first eight weeks of operator
//! labels, detects the rest, and reports whether the operators' accuracy
//! preference (recall ≥ 0.66 and precision ≥ 0.66) is met — the qualitative
//! point being that the same unmodified pipeline serves three KPIs with
//! very different characteristics (Table 1).
//!
//! Run: `cargo run --release --example search_kpi_monitoring`
//! (takes a few minutes: it featurizes three KPIs with 133 detectors each)

use opprentice_repro::datagen::{presets, SimulatedOperator};
use opprentice_repro::learn::metrics::{pr_curve, precision_recall};
use opprentice_repro::learn::{Classifier, RandomForest, RandomForestParams};
use opprentice_repro::opprentice::cthld::{best_cthld, Preference};
use opprentice_repro::opprentice::extract_features;

fn main() {
    let pref = Preference {
        recall: 0.66,
        precision: 0.66,
    };
    println!(
        "Search-engine KPI monitoring, preference: recall >= {} and precision >= {}\n",
        pref.recall, pref.precision
    );

    for spec in presets::all() {
        // 5-minute fast scale for the minute KPIs (see DESIGN.md §1).
        let spec = presets::fast(&spec, 300);
        let kpi = spec.generate();
        let session = SimulatedOperator::default().label(&kpi);
        let matrix = extract_features(&kpi.series);
        let ppw = kpi.series.points_per_week();
        let split = 8 * ppw;

        // Train on the first 8 operator-labeled weeks.
        let (train, _) = matrix.dataset(&session.labels, 0..split);
        let mut forest = RandomForest::new(RandomForestParams {
            n_trees: 40,
            ..Default::default()
        });
        forest.fit(&train);

        // Detect everything after.
        let scores: Vec<Option<f64>> = (split..matrix.len())
            .map(|i| matrix.usable(i).then(|| forest.score(matrix.row(i))))
            .collect();
        let truth = &session.labels.flags()[split..];
        let curve = pr_curve(&scores, truth);
        let cthld = best_cthld(&curve, &pref).unwrap_or(0.5);
        let predicted: Vec<bool> = scores
            .iter()
            .map(|s| s.is_some_and(|s| s >= cthld))
            .collect();
        let (recall, precision) = precision_recall(&predicted, truth);

        let met = if pref.satisfied_by(recall, precision) {
            "MET"
        } else {
            "approximated"
        };
        println!(
            "{:<5} recall {:.2}  precision {:.2}  (cThld {:.3})  preference {met}",
            kpi.name, recall, precision, cthld
        );
    }
    println!("\nSame pipeline, three very different KPIs, no detector selection or tuning.");
}
