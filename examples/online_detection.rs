//! Deployment loop (Fig. 3b): stream a KPI point by point, raise alerts in
//! real time, and run the weekly operator routine — label last week's data,
//! incrementally retrain, refresh the EWMA cThld prediction (§4.5.2).
//!
//! Run: `cargo run --release --example online_detection`

use opprentice_repro::datagen::{presets, SimulatedOperator};
use opprentice_repro::learn::RandomForestParams;
use opprentice_repro::opprentice::{Opprentice, OpprenticeConfig};

fn main() {
    // An hourly KPI: 12 weeks total — 4 weeks of labeled history, then 8
    // weeks arriving live.
    let mut spec = presets::srt();
    spec.weeks = 12;
    let kpi = spec.generate();
    let session = SimulatedOperator::default().label(&kpi);
    let ppw = kpi.series.points_per_week();
    let history_weeks = 4;

    let mut opp = Opprentice::new(
        kpi.series.interval(),
        OpprenticeConfig {
            forest: RandomForestParams {
                n_trees: 30,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let cut = history_weeks * ppw;
    opp.ingest_history(&kpi.series.slice(0..cut), &session.labels.slice(0..cut))
        .expect("fresh pipeline accepts history");
    assert!(opp.retrain());
    println!(
        "bootstrapped on {history_weeks} weeks of labeled history; cThld {:.3}\n",
        opp.current_cthld()
    );

    let mut alerts = 0usize;
    let mut true_alerts = 0usize;
    for week in history_weeks..kpi.series.whole_weeks() {
        let start = week * ppw;
        let end = start + ppw;
        // Live detection through the week.
        for i in start..end {
            if let Some(d) = opp.observe(kpi.series.timestamp_at(i), kpi.series.get(i)) {
                if d.is_anomaly {
                    alerts += 1;
                    if session.labels.is_anomaly(i) {
                        true_alerts += 1;
                    }
                }
            }
        }
        // Sunday night: the operator labels the week, Opprentice retrains.
        opp.ingest_labels(&session.labels.slice(start..end))
            .expect("labels cover observed points");
        opp.retrain();
        println!(
            "week {:>2}: {:>4} alerts so far ({} correct), next week's cThld {:.3}",
            week + 1,
            alerts,
            true_alerts,
            opp.current_cthld()
        );
    }
    let precision = if alerts == 0 {
        1.0
    } else {
        true_alerts as f64 / alerts as f64
    };
    println!("\nlive precision over 8 streamed weeks: {precision:.2} ({true_alerts}/{alerts} alerts correct)");
}
